//! The simulated Classic Cloud runtime (discrete-event, virtual time).
//!
//! Models the identical pipeline to [`crate::runtime`] — receive → download
//! → execute → upload → report → delete — but on the `ppc-des` engine, so a
//! 128-instance fleet processing hours of work runs in milliseconds of real
//! time. Task execution times come from the calibrated
//! `ppc_compute::model::task_service_seconds` service-time model; transfer
//! times from `ppc_storage::latency::LatencyModel`.
//!
//! The dynamic global queue is inherent here: every worker pulls its next
//! task from the shared pool the moment it frees up, which is precisely the
//! "natural load balancing" property the paper credits this architecture
//! with sharing with Hadoop (§4.2).

use crate::report::ClassicReport;
use ppc_autoscale::{AutoscaleConfig, Controller, Decision, SlotState, Telemetry};
use ppc_chaos::FaultSchedule;
use ppc_compute::cluster::Cluster;
use ppc_compute::model::{task_service_seconds, AppModel};
use ppc_core::metrics::RunSummary;
use ppc_core::rng::{Pcg32, CLIENT_STREAM};
use ppc_core::task::TaskSpec;
use ppc_core::{PpcError, Result};
use ppc_des::{Engine, EventId, QueueKind, SimTime};
use ppc_exec::{RunContext, RunReport};
use ppc_resilience::{Health, HealthTracker, HedgePolicy, ResiliencePolicy};
use ppc_storage::latency::LatencyModel;
use ppc_storage::metering::MeteringSnapshot;
use ppc_trace::{EventKind, Phase, Recorder, RunMeta, Span, TraceEvent, TraceSink, NO_WORKER};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Configuration of the simulated platform.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Latency/bandwidth of the object-store data path.
    pub storage_latency: LatencyModel,
    /// Latency of queue API calls.
    pub queue_latency: LatencyModel,
    /// Application service-time knobs (Windows factor, disk model).
    pub app: AppModel,
    /// Random seed (task arrival order, jitter, failures).
    pub seed: u64,
    /// P(a task execution is lost before its delete — worker death).
    pub failure_rate: f64,
    /// Visibility timeout: how long a lost task takes to reappear, seconds.
    pub visibility_timeout_s: f64,
    /// Log-normal sigma applied to execution times (run-to-run variation;
    /// the paper measured ~1.5–2.3% CV on the clouds).
    pub jitter_sigma: f64,
    /// Record a per-task span [`ppc_trace::Trace`] in the report (costs
    /// memory proportional to span count; the legacy per-worker
    /// [`ppc_core::trace::Timeline`] is derived from it).
    pub trace: bool,
    /// Model a shared per-instance NIC: concurrent storage transfers on one
    /// node serialize through a link of this bandwidth (bytes/s). `None`
    /// (default) gives every worker the full per-connection storage path —
    /// the regime where paper-scale tasks live; enable it to study
    /// IO-heavy workloads (the `ablate_nic_contention` bench).
    pub nic_bandwidth_bytes_per_s: Option<f64>,
    /// Straggler and gray-failure defense (hedged duplicate messages,
    /// health-scored worker quarantine, per-task deadlines) — the DES twin
    /// of [`crate::runtime::ClassicConfig::resilience`]. `None` (default)
    /// keeps legacy behavior bit-identical. Hedging and deadlines are not
    /// modeled on the NIC-contention path.
    pub resilience: Option<ResiliencePolicy>,
    /// Event-queue backend for the DES engine. Every backend yields
    /// bit-identical reports (pinned by `tests/des_differential.rs`); this
    /// dial only trades queue-operation speed. Defaults to
    /// [`QueueKind::from_env`] (`PPC_DES_QUEUE`, else the timing wheel).
    pub queue: QueueKind,
}

impl SimConfig {
    /// EC2-flavored defaults: 2010 S3/SQS latencies, no failures.
    pub fn ec2() -> SimConfig {
        SimConfig {
            storage_latency: LatencyModel::cloud_storage_2010(),
            queue_latency: LatencyModel::cloud_queue_2010(),
            app: AppModel::DEFAULT,
            seed: 42,
            failure_rate: 0.0,
            visibility_timeout_s: 600.0,
            jitter_sigma: 0.02,
            trace: false,
            nic_bandwidth_bytes_per_s: None,
            resilience: None,
            queue: QueueKind::from_env(),
        }
    }

    /// Azure-flavored defaults (same service latencies; Azure's edge in the
    /// paper comes from instance types and the Windows factor, not queues).
    pub fn azure() -> SimConfig {
        SimConfig::ec2()
    }

    pub fn with_app(mut self, app: AppModel) -> SimConfig {
        self.app = app;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    pub fn with_failures(mut self, rate: f64, visibility_timeout_s: f64) -> SimConfig {
        self.failure_rate = rate;
        self.visibility_timeout_s = visibility_timeout_s;
        self
    }

    /// Reject malformed simulation dials with a descriptive error; every
    /// `simulate*` entry point checks this up front.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.failure_rate) {
            return Err(PpcError::InvalidArgument(format!(
                "sim config: failure_rate = {} is not a probability in [0, 1]",
                self.failure_rate
            )));
        }
        if !self.jitter_sigma.is_finite() || self.jitter_sigma < 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "sim config: jitter_sigma = {} must be finite and >= 0",
                self.jitter_sigma
            )));
        }
        if self.failure_rate > 0.0
            && (!self.visibility_timeout_s.is_finite() || self.visibility_timeout_s <= 0.0)
        {
            return Err(PpcError::InvalidArgument(format!(
                "sim config: visibility_timeout_s = {} must be positive when failures are on",
                self.visibility_timeout_s
            )));
        }
        if let Some(policy) = &self.resilience {
            policy.validate()?;
        }
        Ok(())
    }
}

/// Panic with the validation message when a simulation entry point is
/// handed malformed dials — simulators return reports, not `Result`s, so
/// a bad configuration fails loudly rather than silently skewing results.
fn check_sim_inputs(cfg: &SimConfig, schedule: Option<&Arc<FaultSchedule>>) {
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    if let Some(schedule) = schedule {
        if let Err(e) = schedule.validate() {
            panic!("{e}");
        }
    }
}

/// Distribute one attempt's phase spans over `[start_s, end_s]` from the
/// pipeline's modeled durations. The dequeue round-trip opens the attempt
/// and the monitor-send + delete round-trips close it; a failed attempt
/// lumps everything after the download into `execute` (the worker died
/// somewhere in there) and records no terminal ack.
#[allow(clippy::too_many_arguments)]
fn record_attempt(
    rec: &Recorder,
    worker: u32,
    task: u64,
    attempt: u32,
    start_s: f64,
    end_s: f64,
    t_in: f64,
    t_exec: f64,
    t_out: f64,
    t_ctrl: f64,
    ok: bool,
) {
    let c = t_ctrl / 3.0;
    let mut at = start_s;
    let mut push = |phase, dur: f64| {
        rec.span(Span::new(task, attempt, worker, phase, at, at + dur));
        at += dur;
    };
    push(Phase::Dequeue, c);
    push(Phase::Download, t_in);
    if ok {
        push(Phase::Execute, t_exec);
        // Anchor the tail on end_s so NIC queueing delay (if any) lands in
        // the attempt gap between execute and upload.
        let up = end_s - 2.0 * c - t_out;
        rec.span(Span::new(
            task,
            attempt,
            worker,
            Phase::Upload,
            up,
            up + t_out,
        ));
        rec.span(Span::new(
            task,
            attempt,
            worker,
            Phase::Ack,
            up + t_out,
            end_s,
        ));
    } else {
        rec.span(Span::new(task, attempt, worker, Phase::Execute, at, end_s));
    }
    rec.span(Span::new(
        task,
        attempt,
        worker,
        Phase::Attempt,
        start_s,
        end_s,
    ));
}

/// Score a failed attempt into the health tracker (if any), emitting a
/// `Quarantine` event on the Healthy→Quarantined edge. No-op on legacy runs.
fn sim_note_failure(
    health: &mut Option<HealthTracker>,
    rec: &Option<Recorder>,
    worker: u32,
    now_s: f64,
) {
    if let Some(tracker) = health {
        let benched_before = matches!(tracker.health(worker), Health::Quarantined { .. });
        tracker.record_failure(worker, now_s);
        if !benched_before && matches!(tracker.health(worker), Health::Quarantined { .. }) {
            if let Some(rec) = rec {
                rec.event(TraceEvent {
                    at_s: now_s,
                    worker,
                    kind: EventKind::Quarantine,
                });
            }
        }
    }
}

/// Score a successful attempt's latency into the health tracker (if any) —
/// a gray-slow worker can be benched off a success, so this too can emit
/// the `Quarantine` event. No-op on legacy runs.
fn sim_note_success(
    health: &mut Option<HealthTracker>,
    rec: &Option<Recorder>,
    worker: u32,
    latency_s: f64,
    now_s: f64,
) {
    if let Some(tracker) = health {
        let benched_before = matches!(tracker.health(worker), Health::Quarantined { .. });
        tracker.record_success(worker, latency_s, now_s);
        if !benched_before && matches!(tracker.health(worker), Health::Quarantined { .. }) {
            if let Some(rec) = rec {
                rec.event(TraceEvent {
                    at_s: now_s,
                    worker,
                    kind: EventKind::Quarantine,
                });
            }
        }
    }
}

struct SimState {
    rec: Option<Recorder>,
    /// Next attempt index per task id (allocated at message pull).
    attempts: HashMap<u64, u32>,
    pending: VecDeque<TaskSpec>,
    idle_workers: Vec<WorkerRef>,
    completed: usize,
    executions: usize,
    deaths: usize,
    queue_requests: u64,
    storage_requests: u64,
    remote_bytes: u64,
    bytes_in: u64,
    bytes_out: u64,
    /// One independent RNG stream per worker slot (jitter, failure dice),
    /// all derived from the run seed — see [`ppc_core::rng::stream_seed`].
    rngs: Vec<Pcg32>,
    /// Optional event-based chaos shared with the other engines.
    schedule: Option<Arc<FaultSchedule>>,
    /// Per-worker count of tasks pulled so far (the chaos roll index).
    task_seqs: Vec<u32>,
    /// Per-worker virtual time of the last timed-kill check.
    last_kill: Vec<f64>,
    /// Hedging state when the run carries a [`ResiliencePolicy`] with a
    /// hedge config; `None` keeps the legacy path untouched.
    hedge: Option<HedgePolicy>,
    /// Worker quarantine state machine, when the policy asks for one.
    health: Option<HealthTracker>,
    /// Tasks whose first result already committed (first result wins;
    /// duplicate messages are deleted at pull). Empty on legacy runs.
    done: HashSet<u64>,
    /// Tasks that already received their one hedged duplicate.
    hedged: HashSet<u64>,
    /// Armed hedge-check timers per task, cancelled O(1) the moment the
    /// task's first result commits — dead timers stop stretching the
    /// engine's tail (and its event count) for free. Stale handles of
    /// timers that already fired are harmless: `Engine::cancel` is a no-op
    /// on them.
    hedge_timers: HashMap<u64, Vec<EventId>>,
    /// Live attempt count per task (primary + hedge), defended runs only.
    running: HashMap<u64, u32>,
    /// Job size, for the hedge budget.
    n_tasks: usize,
    /// When the last unique task committed. On defended runs this is the
    /// makespan — hedged losers may still be draining after it.
    finished_at_s: f64,
}

#[derive(Clone)]
struct WorkerRef {
    /// Flat index of this worker in the fleet (timeline row).
    index: usize,
    /// Configured workers on this worker's node (drives contention).
    itype_workers: usize,
    /// The node's shared NIC, when NIC contention is modeled.
    nic: Option<ppc_des::FifoServer>,
}

/// Simulate a Classic Cloud run of `tasks` on `cluster`.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_classic::simulate`")]
pub fn simulate(cluster: &Cluster, tasks: &[TaskSpec], cfg: &SimConfig) -> ClassicReport {
    crate::harness::simulate(&RunContext::new(cluster), tasks, cfg)
}

/// [`simulate`] under an event-based [`FaultSchedule`].
#[deprecated(
    note = "build a `ppc_exec::RunContext` with `.with_schedule(…)` and call `ppc_classic::simulate`"
)]
pub fn simulate_chaos(
    cluster: &Cluster,
    tasks: &[TaskSpec],
    cfg: &SimConfig,
    schedule: Arc<FaultSchedule>,
) -> ClassicReport {
    crate::harness::simulate(
        &RunContext::new(cluster).with_schedule(schedule),
        tasks,
        cfg,
    )
}

/// Simulate a *hybrid* Classic Cloud run: several fleets, one queue.
#[deprecated(
    note = "build a `ppc_exec::RunContext` with `RunContext::on_fleets(…)` and call `ppc_classic::simulate`"
)]
pub fn simulate_fleets(fleets: &[Cluster], tasks: &[TaskSpec], cfg: &SimConfig) -> ClassicReport {
    crate::harness::simulate(&RunContext::on_fleets(fleets.to_vec()), tasks, cfg)
}

/// [`simulate_fleets`] under an optional event-based [`FaultSchedule`].
#[deprecated(
    note = "build a `ppc_exec::RunContext` with `RunContext::on_fleets(…).with_schedule(…)` and call `ppc_classic::simulate`"
)]
pub fn simulate_fleets_chaos(
    fleets: &[Cluster],
    tasks: &[TaskSpec],
    cfg: &SimConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> ClassicReport {
    crate::harness::simulate(
        &RunContext::on_fleets(fleets.to_vec()).with_schedule(schedule),
        tasks,
        cfg,
    )
}

/// The fixed-fleet simulation body: every worker slot of every fleet polls
/// the shared scheduling queue in virtual time — the simulated twin of
/// [`crate::runtime::run_on_fleets_impl`] for paper-scale what-if studies
/// ("how much does adding my local cluster to the cloud fleet help?").
/// Reached through [`crate::simulate`], which resolves the [`RunContext`].
pub(crate) fn sim_fleets_impl(
    fleets: &[Cluster],
    tasks: &[TaskSpec],
    cfg: &SimConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> ClassicReport {
    assert!(!tasks.is_empty(), "no tasks to simulate");
    assert!(!fleets.is_empty(), "no fleets to simulate");
    check_sim_inputs(cfg, schedule.as_ref());
    let total_workers: usize = fleets.iter().map(Cluster::total_workers).sum();
    // The client's shuffle and the workers' jitter/failure dice draw from
    // independent streams of the one run seed.
    let mut client_rng = Pcg32::for_stream(cfg.seed, CLIENT_STREAM);
    let mut order: Vec<TaskSpec> = tasks.to_vec();
    // The queue has no ordering guarantee; workers see a shuffled stream.
    client_rng.shuffle(&mut order);

    let state = Rc::new(RefCell::new(SimState {
        rec: cfg.trace.then(Recorder::new),
        attempts: HashMap::new(),
        pending: order.into(),
        idle_workers: Vec::new(),
        completed: 0,
        executions: 0,
        deaths: 0,
        queue_requests: tasks.len() as u64, // the client's sends
        storage_requests: 0,
        remote_bytes: 0,
        bytes_in: 0,
        bytes_out: 0,
        rngs: (0..total_workers)
            .map(|w| Pcg32::for_stream(cfg.seed, w as u64))
            .collect(),
        schedule,
        task_seqs: vec![0; total_workers],
        last_kill: vec![0.0; total_workers],
        hedge: cfg.resilience.and_then(|p| p.hedge).map(HedgePolicy::new),
        health: cfg
            .resilience
            .and_then(|p| p.quarantine)
            .map(HealthTracker::new),
        done: HashSet::new(),
        hedged: HashSet::new(),
        hedge_timers: HashMap::new(),
        running: HashMap::new(),
        n_tasks: tasks.len(),
        finished_at_s: 0.0,
    }));

    if let Some(rec) = &state.borrow().rec {
        // The client pushes every message up front at t = 0.
        for t in tasks {
            rec.span(Span::new(t.id.0, 0, NO_WORKER, Phase::Enqueue, 0.0, 0.0));
        }
    }

    let mut engine = Engine::with_queue(cfg.queue);
    let cfg = *cfg;

    let mut worker_index = 0;
    for (fleet_idx, cluster) in fleets.iter().enumerate() {
        let itype = cluster.itype();
        for node in cluster.nodes() {
            // One shared uplink per instance (serializes that node's
            // concurrent storage transfers) when NIC modeling is on.
            let nic = cfg
                .nic_bandwidth_bytes_per_s
                .map(|_| ppc_des::FifoServer::new(format!("nic-f{fleet_idx}-n{}", node.id), 1));
            for _slot in 0..node.workers {
                let state = state.clone();
                let worker = WorkerRef {
                    index: worker_index,
                    itype_workers: node.workers,
                    nic: nic.clone(),
                };
                worker_index += 1;
                engine.schedule_at(SimTime::ZERO, move |e| {
                    worker_tick(e, state, worker, itype, cfg);
                });
            }
        }
    }
    let itype = fleets[0].itype();

    let end = engine.run();
    let st = state.borrow();
    // On defended runs the job is over when the last unique result commits;
    // hedged losers draining afterwards stretch the engine, not the job.
    let makespan = if cfg.resilience.is_some() && st.finished_at_s > 0.0 {
        st.finished_at_s
    } else {
        end.as_secs_f64()
    };

    let platform = format!("classic-sim-{}", itype.name);
    let trace = st.rec.as_ref().and_then(|rec| {
        rec.set_meta(RunMeta {
            platform: platform.clone(),
            cores: total_workers,
            tasks: st.completed,
            makespan_seconds: makespan,
        });
        rec.span(Span::job(makespan));
        rec.snapshot()
    });

    ClassicReport {
        core: RunReport {
            summary: RunSummary {
                platform,
                cores: total_workers,
                tasks: st.completed,
                makespan_seconds: makespan,
                redundant_executions: st.executions - st.completed,
                remote_bytes: st.remote_bytes,
            },
            failed: Vec::new(),
            total_attempts: st.executions,
            worker_deaths: st.deaths,
            cost: Some(crate::report::fleets_cost(fleets, makespan)),
            trace: trace.clone(),
        },
        queue_requests: st.queue_requests,
        executions_per_fleet: Vec::new(),
        timeline: trace.as_ref().map(ppc_trace::Trace::to_timeline),
        fleet: None,
        storage: MeteringSnapshot {
            requests: st.storage_requests,
            bytes_in: st.bytes_in,
            bytes_out: st.bytes_out,
            stored_bytes: st.bytes_in,
            peak_stored_bytes: st.bytes_in,
        },
    }
}

fn worker_tick(
    engine: &mut Engine,
    state: Rc<RefCell<SimState>>,
    worker: WorkerRef,
    itype: ppc_compute::instance::InstanceType,
    cfg: SimConfig,
) {
    // Quarantine gate: a benched worker pulls nothing until its sentence
    // expires, then re-enters through probation.
    let benched_until = {
        let mut st = state.borrow_mut();
        let now = engine.now().as_secs_f64();
        let SimState { health, rec, .. } = &mut *st;
        health.as_mut().and_then(|tracker| {
            let w = worker.index as u32;
            let benched_before = matches!(tracker.health(w), Health::Quarantined { .. });
            if tracker.allow(w, now) {
                if benched_before {
                    if let Some(rec) = rec {
                        rec.event(TraceEvent {
                            at_s: now,
                            worker: w,
                            kind: EventKind::Release,
                        });
                    }
                }
                None
            } else {
                match tracker.health(w) {
                    Health::Quarantined { until_s } => Some(until_s),
                    _ => None,
                }
            }
        })
    };
    if let Some(until_s) = benched_until {
        let st = state.clone();
        let w = worker.clone();
        engine.schedule_at(SimTime::from_secs_f64(until_s), move |e| {
            worker_tick(e, st, w, itype, cfg);
        });
        return;
    }

    // Pull the next task from the (simulated) scheduling queue. First
    // result wins on defended runs: a duplicate of a task whose result
    // already committed is simply deleted.
    let task = {
        let mut st = state.borrow_mut();
        st.queue_requests += 1; // the receive call
        loop {
            match st.pending.pop_front() {
                Some(t) if st.done.contains(&t.id.0) => {
                    st.queue_requests += 1; // the stale duplicate's delete
                }
                Some(t) => break t,
                None => {
                    // Nothing visible: park; a redelivery event will wake us.
                    st.idle_workers.push(worker);
                    return;
                }
            }
        }
    };

    // Model the full pipeline duration for this task.
    let now_s = engine.now().as_secs_f64();
    let (t_in, t_exec, t_out, t_ctrl, fails) = {
        let mut st = state.borrow_mut();
        st.executions += 1;
        st.storage_requests += 2;
        st.bytes_in += task.profile.output_bytes;
        st.bytes_out += task.profile.input_bytes;
        st.remote_bytes += task.profile.input_bytes + task.profile.output_bytes;

        let mut t_in = cfg
            .storage_latency
            .transfer_seconds(task.profile.input_bytes);
        let t_out = cfg
            .storage_latency
            .transfer_seconds(task.profile.output_bytes);
        let t_exec_base =
            task_service_seconds(&itype, worker.itype_workers, &task.profile, &cfg.app);
        let jitter = if cfg.jitter_sigma > 0.0 {
            st.rngs[worker.index].log_normal(0.0, cfg.jitter_sigma)
        } else {
            1.0
        };
        let mut t_exec = t_exec_base * jitter;
        // receive + monitor-send + delete round trips.
        let t_ctrl = 3.0 * cfg.queue_latency.request_seconds();
        st.queue_requests += 2; // monitor send + delete
        let mut fails = cfg.failure_rate > 0.0 && st.rngs[worker.index].chance(cfg.failure_rate);
        if let Some(schedule) = st.schedule.clone() {
            let w = worker.index as u32;
            let seq = st.task_seqs[worker.index];
            st.task_seqs[worker.index] += 1;
            // Gray failure: a degraded worker computes slower.
            t_exec *= schedule.slowdown(w, now_s);
            // Storage outage: the fetch's retries ride the window out, so
            // the download stalls until the outage closes.
            if let Some(until) = schedule.storage_outage_until(now_s) {
                t_in += until - now_s;
            }
            // Deaths: a pipeline-point die roll, a torn upload, or a timed
            // kill landing inside this task's service window all cost this
            // execution — the message reappears after the visibility
            // timeout, matching the native engine's recovery story.
            let window_end = now_s + t_in + t_exec + t_out + t_ctrl;
            let killed = schedule.kills_in(w, st.last_kill[worker.index], window_end);
            st.last_kill[worker.index] = window_end;
            fails = fails
                || killed
                || schedule.die_before_execute(w, seq)
                || schedule.die_mid_execute(w, seq)
                || schedule.die_before_delete(w, seq)
                || schedule.is_torn_upload(w, seq);
        }
        (t_in, t_exec, t_out, t_ctrl, fails)
    };
    let mut duration_s = t_in + t_exec + t_out + t_ctrl;
    // Per-task deadline: an attempt that would outlive the timeout is cut
    // there and the message re-sent immediately (cancel-and-requeue).
    let deadline = cfg.resilience.and_then(|p| p.deadline);
    let cancelled = match deadline {
        Some(d) if duration_s > d.timeout_s => {
            duration_s = d.timeout_s;
            true
        }
        _ => false,
    };
    // Claim the attempt index at pull time: pulls are ordered in virtual
    // time, so redeliveries get strictly increasing attempt numbers.
    let attempt = if cfg.trace {
        let mut st = state.borrow_mut();
        let a = st.attempts.entry(task.id.0).or_insert(0);
        let n = *a;
        *a += 1;
        n
    } else {
        0
    };
    let parts = if cancelled {
        (t_in.min(duration_s), 0.0, 0.0, 0.0)
    } else {
        (t_in, t_exec, t_out, t_ctrl)
    };
    if cfg.resilience.is_some() {
        let mut st = state.borrow_mut();
        *st.running.entry(task.id.0).or_insert(0) += 1;
    }

    // NIC contention: route the two transfers through the node's shared
    // uplink — concurrent transfers on one instance serialize.
    if let (Some(nic), Some(bw)) = (worker.nic.clone(), cfg.nic_bandwidth_bytes_per_s) {
        let started_at = engine.now().as_secs_f64();
        let task_id = task.id.0;
        let t_nic_in = SimTime::from_secs_f64(task.profile.input_bytes as f64 / bw);
        let t_nic_out = SimTime::from_secs_f64(task.profile.output_bytes as f64 / bw);
        let st2 = state.clone();
        let nic2 = nic.clone();
        let worker2 = worker.clone();
        // Download (storage latency + NIC occupancy) -> compute -> upload
        // (NIC occupancy) -> control -> complete.
        nic.submit(engine, t_nic_in, move |e| {
            let st3 = st2.clone();
            let worker3 = worker2.clone();
            e.schedule_in(SimTime::from_secs_f64(t_in + t_exec), move |e| {
                let st4 = st3.clone();
                let worker4 = worker3.clone();
                nic2.submit(e, t_nic_out, move |e| {
                    e.schedule_in(SimTime::from_secs_f64(t_out + t_ctrl), move |e| {
                        handle_completion(
                            e, st4, worker4, itype, cfg, task, fails, started_at, task_id, attempt,
                            parts,
                        );
                    });
                });
            });
        });
        return;
    }

    // Hedge check: arm a timer one hedge delay past this pull; if the task
    // is still live when it fires, a duplicate message is enqueued.
    if !cancelled && cfg.resilience.is_some_and(|p| p.hedge.is_some()) {
        let delay = state
            .borrow()
            .hedge
            .as_ref()
            .map(|h| h.hedge_delay())
            .unwrap_or(0.0);
        hedge_check_at(
            engine,
            state.clone(),
            task.clone(),
            now_s,
            now_s + delay,
            itype,
            cfg,
        );
    }

    if cancelled {
        // Deadline breach: the worker gives up at the timeout, re-sends the
        // message (no visibility-timeout wait), and polls again.
        let st2 = state.clone();
        let task_id = task.id.0;
        engine.schedule_in(SimTime::from_secs_f64(duration_s), move |e| {
            let now = e.now().as_secs_f64();
            let woken = {
                let mut st = st2.borrow_mut();
                let w = worker.index as u32;
                let SimState {
                    running,
                    health,
                    rec,
                    pending,
                    queue_requests,
                    idle_workers,
                    done,
                    ..
                } = &mut *st;
                if let Some(n) = running.get_mut(&task_id) {
                    *n = n.saturating_sub(1);
                }
                sim_note_failure(health, rec, w, now);
                if let Some(rec) = rec {
                    let (t_in, t_exec, t_out, t_ctrl) = parts;
                    record_attempt(
                        rec,
                        w,
                        task_id,
                        attempt,
                        now - duration_s,
                        now,
                        t_in,
                        t_exec,
                        t_out,
                        t_ctrl,
                        false,
                    );
                    rec.event(TraceEvent {
                        at_s: now,
                        worker: w,
                        kind: EventKind::Cancel,
                    });
                }
                if done.contains(&task_id) {
                    None
                } else {
                    *queue_requests += 1; // the cancel's re-send
                    pending.push_back(task);
                    idle_workers.pop()
                }
            };
            if let Some(w) = woken {
                let st3 = st2.clone();
                e.schedule_in(SimTime::ZERO, move |e| worker_tick(e, st3, w, itype, cfg));
            }
            // Re-poll as an event *after* the wake above, so a woken healthy
            // worker claims the requeued message ahead of this (possibly
            // gray) worker — a direct call here would livelock a lone gray
            // worker on its own cancelled task.
            e.schedule_in(SimTime::ZERO, move |e| {
                worker_tick(e, st2, worker, itype, cfg)
            });
        });
        return;
    }

    if fails {
        // Worker dies before deleting: the message reappears after the
        // visibility timeout, waking an idle worker if one exists.
        let st2 = state.clone();
        let lost_task = task.clone();
        engine.schedule_in(SimTime::from_secs_f64(cfg.visibility_timeout_s), move |e| {
            let woken = {
                let mut st = st2.borrow_mut();
                st.pending.push_back(lost_task);
                st.idle_workers.pop()
            };
            if let Some(w) = woken {
                let st3 = st2.clone();
                e.schedule_in(SimTime::ZERO, move |e| worker_tick(e, st3, w, itype, cfg));
            }
        });
        let st2 = state.clone();
        let task_id = task.id.0;
        engine.schedule_in(SimTime::from_secs_f64(duration_s), move |e| {
            {
                let mut st = st2.borrow_mut();
                st.deaths += 1;
                let end = e.now().as_secs_f64();
                let w = worker.index as u32;
                let SimState {
                    running,
                    health,
                    rec,
                    ..
                } = &mut *st;
                if let Some(n) = running.get_mut(&task_id) {
                    *n = n.saturating_sub(1);
                }
                sim_note_failure(health, rec, w, end);
                if let Some(rec) = rec {
                    let (t_in, t_exec, t_out, t_ctrl) = parts;
                    record_attempt(
                        rec,
                        w,
                        task_id,
                        attempt,
                        end - duration_s,
                        end,
                        t_in,
                        t_exec,
                        t_out,
                        t_ctrl,
                        false,
                    );
                    rec.event(TraceEvent {
                        at_s: end,
                        worker: w,
                        kind: EventKind::Death,
                    });
                }
            }
            // The replacement worker polls again immediately.
            worker_tick(e, st2, worker, itype, cfg);
        });
        return;
    }

    let st2 = state.clone();
    let started_at = engine.now().as_secs_f64();
    let task_id = task.id.0;
    let defended = cfg.resilience.is_some();
    engine.schedule_in(SimTime::from_secs_f64(duration_s), move |e| {
        let dead_timers = {
            let mut st = st2.borrow_mut();
            let end = e.now().as_secs_f64();
            let w = worker.index as u32;
            let SimState {
                running,
                health,
                hedge,
                done,
                rec,
                completed,
                n_tasks,
                finished_at_s,
                hedge_timers,
                ..
            } = &mut *st;
            if let Some(n) = running.get_mut(&task_id) {
                *n = n.saturating_sub(1);
            }
            // First result wins: a hedged loser's output is discarded (its
            // time shows up as wasted duplicate work in the trace).
            let winner = !defended || done.insert(task_id);
            if winner {
                *completed += 1;
                if *completed >= *n_tasks {
                    *finished_at_s = end;
                }
                if let Some(h) = hedge {
                    h.observe(duration_s);
                }
            }
            sim_note_success(health, rec, w, duration_s, end);
            if let Some(rec) = rec {
                let (t_in, t_exec, t_out, t_ctrl) = parts;
                record_attempt(
                    rec, w, task_id, attempt, started_at, end, t_in, t_exec, t_out, t_ctrl, true,
                );
            }
            // The committed result makes every armed hedge check for this
            // task a dead no-op; collect the handles while the state is
            // borrowed, cancel once it isn't.
            if winner {
                hedge_timers.remove(&task_id)
            } else {
                None
            }
        };
        for id in dead_timers.into_iter().flatten() {
            e.cancel(id);
        }
        worker_tick(e, st2, worker, itype, cfg);
    });
}

/// Arm (and, on firing, apply) the hedge check for one pulled attempt: if
/// the task is still live past the policy's delay, a duplicate message is
/// enqueued — the Classic Cloud hedge is a queue re-dispatch, since the
/// queue has no worker affinity and any idle worker picks the copy up.
/// Re-arms itself while the quantile-derived delay grows past the
/// attempt's age.
fn hedge_check_at(
    engine: &mut Engine,
    state: Rc<RefCell<SimState>>,
    task: TaskSpec,
    pulled_s: f64,
    at_s: f64,
    itype: ppc_compute::instance::InstanceType,
    cfg: SimConfig,
) {
    let task_id = task.id.0;
    let reg = state.clone();
    let timer = engine.schedule_at(SimTime::from_secs_f64(at_s.max(pulled_s)), move |e| {
        enum Next {
            Stop,
            Rearm(f64),
            Wake(Option<WorkerRef>),
        }
        let now = e.now().as_secs_f64();
        let next = {
            let mut st = state.borrow_mut();
            let id = task.id.0;
            let SimState {
                hedge,
                hedged,
                done,
                running,
                pending,
                queue_requests,
                rec,
                idle_workers,
                n_tasks,
                ..
            } = &mut *st;
            let live = running.get(&id).copied().unwrap_or(0);
            let policy = hedge.as_mut().expect("hedge check armed without a policy");
            if done.contains(&id) || hedged.contains(&id) || live == 0 {
                Next::Stop
            } else {
                let age = now - pulled_s;
                if policy.should_hedge(age, live, *n_tasks) {
                    policy.record_hedge();
                    hedged.insert(id);
                    *queue_requests += 1; // the duplicate's send
                    pending.push_back(task.clone());
                    if let Some(rec) = rec {
                        rec.event(TraceEvent {
                            at_s: now,
                            worker: NO_WORKER,
                            kind: EventKind::Hedge,
                        });
                    }
                    Next::Wake(idle_workers.pop())
                } else {
                    // Either the delay grew past this attempt's age (re-arm
                    // at the new deadline) or the budget / live-attempt cap
                    // said no (this task will not be hedged).
                    let delay = policy.hedge_delay();
                    if age < delay {
                        Next::Rearm(pulled_s + delay)
                    } else {
                        Next::Stop
                    }
                }
            }
        };
        match next {
            Next::Stop | Next::Wake(None) => {}
            Next::Rearm(at) => {
                // `SimTime` quantizes to whole microseconds, so a target
                // within half a tick of `now` rounds back onto this same
                // instant and the check would re-fire forever without
                // advancing the clock. Bump such targets one tick forward.
                let at = if SimTime::from_secs_f64(at) <= e.now() {
                    SimTime(e.now().as_micros() + 1).as_secs_f64()
                } else {
                    at
                };
                hedge_check_at(e, state, task, pulled_s, at, itype, cfg)
            }
            Next::Wake(Some(w)) => {
                let st = state.clone();
                e.schedule_in(SimTime::ZERO, move |e| worker_tick(e, st, w, itype, cfg));
            }
        }
    });
    reg.borrow_mut()
        .hedge_timers
        .entry(task_id)
        .or_default()
        .push(timer);
}

/// Completion step for the NIC-modeled pipeline: mirror of the tail of
/// [`worker_tick`], reached after the chained transfer/compute events.
#[allow(clippy::too_many_arguments)]
fn handle_completion(
    engine: &mut Engine,
    state: Rc<RefCell<SimState>>,
    worker: WorkerRef,
    itype: ppc_compute::instance::InstanceType,
    cfg: SimConfig,
    task: TaskSpec,
    fails: bool,
    started_at: f64,
    task_id: u64,
    attempt: u32,
    parts: (f64, f64, f64, f64),
) {
    let end = engine.now().as_secs_f64();
    if fails {
        let st2 = state.clone();
        engine.schedule_in(SimTime::from_secs_f64(cfg.visibility_timeout_s), move |e| {
            let woken = {
                let mut st = st2.borrow_mut();
                st.pending.push_back(task);
                st.idle_workers.pop()
            };
            if let Some(w) = woken {
                let st3 = st2.clone();
                e.schedule_in(SimTime::ZERO, move |e| worker_tick(e, st3, w, itype, cfg));
            }
        });
        {
            let mut st = state.borrow_mut();
            st.deaths += 1;
            let w = worker.index as u32;
            let SimState {
                running,
                health,
                rec,
                ..
            } = &mut *st;
            if let Some(n) = running.get_mut(&task_id) {
                *n = n.saturating_sub(1);
            }
            sim_note_failure(health, rec, w, end);
            if let Some(rec) = rec {
                let (t_in, t_exec, t_out, t_ctrl) = parts;
                record_attempt(
                    rec, w, task_id, attempt, started_at, end, t_in, t_exec, t_out, t_ctrl, false,
                );
                rec.event(TraceEvent {
                    at_s: end,
                    worker: w,
                    kind: EventKind::Death,
                });
            }
        }
        worker_tick(engine, state, worker, itype, cfg);
        return;
    }
    {
        let mut st = state.borrow_mut();
        let w = worker.index as u32;
        let defended = cfg.resilience.is_some();
        let SimState {
            running,
            health,
            hedge,
            done,
            rec,
            completed,
            n_tasks,
            finished_at_s,
            ..
        } = &mut *st;
        if let Some(n) = running.get_mut(&task_id) {
            *n = n.saturating_sub(1);
        }
        let winner = !defended || done.insert(task_id);
        if winner {
            *completed += 1;
            if *completed >= *n_tasks {
                *finished_at_s = end;
            }
            if let Some(h) = hedge {
                h.observe(end - started_at);
            }
        }
        sim_note_success(health, rec, w, end - started_at, end);
        if let Some(rec) = rec {
            let (t_in, t_exec, t_out, t_ctrl) = parts;
            record_attempt(
                rec, w, task_id, attempt, started_at, end, t_in, t_exec, t_out, t_ctrl, true,
            );
        }
    }
    worker_tick(engine, state, worker, itype, cfg);
}

// ------------------------------------------------------------ autoscaled

/// State of the autoscaled simulation: the fixed-fleet fields plus the
/// elastic machinery (controller, drain flags, idle parking by slot id).
struct AsState {
    /// Visible messages: `(task, visible_since_s)` — the timestamp feeds
    /// the oldest-message-age telemetry.
    pending: VecDeque<(TaskSpec, f64)>,
    /// Parked workers with nothing to do (never contains draining slots).
    idle: Vec<u32>,
    /// Slots told to retire after their in-hand task.
    drain: std::collections::HashSet<u32>,
    /// Drained slots whose worker has exited, awaiting confirmation at the
    /// controller's next tick.
    retired_inbox: Vec<u32>,
    in_flight: usize,
    completed: usize,
    executions: usize,
    deaths: usize,
    queue_requests: u64,
    storage_requests: u64,
    remote_bytes: u64,
    bytes_in: u64,
    bytes_out: u64,
    n_tasks: usize,
    finished_at_s: f64,
    rec: Option<Recorder>,
    /// Next attempt index per task id (allocated at message pull).
    attempts: HashMap<u64, u32>,
    /// The run seed; per-slot RNG streams derive from it lazily.
    seed: u64,
    /// Per-slot RNG streams (jitter, failure dice), indexed by controller
    /// slot id and grown as the fleet scales out.
    rngs: Vec<Pcg32>,
    controller: Controller,
    /// Optional event-based chaos; slots are addressed by controller id.
    schedule: Option<Arc<FaultSchedule>>,
    /// Per-slot count of tasks pulled so far (the chaos roll index).
    task_seqs: Vec<u32>,
    /// Slots killed by the schedule: their tick chains must end, and a
    /// task in hand at death is lost to the visibility timeout.
    dead: std::collections::HashSet<u32>,
    /// Virtual time of the controller's last timed-kill sweep.
    last_kill_check_s: f64,
    /// Hedging / quarantine / first-result-wins bookkeeping — the elastic
    /// twin of the fields on [`SimState`]; all inert on legacy runs.
    hedge: Option<HedgePolicy>,
    health: Option<HealthTracker>,
    done: HashSet<u64>,
    hedged: HashSet<u64>,
    running: HashMap<u64, u32>,
    /// Armed hedge-check timers per task; see [`SimState::hedge_timers`].
    hedge_timers: HashMap<u64, Vec<EventId>>,
}

impl AsState {
    /// Claim the chaos roll index for `slot`'s next task.
    fn next_seq(&mut self, slot: u32) -> u32 {
        let i = slot as usize;
        if self.task_seqs.len() <= i {
            self.task_seqs.resize(i + 1, 0);
        }
        let seq = self.task_seqs[i];
        self.task_seqs[i] += 1;
        seq
    }

    /// The RNG stream of `slot`, created on first use.
    fn rng(&mut self, slot: u32) -> &mut Pcg32 {
        let i = slot as usize;
        while self.rngs.len() <= i {
            let stream = self.rngs.len() as u64;
            self.rngs.push(Pcg32::for_stream(self.seed, stream));
        }
        &mut self.rngs[i]
    }
}

/// Simulate an *elastic* Classic Cloud run: single-worker instances of
/// `itype` launched and retired in virtual time by a `ppc-autoscale`
/// [`Controller`] — the simulated twin of
/// [`crate::runtime::run_job_autoscaled`], sharing its decision logic and
/// billing exactly (both engines drive the same pure state machine, so a
/// deterministic workload yields the same fleet-size trajectory).
///
/// `arrivals[i]` is the virtual second at which `tasks[i]` enters the
/// scheduling queue; an empty slice enqueues everything at t = 0.
#[deprecated(
    note = "build a `ppc_exec::RunContext` with `RunContext::elastic(…)` and call `ppc_classic::simulate`"
)]
pub fn simulate_autoscaled(
    itype: ppc_compute::instance::InstanceType,
    tasks: &[TaskSpec],
    arrivals: &[f64],
    cfg: &SimConfig,
    autoscale: &AutoscaleConfig,
) -> ClassicReport {
    crate::harness::simulate(
        &RunContext::elastic(itype, autoscale.clone(), arrivals.to_vec()),
        tasks,
        cfg,
    )
}

/// [`simulate_autoscaled`] under an optional event-based [`FaultSchedule`].
#[deprecated(
    note = "build a `ppc_exec::RunContext` with `RunContext::elastic(…).with_schedule(…)` and call `ppc_classic::simulate`"
)]
pub fn simulate_autoscaled_chaos(
    itype: ppc_compute::instance::InstanceType,
    tasks: &[TaskSpec],
    arrivals: &[f64],
    cfg: &SimConfig,
    autoscale: &AutoscaleConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> ClassicReport {
    crate::harness::simulate(
        &RunContext::elastic(itype, autoscale.clone(), arrivals.to_vec()).with_schedule(schedule),
        tasks,
        cfg,
    )
}

/// The elastic simulation body: single-worker instances of `itype`
/// launched and retired in virtual time by a `ppc-autoscale`
/// [`Controller`] — the simulated twin of
/// [`crate::runtime::run_autoscaled_impl`], sharing its decision logic and
/// billing exactly (both engines drive the same pure state machine, so a
/// deterministic workload yields the same fleet-size trajectory). Tasks
/// are delivered FIFO (no shuffle) to keep elastic runs reproducible.
/// Under a [`FaultSchedule`], timed kills take whole instances down (the
/// controller detects the death, records it, and launches a replacement
/// with the scale-up cooldown waived), on top of the per-task chaos the
/// fixed-fleet simulator models. Reached through [`crate::simulate`].
pub(crate) fn sim_autoscaled_impl(
    itype: ppc_compute::instance::InstanceType,
    tasks: &[TaskSpec],
    arrivals: &[f64],
    cfg: &SimConfig,
    autoscale: &AutoscaleConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> ClassicReport {
    assert!(!tasks.is_empty(), "no tasks to simulate");
    assert!(
        arrivals.is_empty() || arrivals.len() == tasks.len(),
        "{} arrival offsets for {} tasks",
        arrivals.len(),
        tasks.len()
    );
    check_sim_inputs(cfg, schedule.as_ref());
    let cfg = *cfg;
    let state = Rc::new(RefCell::new(AsState {
        pending: VecDeque::new(),
        idle: Vec::new(),
        drain: std::collections::HashSet::new(),
        retired_inbox: Vec::new(),
        in_flight: 0,
        completed: 0,
        executions: 0,
        deaths: 0,
        queue_requests: 0,
        storage_requests: 0,
        remote_bytes: 0,
        bytes_in: 0,
        bytes_out: 0,
        n_tasks: tasks.len(),
        finished_at_s: 0.0,
        rec: cfg.trace.then(Recorder::new),
        attempts: HashMap::new(),
        seed: cfg.seed,
        rngs: Vec::new(),
        controller: Controller::new(autoscale.clone()),
        schedule,
        task_seqs: Vec::new(),
        dead: std::collections::HashSet::new(),
        last_kill_check_s: 0.0,
        hedge: cfg.resilience.and_then(|p| p.hedge).map(HedgePolicy::new),
        health: cfg
            .resilience
            .and_then(|p| p.quarantine)
            .map(HealthTracker::new),
        done: HashSet::new(),
        hedged: HashSet::new(),
        running: HashMap::new(),
        hedge_timers: HashMap::new(),
    }));

    let mut engine = Engine::with_queue(cfg.queue);
    // Arrivals first, so that same-instant arrivals precede the worker
    // ticks of the initial fleet (events fire in insertion order).
    for (i, task) in tasks.iter().enumerate() {
        let at = if arrivals.is_empty() {
            0.0
        } else {
            arrivals[i]
        };
        let st = state.clone();
        let task = task.clone();
        engine.schedule_at(SimTime::from_secs_f64(at), move |e| {
            let now = e.now().as_secs_f64();
            {
                let mut s = st.borrow_mut();
                s.queue_requests += 1; // the client's send
                if let Some(rec) = &s.rec {
                    rec.span(Span::new(task.id.0, 0, NO_WORKER, Phase::Enqueue, now, now));
                }
                s.pending.push_back((task, now));
            }
            as_wake_idle(e, st, itype, cfg);
        });
    }
    for slot in 0..autoscale.min_workers {
        let st = state.clone();
        engine.schedule_at(SimTime::ZERO, move |e| {
            as_worker_tick(e, st, slot, itype, cfg);
        });
    }
    {
        let st = state.clone();
        engine.schedule_in(SimTime::from_secs_f64(autoscale.interval_s), move |e| {
            as_controller_tick(e, st, itype, cfg);
        });
    }

    let end = engine.run();
    let mut st = state.borrow_mut();
    let makespan = if st.finished_at_s > 0.0 {
        st.finished_at_s
    } else {
        end.as_secs_f64()
    };

    // Close the fleet ledger, mirroring the native runtime's finalization.
    let last_event_s = st.controller.events().last().map(|e| e.at_s).unwrap_or(0.0);
    let end_s = makespan.max(last_event_s);
    let inbox = std::mem::take(&mut st.retired_inbox);
    for slot in inbox {
        st.controller.confirm_retired(slot, end_s);
    }
    let still_draining: Vec<u32> = st
        .controller
        .slots()
        .iter()
        .filter(|s| s.state == ppc_autoscale::SlotState::Draining)
        .map(|s| s.id)
        .collect();
    for slot in still_draining {
        st.controller.confirm_retired(slot, end_s);
    }
    let fleet =
        crate::runtime::fleet_report(&st.controller, itype, autoscale.billing_hour_s, end_s);

    let platform = format!("classic-sim-autoscale-{}", itype.name);
    let trace = st.rec.as_ref().and_then(|rec| {
        for ev in st.controller.events() {
            rec.event(TraceEvent {
                at_s: ev.at_s,
                worker: ev.slot,
                kind: match ev.kind {
                    ppc_autoscale::FleetEventKind::Launch => EventKind::Launch,
                    ppc_autoscale::FleetEventKind::Drain => EventKind::Drain,
                    ppc_autoscale::FleetEventKind::Retire => EventKind::Retire,
                    ppc_autoscale::FleetEventKind::Died => EventKind::Death,
                },
            });
        }
        rec.set_meta(RunMeta {
            platform: platform.clone(),
            cores: fleet.peak_fleet() as usize,
            tasks: st.completed,
            makespan_seconds: makespan,
        });
        rec.span(Span::job(makespan));
        rec.snapshot()
    });

    ClassicReport {
        core: RunReport {
            summary: RunSummary {
                platform,
                cores: fleet.peak_fleet() as usize,
                tasks: st.completed,
                makespan_seconds: makespan,
                redundant_executions: st.executions - st.completed,
                remote_bytes: st.remote_bytes,
            },
            failed: Vec::new(),
            total_attempts: st.executions,
            worker_deaths: st.deaths,
            cost: Some(fleet.cost),
            trace: trace.clone(),
        },
        queue_requests: st.queue_requests,
        executions_per_fleet: Vec::new(),
        timeline: trace.as_ref().map(ppc_trace::Trace::to_timeline),
        fleet: Some(fleet),
        storage: MeteringSnapshot {
            requests: st.storage_requests,
            bytes_in: st.bytes_in,
            bytes_out: st.bytes_out,
            stored_bytes: st.bytes_in,
            peak_stored_bytes: st.bytes_in,
        },
    }
}

/// Wake one parked worker, if any (one message, one worker).
fn as_wake_idle(
    engine: &mut Engine,
    state: Rc<RefCell<AsState>>,
    itype: ppc_compute::instance::InstanceType,
    cfg: SimConfig,
) {
    let woken = state.borrow_mut().idle.pop();
    if let Some(slot) = woken {
        let st = state.clone();
        engine.schedule_in(SimTime::ZERO, move |e| {
            as_worker_tick(e, st, slot, itype, cfg);
        });
    }
}

/// One autoscaled worker iteration: retire if draining, else pull the next
/// task and model the receive → transfer → execute → report → delete
/// pipeline (one worker per instance, so no slot contention).
fn as_worker_tick(
    engine: &mut Engine,
    state: Rc<RefCell<AsState>>,
    slot: u32,
    itype: ppc_compute::instance::InstanceType,
    cfg: SimConfig,
) {
    let now_s = engine.now().as_secs_f64();
    // Quarantine gate (mirrors the fixed-fleet sim): a benched slot pulls
    // nothing until its sentence expires. Dead, draining, or post-job slots
    // skip the gate — the main block below retires them.
    let benched_until = {
        let mut st = state.borrow_mut();
        if st.completed >= st.n_tasks || st.dead.contains(&slot) || st.drain.contains(&slot) {
            None
        } else {
            let AsState { health, rec, .. } = &mut *st;
            health.as_mut().and_then(|tracker| {
                let benched_before = matches!(tracker.health(slot), Health::Quarantined { .. });
                if tracker.allow(slot, now_s) {
                    if benched_before {
                        if let Some(rec) = rec {
                            rec.event(TraceEvent {
                                at_s: now_s,
                                worker: slot,
                                kind: EventKind::Release,
                            });
                        }
                    }
                    None
                } else {
                    match tracker.health(slot) {
                        Health::Quarantined { until_s } => Some(until_s),
                        _ => None,
                    }
                }
            })
        }
    };
    if let Some(until_s) = benched_until {
        let st = state.clone();
        engine.schedule_at(SimTime::from_secs_f64(until_s), move |e| {
            as_worker_tick(e, st, slot, itype, cfg);
        });
        return;
    }
    let (task, parts, fails, received_at, attempt) = {
        let mut st = state.borrow_mut();
        if st.completed >= st.n_tasks {
            return; // job done; the fleet winds down
        }
        if st.dead.contains(&slot) {
            return; // the instance was chaos-killed: its chain ends
        }
        if st.drain.contains(&slot) {
            // Between tasks the worker holds no lease: exit immediately.
            st.retired_inbox.push(slot);
            return;
        }
        st.queue_requests += 1; // the receive call
                                // First result wins on defended runs: stale duplicates are deleted.
        let (task, _since) = loop {
            match st.pending.pop_front() {
                Some((t, _)) if st.done.contains(&t.id.0) => {
                    st.queue_requests += 1; // the stale duplicate's delete
                }
                Some(pair) => break pair,
                None => {
                    st.idle.push(slot);
                    return;
                }
            }
        };
        st.executions += 1;
        st.storage_requests += 2;
        st.bytes_in += task.profile.output_bytes;
        st.bytes_out += task.profile.input_bytes;
        st.remote_bytes += task.profile.input_bytes + task.profile.output_bytes;
        let mut t_in = cfg
            .storage_latency
            .transfer_seconds(task.profile.input_bytes);
        let t_out = cfg
            .storage_latency
            .transfer_seconds(task.profile.output_bytes);
        let jitter = if cfg.jitter_sigma > 0.0 {
            st.rng(slot).log_normal(0.0, cfg.jitter_sigma)
        } else {
            1.0
        };
        let mut t_exec = task_service_seconds(&itype, 1, &task.profile, &cfg.app) * jitter;
        let t_ctrl = 3.0 * cfg.queue_latency.request_seconds();
        st.queue_requests += 2; // monitor send + delete
        st.in_flight += 1;
        let mut fails = cfg.failure_rate > 0.0 && st.rng(slot).chance(cfg.failure_rate);
        if let Some(schedule) = st.schedule.clone() {
            let seq = st.next_seq(slot);
            t_exec *= schedule.slowdown(slot, now_s);
            if let Some(until) = schedule.storage_outage_until(now_s) {
                t_in += until - now_s;
            }
            // Timed kills are the controller's concern (whole-instance
            // death); per-task dice and torn uploads cost the execution.
            fails = fails
                || schedule.die_before_execute(slot, seq)
                || schedule.die_mid_execute(slot, seq)
                || schedule.die_before_delete(slot, seq)
                || schedule.is_torn_upload(slot, seq);
        }
        let attempt = if cfg.trace {
            let a = st.attempts.entry(task.id.0).or_insert(0);
            let n = *a;
            *a += 1;
            n
        } else {
            0
        };
        (task, (t_in, t_exec, t_out, t_ctrl), fails, now_s, attempt)
    };
    let duration_s = {
        let (t_in, t_exec, t_out, t_ctrl) = parts;
        t_in + t_exec + t_out + t_ctrl
    };
    // Per-task deadline: cut the attempt at the timeout and requeue at once.
    let deadline = cfg.resilience.and_then(|p| p.deadline);
    let (duration_s, cancelled) = match deadline {
        Some(d) if duration_s > d.timeout_s => (d.timeout_s, true),
        _ => (duration_s, false),
    };
    let parts = if cancelled {
        (parts.0.min(duration_s), 0.0, 0.0, 0.0)
    } else {
        parts
    };
    let defended = cfg.resilience.is_some();
    if defended {
        let mut st = state.borrow_mut();
        *st.running.entry(task.id.0).or_insert(0) += 1;
    }
    // Hedge check: arm a timer one hedge delay past this pull; if the task
    // is still live when it fires, a duplicate message is enqueued.
    if !cancelled && cfg.resilience.is_some_and(|p| p.hedge.is_some()) {
        let delay = state
            .borrow()
            .hedge
            .as_ref()
            .map(|h| h.hedge_delay())
            .unwrap_or(0.0);
        as_hedge_check_at(
            engine,
            state.clone(),
            task.clone(),
            now_s,
            now_s + delay,
            itype,
            cfg,
        );
    }

    let st2 = state.clone();
    engine.schedule_in(SimTime::from_secs_f64(duration_s), move |e| {
        let now = e.now().as_secs_f64();
        // An instance chaos-killed while this task was in hand loses the
        // work: the execution never completes and the message reappears.
        let slot_died = st2.borrow().dead.contains(&slot);
        let lost = fails || slot_died;
        let cancel = cancelled && !slot_died;
        let mut dead_timers = None;
        {
            let mut st = st2.borrow_mut();
            st.in_flight -= 1;
            let AsState {
                running,
                health,
                hedge,
                done,
                rec,
                completed,
                n_tasks,
                finished_at_s,
                deaths,
                hedge_timers,
                ..
            } = &mut *st;
            if let Some(n) = running.get_mut(&task.id.0) {
                *n = n.saturating_sub(1);
            }
            if cancel {
                sim_note_failure(health, rec, slot, now);
            } else if lost {
                *deaths += 1;
                if !slot_died {
                    sim_note_failure(health, rec, slot, now);
                }
            } else {
                // First result wins: a hedged loser's output is discarded.
                let winner = !defended || done.insert(task.id.0);
                if winner {
                    *completed += 1;
                    if *completed >= *n_tasks {
                        *finished_at_s = now;
                    }
                    if let Some(h) = hedge {
                        h.observe(duration_s);
                    }
                    // Armed hedge checks for a committed task are dead
                    // no-ops; collect them here, cancel outside the borrow.
                    dead_timers = hedge_timers.remove(&task.id.0);
                }
                sim_note_success(health, rec, slot, duration_s, now);
            }
            if let Some(rec) = rec {
                let (t_in, t_exec, t_out, t_ctrl) = parts;
                record_attempt(
                    rec,
                    slot,
                    task.id.0,
                    attempt,
                    received_at,
                    now,
                    t_in,
                    t_exec,
                    t_out,
                    t_ctrl,
                    !lost && !cancel,
                );
                // Whole-instance deaths are the controller's events; only
                // per-task dice deaths are recorded here.
                if fails && !slot_died && !cancel {
                    rec.event(TraceEvent {
                        at_s: now,
                        worker: slot,
                        kind: EventKind::Death,
                    });
                }
                if cancel {
                    rec.event(TraceEvent {
                        at_s: now,
                        worker: slot,
                        kind: EventKind::Cancel,
                    });
                }
            }
        }
        for id in dead_timers.into_iter().flatten() {
            e.cancel(id);
        }
        if cancel {
            // Cancel-and-requeue: the worker deleted its lease and re-sent
            // the message, so the retry is visible immediately.
            if !st2.borrow().done.contains(&task.id.0) {
                {
                    let mut st = st2.borrow_mut();
                    st.queue_requests += 1; // the cancel's re-send
                    st.pending.push_back((task, now));
                }
                as_wake_idle(e, st2.clone(), itype, cfg);
            }
        } else if lost {
            // The undeleted message reappears one visibility timeout after
            // its receive, waking a parked worker if one exists.
            let reappear_at = (received_at + cfg.visibility_timeout_s).max(now);
            let st3 = st2.clone();
            e.schedule_at(SimTime::from_secs_f64(reappear_at), move |e| {
                let at = e.now().as_secs_f64();
                st3.borrow_mut().pending.push_back((task, at));
                as_wake_idle(e, st3, itype, cfg);
            });
        }
        if slot_died {
            return; // dead instances do not poll again
        }
        if cancel {
            // Re-poll after the wake above so a woken healthy instance
            // claims the requeued message ahead of this (possibly gray)
            // one — a direct call would livelock a lone gray slot on its
            // own cancelled task.
            e.schedule_in(SimTime::ZERO, move |e| {
                as_worker_tick(e, st2, slot, itype, cfg)
            });
        } else {
            as_worker_tick(e, st2, slot, itype, cfg);
        }
    });
}

/// The elastic twin of [`hedge_check_at`]: re-enqueue a duplicate message
/// for a task still live past the hedge delay, waking a parked instance.
fn as_hedge_check_at(
    engine: &mut Engine,
    state: Rc<RefCell<AsState>>,
    task: TaskSpec,
    pulled_s: f64,
    at_s: f64,
    itype: ppc_compute::instance::InstanceType,
    cfg: SimConfig,
) {
    let task_id = task.id.0;
    let reg = state.clone();
    let timer = engine.schedule_at(SimTime::from_secs_f64(at_s.max(pulled_s)), move |e| {
        enum Next {
            Stop,
            Rearm(f64),
            Wake,
        }
        let now = e.now().as_secs_f64();
        let next = {
            let mut st = state.borrow_mut();
            let id = task.id.0;
            let AsState {
                hedge,
                hedged,
                done,
                running,
                pending,
                queue_requests,
                rec,
                n_tasks,
                ..
            } = &mut *st;
            let live = running.get(&id).copied().unwrap_or(0);
            let policy = hedge.as_mut().expect("hedge check armed without a policy");
            if done.contains(&id) || hedged.contains(&id) || live == 0 {
                Next::Stop
            } else {
                let age = now - pulled_s;
                if policy.should_hedge(age, live, *n_tasks) {
                    policy.record_hedge();
                    hedged.insert(id);
                    *queue_requests += 1; // the duplicate's send
                    pending.push_back((task.clone(), now));
                    if let Some(rec) = rec {
                        rec.event(TraceEvent {
                            at_s: now,
                            worker: NO_WORKER,
                            kind: EventKind::Hedge,
                        });
                    }
                    Next::Wake
                } else {
                    // Either the delay grew past this attempt's age (re-arm
                    // at the new deadline) or the budget / live-attempt cap
                    // said no (this task will not be hedged).
                    let delay = policy.hedge_delay();
                    if age < delay {
                        Next::Rearm(pulled_s + delay)
                    } else {
                        Next::Stop
                    }
                }
            }
        };
        match next {
            Next::Stop => {}
            Next::Rearm(at) => as_hedge_check_at(e, state, task, pulled_s, at, itype, cfg),
            Next::Wake => as_wake_idle(e, state, itype, cfg),
        }
    });
    reg.borrow_mut()
        .hedge_timers
        .entry(task_id)
        .or_default()
        .push(timer);
}

/// One controller evaluation in virtual time: confirm retirements, take a
/// telemetry snapshot, apply the decision, and reschedule — until the job
/// completes, after which the tick chain ends and the engine drains.
fn as_controller_tick(
    engine: &mut Engine,
    state: Rc<RefCell<AsState>>,
    itype: ppc_compute::instance::InstanceType,
    cfg: SimConfig,
) {
    let now_s = engine.now().as_secs_f64();
    let (launches, warmup_s, interval_s) = {
        let mut st = state.borrow_mut();
        let inbox = std::mem::take(&mut st.retired_inbox);
        for slot in inbox {
            st.controller.confirm_retired(slot, now_s);
        }
        // Dead-instance sweep: a timed kill addressed to a live slot takes
        // the whole instance down. `mark_dead` records the death and
        // waives the scale-up cooldown so `decide` below can launch a
        // replacement on this very tick.
        if let Some(schedule) = st.schedule.clone() {
            let from_s = st.last_kill_check_s;
            let victims: Vec<u32> = st
                .controller
                .slots()
                .iter()
                .filter(|s| matches!(s.state, SlotState::Warming | SlotState::Active))
                .filter(|s| schedule.kills_in(s.id, from_s, now_s))
                .map(|s| s.id)
                .collect();
            for id in victims {
                st.controller.mark_dead(id, now_s);
                st.dead.insert(id);
                if let Some(pos) = st.idle.iter().position(|&w| w == id) {
                    st.idle.remove(pos);
                }
            }
        }
        st.last_kill_check_s = now_s;
        if st.completed >= st.n_tasks {
            return; // no more ticks: let the engine run dry
        }
        let oldest_age_s = st
            .pending
            .iter()
            .map(|(_, since)| (now_s - since).max(0.0))
            .fold(None, |acc: Option<f64>, age| {
                Some(acc.map_or(age, |m: f64| m.max(age)))
            });
        let telemetry = Telemetry {
            queued: st.pending.len(),
            in_flight: st.in_flight,
            oldest_age_s,
        };
        let launches = match st.controller.decide(now_s, &telemetry) {
            Decision::Launch { ids } => ids,
            Decision::Drain { ids } => {
                for id in ids {
                    st.drain.insert(id);
                    if let Some(pos) = st.idle.iter().position(|&w| w == id) {
                        // An idle victim holds no lease: retire right now.
                        st.idle.remove(pos);
                        st.controller.confirm_retired(id, now_s);
                    }
                }
                Vec::new()
            }
            Decision::Hold => Vec::new(),
        };
        let acfg = st.controller.config();
        (launches, acfg.warmup_s, acfg.interval_s)
    };
    for slot in launches {
        let st = state.clone();
        engine.schedule_in(SimTime::from_secs_f64(warmup_s), move |e| {
            as_worker_tick(e, st, slot, itype, cfg);
        });
    }
    let st = state.clone();
    engine.schedule_in(SimTime::from_secs_f64(interval_s), move |e| {
        as_controller_tick(e, st, itype, cfg);
    });
}

/// Equation 1's sequential baseline on this instance type: all tasks back to
/// back on one otherwise-idle core, inputs local (no transfer terms).
pub fn sequential_baseline_seconds(
    itype: &ppc_compute::instance::InstanceType,
    tasks: &[TaskSpec],
    app: &AppModel,
) -> f64 {
    tasks
        .iter()
        .map(|t| task_service_seconds(itype, 1, &t.profile, app))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::{EC2_HCXL, EC2_HM4XL, EC2_LARGE};
    use ppc_core::task::ResourceProfile;

    fn cpu_tasks(n: u64, secs: f64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec::new(i, "cap3", format!("f{i}"), ResourceProfile::cpu_bound(secs)))
            .collect()
    }

    // Every simulation below goes through the unified harness entry point
    // (`crate::simulate` + a `RunContext`); these helpers shadow the
    // deprecated legacy shims and spell out the context each shape needs.
    fn simulate(cluster: &Cluster, tasks: &[TaskSpec], cfg: &SimConfig) -> ClassicReport {
        crate::simulate(&RunContext::new(cluster), tasks, cfg)
    }

    fn simulate_chaos(
        cluster: &Cluster,
        tasks: &[TaskSpec],
        cfg: &SimConfig,
        schedule: Arc<FaultSchedule>,
    ) -> ClassicReport {
        crate::simulate(
            &RunContext::new(cluster).with_schedule(schedule),
            tasks,
            cfg,
        )
    }

    fn simulate_fleets(fleets: &[Cluster], tasks: &[TaskSpec], cfg: &SimConfig) -> ClassicReport {
        crate::simulate(&RunContext::on_fleets(fleets.to_vec()), tasks, cfg)
    }

    fn simulate_autoscaled(
        itype: ppc_compute::instance::InstanceType,
        tasks: &[TaskSpec],
        arrivals: &[f64],
        cfg: &SimConfig,
        autoscale: &AutoscaleConfig,
    ) -> ClassicReport {
        crate::simulate(
            &RunContext::elastic(itype, autoscale.clone(), arrivals.to_vec()),
            tasks,
            cfg,
        )
    }

    fn simulate_autoscaled_chaos(
        itype: ppc_compute::instance::InstanceType,
        tasks: &[TaskSpec],
        arrivals: &[f64],
        cfg: &SimConfig,
        autoscale: &AutoscaleConfig,
        schedule: Option<Arc<FaultSchedule>>,
    ) -> ClassicReport {
        crate::simulate(
            &RunContext::elastic(itype, autoscale.clone(), arrivals.to_vec())
                .with_schedule(schedule),
            tasks,
            cfg,
        )
    }

    #[test]
    fn makespan_matches_hand_computation() {
        // 16 tasks of 10 s (ref clock) on HCXL-1x8, no jitter, free I/O:
        // two waves of 8 -> exactly 20 s plus queue control time.
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let cfg = SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        let report = simulate(&cluster, &cpu_tasks(16, 10.0), &cfg);
        assert_eq!(report.summary.tasks, 16);
        assert!(
            (report.summary.makespan_seconds - 20.0).abs() < 1e-6,
            "got {}",
            report.summary.makespan_seconds
        );
    }

    #[test]
    fn queue_latency_adds_overhead() {
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let free = SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        let real = SimConfig {
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        let t_free = simulate(&cluster, &cpu_tasks(16, 10.0), &free)
            .summary
            .makespan_seconds;
        let t_real = simulate(&cluster, &cpu_tasks(16, 10.0), &real)
            .summary
            .makespan_seconds;
        assert!(t_real > t_free);
        // Overheads are small relative to coarse-grained tasks (the paper's
        // "sufficiently coarser grain task decompositions" conclusion).
        assert!(t_real < t_free * 1.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let cluster = Cluster::provision(EC2_HCXL, 2, 8);
        let cfg = SimConfig::ec2();
        let a = simulate(&cluster, &cpu_tasks(50, 5.0), &cfg);
        let b = simulate(&cluster, &cpu_tasks(50, 5.0), &cfg);
        assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
        let c = simulate(&cluster, &cpu_tasks(50, 5.0), &cfg.with_seed(7));
        assert_ne!(a.summary.makespan_seconds, c.summary.makespan_seconds);
    }

    #[test]
    fn instance_type_ordering_for_cpu_bound_work() {
        // Figure 4's shape: HM4XL < HCXL < L for the same 16-core workload.
        let tasks = cpu_tasks(200, 20.0);
        let cfg = SimConfig {
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        let t = |cluster: &Cluster| simulate(cluster, &tasks, &cfg).summary.makespan_seconds;
        let hm = t(&Cluster::provision_per_core(EC2_HM4XL, 2));
        let hc = t(&Cluster::provision_per_core(EC2_HCXL, 2));
        let l = t(&Cluster::provision_per_core(EC2_LARGE, 8));
        assert!(hm < hc, "HM4XL ({hm}) beats HCXL ({hc})");
        assert!(hc < l, "HCXL ({hc}) beats Large ({l})");
    }

    #[test]
    fn failures_cause_redelivery_and_slowdown() {
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let tasks = cpu_tasks(64, 5.0);
        let clean = SimConfig {
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        let faulty = clean.with_failures(0.2, 60.0);
        let r_clean = simulate(&cluster, &tasks, &clean);
        let r_faulty = simulate(&cluster, &tasks, &faulty);
        assert_eq!(r_clean.redundant_executions(), 0);
        assert!(r_faulty.redundant_executions() > 0);
        assert_eq!(r_faulty.summary.tasks, 64, "every task still completes");
        assert!(r_faulty.summary.makespan_seconds > r_clean.summary.makespan_seconds);
        assert!(r_faulty.worker_deaths > 0);
    }

    #[test]
    fn parallel_efficiency_is_high_for_coarse_tasks() {
        let cluster = Cluster::provision(EC2_HCXL, 2, 8);
        let tasks = cpu_tasks(128, 60.0);
        let cfg = SimConfig::ec2();
        let report = simulate(&cluster, &tasks, &cfg);
        let t1 = sequential_baseline_seconds(&EC2_HCXL, &tasks, &cfg.app);
        let eff = report.summary.efficiency(t1);
        assert!(eff > 0.9, "efficiency {eff}");
        assert!(
            eff <= 1.02,
            "efficiency cannot meaningfully exceed 1: {eff}"
        );
    }

    #[test]
    fn nic_contention_hurts_io_heavy_tasks_only() {
        // Tasks moving 1 GB each: 8 workers sharing a 125 MB/s NIC must
        // serialize; without the NIC every worker gets the storage path.
        let mut io_tasks = cpu_tasks(32, 10.0);
        for t in io_tasks.iter_mut() {
            t.profile.input_bytes = 1 << 30;
        }
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let base = SimConfig {
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        let with_nic = SimConfig {
            nic_bandwidth_bytes_per_s: Some(125e6),
            ..base
        };
        let free = simulate(&cluster, &io_tasks, &base);
        let contended = simulate(&cluster, &io_tasks, &with_nic);
        assert_eq!(contended.summary.tasks, 32);
        assert!(
            contended.summary.makespan_seconds > 1.5 * free.summary.makespan_seconds,
            "contended {} vs free {}",
            contended.summary.makespan_seconds,
            free.summary.makespan_seconds
        );
        // CPU-bound tasks barely notice the same NIC.
        let cpu = cpu_tasks(32, 10.0);
        let free_cpu = simulate(&cluster, &cpu, &base).summary.makespan_seconds;
        let nic_cpu = simulate(&cluster, &cpu, &with_nic).summary.makespan_seconds;
        assert!(
            nic_cpu < 1.05 * free_cpu,
            "nic {nic_cpu} vs free {free_cpu}"
        );
    }

    #[test]
    fn nic_failure_path_still_completes() {
        let mut io_tasks = cpu_tasks(24, 2.0);
        for t in io_tasks.iter_mut() {
            t.profile.input_bytes = 64 << 20;
        }
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let cfg = SimConfig {
            nic_bandwidth_bytes_per_s: Some(125e6),
            jitter_sigma: 0.0,
            ..SimConfig::ec2().with_failures(0.2, 30.0)
        };
        let report = simulate(&cluster, &io_tasks, &cfg);
        assert_eq!(
            report.summary.tasks, 24,
            "all tasks complete despite failures"
        );
        assert!(report.worker_deaths > 0);
    }

    #[test]
    fn hybrid_fleets_speed_up_the_job() {
        // Cloud-only vs cloud + local cluster on the same queue.
        let cloud = Cluster::provision(EC2_HCXL, 2, 8);
        let local = Cluster::provision(ppc_compute::instance::BARE_CAP3, 2, 8);
        let tasks = cpu_tasks(256, 20.0);
        let cfg = SimConfig {
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        let solo = simulate(&cloud, &tasks, &cfg);
        let hybrid = simulate_fleets(&[cloud.clone(), local], &tasks, &cfg);
        assert_eq!(hybrid.summary.cores, 32);
        assert_eq!(hybrid.summary.tasks, 256);
        // Double the workers: close to half the time (same clock rate).
        let speedup = solo.summary.makespan_seconds / hybrid.summary.makespan_seconds;
        assert!((1.7..2.2).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn trace_records_worker_intervals() {
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let mut cfg = SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        };
        cfg.trace = true;
        let report = simulate(&cluster, &cpu_tasks(12, 10.0), &cfg);
        let timeline = report.timeline.expect("trace requested");
        assert_eq!(timeline.intervals().len(), 12, "one interval per task");
        assert_eq!(timeline.n_workers(), 4);
        // 12 equal tasks on 4 workers: perfectly balanced, fully utilized.
        let util = timeline.utilization(4);
        assert!(util > 0.99, "utilization {util}");
        // Rendering works and shows every worker.
        let art = timeline.render_ascii(40);
        assert_eq!(art.lines().count(), 5, "4 worker rows + axis");
        // Untraced runs carry no timeline.
        cfg.trace = false;
        assert!(simulate(&cluster, &cpu_tasks(4, 1.0), &cfg)
            .timeline
            .is_none());
    }

    #[test]
    fn queue_requests_scale_with_tasks() {
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let report = simulate(&cluster, &cpu_tasks(100, 1.0), &SimConfig::ec2());
        // send + receive + monitor + delete per task, plus idle polls.
        assert!(report.queue_requests >= 400);
    }

    fn autoscale_cfg() -> ppc_autoscale::AutoscaleConfig {
        ppc_autoscale::AutoscaleConfig {
            policy: ppc_autoscale::Policy::TargetBacklog { per_worker: 12.0 },
            min_workers: 1,
            max_workers: 4,
            interval_s: 10.0,
            scale_up_cooldown_s: 30.0,
            scale_down_cooldown_s: 20.0,
            warmup_s: 0.0,
            billing_aware: false,
            billing_window_s: 60.0,
            billing_hour_s: 3600.0,
        }
    }

    fn free_cfg() -> SimConfig {
        SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            ..SimConfig::ec2()
        }
    }

    #[test]
    fn autoscaled_tracks_backlog_up_and_down() {
        // 48 equal tasks in one burst against a 1..4 elastic fleet with a
        // 12-per-worker target: the fleet must jump to 4 (one burst, one
        // launch decision), then step back down to 1 as the backlog
        // drains — one retirement at a time.
        let report = simulate_autoscaled(
            EC2_HCXL,
            &cpu_tasks(48, 30.0),
            &[],
            &free_cfg(),
            &autoscale_cfg(),
        );
        assert_eq!(report.summary.tasks, 48);
        let fleet = report
            .fleet
            .as_ref()
            .expect("autoscaled run reports its fleet");
        assert_eq!(fleet.timeline.size_sequence(), vec![1, 4, 3, 2, 1]);
        assert_eq!(fleet.peak_fleet(), 4);
        assert!(fleet.mean_fleet() > 1.0 && fleet.mean_fleet() < 4.0);
        // Elastic beats the pinned minimum fleet on makespan.
        let fixed_min = simulate(
            &Cluster::provision(EC2_HCXL, 1, 1),
            &cpu_tasks(48, 30.0),
            &free_cfg(),
        );
        assert!(report.summary.makespan_seconds < fixed_min.summary.makespan_seconds);
    }

    #[test]
    fn autoscaled_is_deterministic() {
        let run = || {
            simulate_autoscaled(
                EC2_HCXL,
                &cpu_tasks(60, 20.0),
                &[],
                &SimConfig::ec2(),
                &autoscale_cfg(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
        assert_eq!(
            a.fleet.as_ref().unwrap().timeline.steps(),
            b.fleet.as_ref().unwrap().timeline.steps()
        );
        assert_eq!(a.queue_requests, b.queue_requests);
    }

    #[test]
    fn autoscaled_survives_failures() {
        let cfg = SimConfig {
            jitter_sigma: 0.0,
            ..SimConfig::ec2().with_failures(0.1, 120.0)
        };
        let report =
            simulate_autoscaled(EC2_HCXL, &cpu_tasks(64, 20.0), &[], &cfg, &autoscale_cfg());
        assert_eq!(report.summary.tasks, 64, "every task still completes");
        assert!(report.worker_deaths > 0);
        assert!(report.redundant_executions() > 0);
    }

    #[test]
    fn autoscaled_staggered_arrivals_drive_second_ramp() {
        // Two bursts far apart: the fleet ramps up, drains back to the
        // minimum during the lull, then ramps up again.
        let tasks = cpu_tasks(64, 30.0);
        let arrivals: Vec<f64> = (0..64).map(|i| if i < 32 { 0.0 } else { 2000.0 }).collect();
        let acfg = ppc_autoscale::AutoscaleConfig {
            policy: ppc_autoscale::Policy::TargetBacklog { per_worker: 8.0 },
            ..autoscale_cfg()
        };
        let report = simulate_autoscaled(EC2_HCXL, &tasks, &arrivals, &free_cfg(), &acfg);
        assert_eq!(report.summary.tasks, 64);
        let fleet = report.fleet.unwrap();
        let seq = fleet.timeline.size_sequence();
        let peaks = seq.iter().filter(|&&s| s == 4).count();
        assert!(peaks >= 2, "two ramps expected, got {seq:?}");
        assert_eq!(*seq.last().unwrap(), 1, "fleet returns to minimum");
    }

    #[test]
    fn chaos_schedule_drives_redelivery_slowdown_and_determinism() {
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let tasks = cpu_tasks(64, 5.0);
        let cfg = SimConfig {
            jitter_sigma: 0.0,
            visibility_timeout_s: 60.0,
            ..SimConfig::ec2()
        };
        let schedule = Arc::new(
            FaultSchedule::new(9)
                .kill_at(0, 10.0)
                .kill_at(3, 20.0)
                .kill_mid_execute(1, 1)
                .torn_upload(2, 2)
                .degrade(4, 2.0, 0.0, 100.0)
                .brownout(5.0, 15.0)
                .with_death_probabilities(0.02, 0.02, 0.02),
        );
        let clean = simulate(&cluster, &tasks, &cfg);
        let chaos = simulate_chaos(&cluster, &tasks, &cfg, schedule.clone());
        assert_eq!(chaos.summary.tasks, 64, "every task still completes");
        assert!(chaos.worker_deaths > 0);
        assert!(chaos.redundant_executions() > 0);
        assert!(chaos.summary.makespan_seconds > clean.summary.makespan_seconds);
        // Same schedule, same seed: bit-identical runs.
        let again = simulate_chaos(&cluster, &tasks, &cfg, schedule);
        assert_eq!(
            chaos.summary.makespan_seconds,
            again.summary.makespan_seconds
        );
        assert_eq!(chaos.total_attempts, again.total_attempts);
    }

    #[test]
    #[should_panic(expected = "failure_rate")]
    fn invalid_sim_config_panics_with_message() {
        let cluster = Cluster::provision(EC2_HCXL, 1, 2);
        let cfg = SimConfig::ec2().with_failures(1.5, 60.0);
        simulate(&cluster, &cpu_tasks(2, 1.0), &cfg);
    }

    #[test]
    fn autoscaled_chaos_kill_is_survived_and_deterministic() {
        // Kill an instance mid-run: the controller detects the death,
        // launches a replacement, and every task still completes.
        let cfg = SimConfig {
            visibility_timeout_s: 60.0,
            ..free_cfg()
        };
        let schedule = Arc::new(FaultSchedule::new(3).kill_at(0, 25.0));
        let run = || {
            simulate_autoscaled_chaos(
                EC2_HCXL,
                &cpu_tasks(48, 30.0),
                &[],
                &cfg,
                &autoscale_cfg(),
                Some(schedule.clone()),
            )
        };
        let report = run();
        assert_eq!(report.summary.tasks, 48, "every task still completes");
        let fleet = report.fleet.as_ref().expect("fleet report");
        assert!(fleet.peak_fleet() >= 2);
        let again = run();
        assert_eq!(
            report.summary.makespan_seconds,
            again.summary.makespan_seconds
        );
        assert_eq!(
            report.fleet.unwrap().timeline.steps(),
            again.fleet.unwrap().timeline.steps()
        );
    }

    #[test]
    fn billing_aware_scale_in_wastes_fewer_hours() {
        // A burst that finishes mid-"hour" (compressed to 600 s): the naive
        // policy retires immediately and eats the unused remainder of each
        // instance's billed hour; the billing-aware policy holds instances
        // to their boundary, converting the tail into usable (and billed
        // anyway) headroom. Wasted billed hours must not increase.
        let tasks = cpu_tasks(48, 30.0);
        let naive = autoscale_cfg();
        let aware = ppc_autoscale::AutoscaleConfig {
            billing_aware: true,
            billing_window_s: 60.0,
            billing_hour_s: 600.0,
            ..naive.clone()
        };
        let naive_hours = {
            let mut c = naive;
            c.billing_hour_s = 600.0;
            simulate_autoscaled(EC2_HCXL, &tasks, &[], &free_cfg(), &c)
                .fleet
                .unwrap()
                .wasted_hours
        };
        let aware_hours = simulate_autoscaled(EC2_HCXL, &tasks, &[], &free_cfg(), &aware)
            .fleet
            .unwrap()
            .wasted_hours;
        assert!(
            aware_hours <= naive_hours + 1e-9,
            "aware {aware_hours} vs naive {naive_hours}"
        );
    }

    #[test]
    fn hedging_rescues_gray_straggler() {
        use ppc_resilience::{HedgeConfig, ResiliencePolicy};
        // Worker 0 computes 30× slow for the whole run: without hedging the
        // job waits ~300 s for each task it holds; with hedging a duplicate
        // message lands on a healthy worker and the first result wins.
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let tasks = cpu_tasks(64, 10.0);
        let cfg = SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            trace: true,
            ..SimConfig::ec2()
        };
        let schedule = Arc::new(FaultSchedule::new(1).degrade(0, 30.0, 0.0, 1e9));
        let run = |policy: Option<ResiliencePolicy>| {
            let mut ctx = RunContext::new(&cluster).with_schedule(schedule.clone());
            if let Some(p) = policy {
                ctx = ctx.with_resilience(p);
            }
            crate::simulate(&ctx, &tasks, &cfg)
        };
        let unhedged = run(None);
        let hedged = run(Some(ResiliencePolicy::hedged(HedgeConfig::quantile(30.0))));
        assert_eq!(unhedged.summary.tasks, 64);
        assert_eq!(hedged.summary.tasks, 64, "first result wins exactly once");
        assert!(
            hedged.summary.makespan_seconds < unhedged.summary.makespan_seconds,
            "hedged {} vs unhedged {}",
            hedged.summary.makespan_seconds,
            unhedged.summary.makespan_seconds
        );
        let trace = hedged.core.trace.as_ref().unwrap();
        assert!(trace.events_of_kind(EventKind::Hedge) > 0, "hedges fired");
        assert!(
            hedged.redundant_executions() > 0,
            "the losing duplicates are visible as redundant executions"
        );
    }

    #[test]
    fn hedge_rearm_advances_the_quantized_clock() {
        use ppc_resilience::{HedgeConfig, ResiliencePolicy};
        // Regression: when an attempt's age landed within half a microsecond
        // of the hedge delay, the re-armed check rounded back onto the same
        // `SimTime` instant and re-fired forever — a zero-advance event
        // livelock. Memory-bound tasks whose service times fall on
        // fractional microseconds reproduce it.
        let cluster = Cluster::provision(EC2_HCXL, 4, 8);
        let tasks: Vec<TaskSpec> = (0..8)
            .map(|i| {
                TaskSpec::new(
                    i,
                    "gtm",
                    format!("gtm/in/p{i:05}.bin"),
                    ResourceProfile {
                        cpu_seconds_ref: 2.5,
                        mem_bytes: 1 << 30,
                        shared_mem_bytes: 0,
                        mem_traffic_bytes: 3_800_000_000,
                        input_bytes: 415_000,
                        output_bytes: 160_000,
                    },
                )
            })
            .collect();
        let ctx = RunContext::new(&cluster)
            .with_seed(42)
            .with_schedule(Arc::new(FaultSchedule::new(42).degrade(0, 30.0, 0.0, 1e9)))
            .with_resilience(ResiliencePolicy::hedged(HedgeConfig::quantile(30.0)));
        let report = crate::simulate(&ctx, &tasks, &SimConfig::ec2());
        assert_eq!(report.summary.tasks, 8);
        assert!(report.summary.makespan_seconds.is_finite());
    }

    #[test]
    fn quarantine_benches_gray_worker() {
        use ppc_resilience::{QuarantineConfig, ResiliencePolicy};
        // With quarantine alone (no hedging), the gray worker is benched
        // off the polling path after two slow completions, so healthy
        // workers absorb the queue and the makespan improves. The job must
        // be long enough for the 10×-slow worker to produce that evidence.
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let tasks = cpu_tasks(512, 10.0);
        let cfg = SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            trace: true,
            ..SimConfig::ec2()
        };
        let schedule = Arc::new(FaultSchedule::new(1).degrade(0, 10.0, 0.0, 1e9));
        let run = |policy: Option<ResiliencePolicy>| {
            let mut ctx = RunContext::new(&cluster).with_schedule(schedule.clone());
            if let Some(p) = policy {
                ctx = ctx.with_resilience(p);
            }
            crate::simulate(&ctx, &tasks, &cfg)
        };
        let undefended = run(None);
        let policy = ResiliencePolicy::default().with_quarantine(QuarantineConfig {
            min_samples: 2,
            quarantine_s: 1e4, // benched for the rest of the run
            ..QuarantineConfig::default()
        });
        let defended = run(Some(policy));
        assert_eq!(defended.summary.tasks, 512);
        let trace = defended.core.trace.as_ref().unwrap();
        assert!(
            trace.events_of_kind(EventKind::Quarantine) > 0,
            "the gray worker was benched"
        );
        assert!(
            defended.summary.makespan_seconds < undefended.summary.makespan_seconds,
            "defended {} vs undefended {}",
            defended.summary.makespan_seconds,
            undefended.summary.makespan_seconds
        );
    }

    #[test]
    fn deadline_cancels_and_requeues() {
        use ppc_resilience::ResiliencePolicy;
        // A 30× degradation window covers the start of the run; per-task
        // deadlines cut attempts that cannot finish by 60 s and requeue
        // them, so every task still completes exactly once.
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let tasks = cpu_tasks(64, 10.0);
        let cfg = SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            trace: true,
            ..SimConfig::ec2()
        };
        let schedule = Arc::new(FaultSchedule::new(1).degrade(0, 30.0, 0.0, 1e9));
        let ctx = RunContext::new(&cluster)
            .with_schedule(schedule)
            .with_resilience(ResiliencePolicy::default().with_deadline(60.0));
        let report = crate::simulate(&ctx, &tasks, &cfg);
        assert_eq!(report.summary.tasks, 64, "cancelled tasks are requeued");
        let trace = report.core.trace.as_ref().unwrap();
        assert!(
            trace.events_of_kind(EventKind::Cancel) > 0,
            "deadline breaches cancelled attempts"
        );
        assert!(
            report.summary.makespan_seconds < 64.0 * 300.0,
            "the job does not wait out every gray attempt"
        );
    }
}
