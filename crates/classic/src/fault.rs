//! Worker fault injection for the native runtime.
//!
//! The Classic Cloud model's fault tolerance claim is that a worker can die
//! at *any* point without losing work: an unfinished task's message simply
//! reappears after the visibility timeout. [`FaultPlan`] lets tests kill
//! workers at the three interesting points:
//!
//! * **before execute** — the worker took the message and died; no output
//!   exists; redelivery re-runs the task.
//! * **mid execute** — the worker ran the task but died during the output
//!   upload, leaving a torn (partial) object behind; redelivery re-runs
//!   the task and idempotently overwrites the torn object.
//! * **before delete** — the worker produced and uploaded the output but
//!   died before deleting the message; redelivery runs the task *again*,
//!   harmlessly overwriting the identical output (idempotence).
//!
//! Internally the dice are mapped onto a [`ppc_chaos::FaultSchedule`]
//! (see [`FaultPlan::to_schedule`]), the event-based engine shared with
//! the other paradigms; event-level kills (timed, gray degradation,
//! storage outages) ride in via `ClassicConfig::schedule`.

use ppc_chaos::FaultSchedule;
use ppc_core::{PpcError, Result};

/// Probabilities of a worker "dying" at each pipeline stage, per task.
/// A dead worker abandons its current message and is replaced after
/// `restart_delay_ms` (modeling the cloud's instance auto-recovery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// P(die after receiving, before executing).
    pub die_before_execute: f64,
    /// P(die mid-execution: user code ran, but the worker dies during the
    /// output upload, leaving a torn partial object).
    pub die_mid_execute: f64,
    /// P(die after uploading output, before deleting the message).
    pub die_before_delete: f64,
    /// How long a replacement worker takes to come up, milliseconds.
    pub restart_delay_ms: u64,
    /// Deterministic seed for the per-worker fault dice.
    pub seed: u64,
}

impl FaultPlan {
    /// No injected failures.
    pub const NONE: FaultPlan = FaultPlan {
        die_before_execute: 0.0,
        die_mid_execute: 0.0,
        die_before_delete: 0.0,
        restart_delay_ms: 0,
        seed: 0,
    };

    /// A hostile but survivable environment used by the integration tests.
    pub fn hostile(seed: u64) -> FaultPlan {
        FaultPlan {
            die_before_execute: 0.08,
            die_mid_execute: 0.05,
            die_before_delete: 0.08,
            restart_delay_ms: 1,
            seed,
        }
    }

    pub fn is_quiet(&self) -> bool {
        self.die_before_execute == 0.0
            && self.die_mid_execute == 0.0
            && self.die_before_delete == 0.0
    }

    /// Reject probabilities outside `[0, 1]`, naming the offender.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("die_before_execute", self.die_before_execute),
            ("die_mid_execute", self.die_mid_execute),
            ("die_before_delete", self.die_before_delete),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(PpcError::InvalidArgument(format!(
                    "fault plan: {name} = {p} is not a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Map the i.i.d. pipeline-point dice onto the shared event-based
    /// [`FaultSchedule`] — the runtime queries only the schedule, so
    /// plan-based and event-based chaos go through one engine.
    pub fn to_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(self.seed).with_death_probabilities(
            self.die_before_execute,
            self.die_mid_execute,
            self.die_before_delete,
        )
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_quiet_and_valid() {
        assert!(FaultPlan::NONE.is_quiet());
        assert!(FaultPlan::NONE.validate().is_ok());
        assert!(!FaultPlan::hostile(1).is_quiet());
        assert!(FaultPlan::hostile(1).validate().is_ok());
    }

    #[test]
    fn validation_names_the_bad_probability() {
        let mut p = FaultPlan::NONE;
        p.die_before_execute = 2.0;
        let e = p.validate().unwrap_err();
        assert_eq!(e.code(), "InvalidArgument");
        assert!(e.to_string().contains("die_before_execute"), "{e}");
        let mut p = FaultPlan::NONE;
        p.die_mid_execute = -0.5;
        assert!(p
            .validate()
            .unwrap_err()
            .to_string()
            .contains("die_mid_execute"));
    }

    #[test]
    fn mid_execute_counts_toward_quietness() {
        let mut p = FaultPlan::NONE;
        assert!(p.is_quiet());
        p.die_mid_execute = 0.1;
        assert!(!p.is_quiet());
    }

    #[test]
    fn schedule_mapping_preserves_dice() {
        let p = FaultPlan {
            die_before_execute: 0.1,
            die_mid_execute: 0.2,
            die_before_delete: 0.3,
            restart_delay_ms: 1,
            seed: 42,
        };
        let s = p.to_schedule();
        assert_eq!(s.seed(), 42);
        assert_eq!(s.die_before_execute, 0.1);
        assert_eq!(s.die_mid_execute, 0.2);
        assert_eq!(s.die_before_delete, 0.3);
        assert!(s.validate().is_ok());
        assert!(FaultPlan::NONE.to_schedule().is_quiet());
    }
}
