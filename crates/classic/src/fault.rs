//! Worker fault injection for the native runtime.
//!
//! The Classic Cloud model's fault tolerance claim is that a worker can die
//! at *any* point without losing work: an unfinished task's message simply
//! reappears after the visibility timeout. [`FaultPlan`] lets tests kill
//! workers at the two interesting points:
//!
//! * **before execute** — the worker took the message and died; no output
//!   exists; redelivery re-runs the task.
//! * **before delete** — the worker produced and uploaded the output but
//!   died before deleting the message; redelivery runs the task *again*,
//!   harmlessly overwriting the identical output (idempotence).

/// Probabilities of a worker "dying" at each pipeline stage, per task.
/// A dead worker abandons its current message and is replaced after
/// `restart_delay_ms` (modeling the cloud's instance auto-recovery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// P(die after receiving, before executing).
    pub die_before_execute: f64,
    /// P(die after uploading output, before deleting the message).
    pub die_before_delete: f64,
    /// How long a replacement worker takes to come up, milliseconds.
    pub restart_delay_ms: u64,
    /// Deterministic seed for the per-worker fault dice.
    pub seed: u64,
}

impl FaultPlan {
    /// No injected failures.
    pub const NONE: FaultPlan = FaultPlan {
        die_before_execute: 0.0,
        die_before_delete: 0.0,
        restart_delay_ms: 0,
        seed: 0,
    };

    /// A hostile but survivable environment used by the integration tests.
    pub fn hostile(seed: u64) -> FaultPlan {
        FaultPlan {
            die_before_execute: 0.08,
            die_before_delete: 0.08,
            restart_delay_ms: 1,
            seed,
        }
    }

    pub fn is_quiet(&self) -> bool {
        self.die_before_execute == 0.0 && self.die_before_delete == 0.0
    }

    pub fn validate(&self) -> bool {
        (0.0..=1.0).contains(&self.die_before_execute)
            && (0.0..=1.0).contains(&self.die_before_delete)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_quiet_and_valid() {
        assert!(FaultPlan::NONE.is_quiet());
        assert!(FaultPlan::NONE.validate());
        assert!(!FaultPlan::hostile(1).is_quiet());
        assert!(FaultPlan::hostile(1).validate());
    }

    #[test]
    fn validation() {
        let mut p = FaultPlan::NONE;
        p.die_before_execute = 2.0;
        assert!(!p.validate());
    }
}
