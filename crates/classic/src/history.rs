//! Durable job history in the entity table service.
//!
//! AzureBlast (paper §7) keeps its job metadata in Azure Tables; this
//! module does the same for Classic Cloud runs: each completed job is
//! recorded as one entity, partitioned by application, so operators can
//! query "all cap3 runs" or a run-id range without scanning blobs.

use crate::report::ClassicReport;
use ppc_core::{PpcError, Result};
use ppc_storage::table::{Entity, TableService};

/// Table name used for run records.
pub const HISTORY_TABLE: &str = "ppc-job-history";

/// A durable record of one run, written to / parsed from the table service.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Application name — the table partition key.
    pub app: String,
    /// Caller-assigned run id — the row key (sortable, e.g. zero-padded).
    pub run_id: String,
    pub tasks: usize,
    pub failed: usize,
    pub makespan_seconds: f64,
    pub cores: usize,
    pub redundant_executions: usize,
    pub queue_requests: u64,
}

impl RunRecord {
    /// Build a record from a finished run.
    pub fn from_report(
        app: impl Into<String>,
        run_id: impl Into<String>,
        report: &ClassicReport,
    ) -> RunRecord {
        RunRecord {
            app: app.into(),
            run_id: run_id.into(),
            tasks: report.summary.tasks,
            failed: report.failed.len(),
            makespan_seconds: report.summary.makespan_seconds,
            cores: report.summary.cores,
            redundant_executions: report.redundant_executions(),
            queue_requests: report.queue_requests,
        }
    }

    fn to_entity(&self) -> Entity {
        Entity::new(self.app.clone(), self.run_id.clone())
            .with("tasks", self.tasks.to_string())
            .with("failed", self.failed.to_string())
            .with("makespan_s", format!("{:.6}", self.makespan_seconds))
            .with("cores", self.cores.to_string())
            .with("redundant", self.redundant_executions.to_string())
            .with("queue_requests", self.queue_requests.to_string())
    }

    fn from_entity(e: &Entity) -> Result<RunRecord> {
        let field = |k: &str| {
            e.get(k)
                .ok_or_else(|| PpcError::Codec(format!("history entity missing '{k}'")))
        };
        Ok(RunRecord {
            app: e.partition_key.clone(),
            run_id: e.row_key.clone(),
            tasks: field("tasks")?
                .parse()
                .map_err(|_| PpcError::Codec("bad tasks".into()))?,
            failed: field("failed")?
                .parse()
                .map_err(|_| PpcError::Codec("bad failed".into()))?,
            makespan_seconds: field("makespan_s")?
                .parse()
                .map_err(|_| PpcError::Codec("bad makespan".into()))?,
            cores: field("cores")?
                .parse()
                .map_err(|_| PpcError::Codec("bad cores".into()))?,
            redundant_executions: field("redundant")?
                .parse()
                .map_err(|_| PpcError::Codec("bad redundant".into()))?,
            queue_requests: field("queue_requests")?
                .parse()
                .map_err(|_| PpcError::Codec("bad requests".into()))?,
        })
    }
}

/// Record a run (idempotent per `(app, run_id)`: re-recording replaces).
pub fn record(tables: &TableService, rec: &RunRecord) -> Result<()> {
    tables.ensure_table(HISTORY_TABLE);
    tables.upsert(HISTORY_TABLE, rec.to_entity())?;
    Ok(())
}

/// All runs of one application, ordered by run id.
pub fn runs_of(tables: &TableService, app: &str) -> Result<Vec<RunRecord>> {
    tables.ensure_table(HISTORY_TABLE);
    tables
        .query_partition(HISTORY_TABLE, app)?
        .iter()
        .map(RunRecord::from_entity)
        .collect()
}

/// Aggregate statistics over an application's history.
pub fn summary_of(tables: &TableService, app: &str) -> Result<Option<ppc_core::metrics::Stats>> {
    let runs = runs_of(tables, app)?;
    let makespans: Vec<f64> = runs.iter().map(|r| r.makespan_seconds).collect();
    Ok(ppc_core::metrics::Stats::from_sample(&makespans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::metrics::RunSummary;
    use ppc_core::task::TaskId;
    use ppc_storage::metering::MeteringSnapshot;

    fn report(makespan: f64) -> ClassicReport {
        ClassicReport {
            core: ppc_exec::RunReport {
                summary: RunSummary {
                    platform: "classic".into(),
                    cores: 16,
                    tasks: 100,
                    makespan_seconds: makespan,
                    redundant_executions: 2,
                    remote_bytes: 0,
                },
                failed: vec![TaskId(7)],
                total_attempts: 102,
                worker_deaths: 1,
                cost: None,
                trace: None,
            },
            queue_requests: 420,
            executions_per_fleet: vec![100],
            timeline: None,
            fleet: None,
            storage: MeteringSnapshot::default(),
        }
    }

    #[test]
    fn record_and_query_round_trip() {
        let tables = TableService::new();
        for (i, m) in [(1, 100.0), (2, 110.0), (3, 90.0)] {
            let rec = RunRecord::from_report("cap3", format!("run-{i:04}"), &report(m));
            record(&tables, &rec).unwrap();
        }
        let runs = runs_of(&tables, "cap3").unwrap();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].run_id, "run-0001");
        assert_eq!(runs[0].tasks, 100);
        assert_eq!(runs[0].failed, 1);
        assert!((runs[0].makespan_seconds - 100.0).abs() < 1e-9);
        assert_eq!(runs[0].redundant_executions, 2);
    }

    #[test]
    fn rerecording_replaces() {
        let tables = TableService::new();
        record(
            &tables,
            &RunRecord::from_report("cap3", "run-1", &report(50.0)),
        )
        .unwrap();
        record(
            &tables,
            &RunRecord::from_report("cap3", "run-1", &report(60.0)),
        )
        .unwrap();
        let runs = runs_of(&tables, "cap3").unwrap();
        assert_eq!(runs.len(), 1);
        assert!((runs[0].makespan_seconds - 60.0).abs() < 1e-9);
    }

    #[test]
    fn partitioned_by_app() {
        let tables = TableService::new();
        record(&tables, &RunRecord::from_report("cap3", "r1", &report(1.0))).unwrap();
        record(
            &tables,
            &RunRecord::from_report("blast", "r1", &report(2.0)),
        )
        .unwrap();
        assert_eq!(runs_of(&tables, "cap3").unwrap().len(), 1);
        assert_eq!(runs_of(&tables, "blast").unwrap().len(), 1);
        assert!(runs_of(&tables, "gtm").unwrap().is_empty());
    }

    #[test]
    fn history_statistics() {
        let tables = TableService::new();
        for (i, m) in [(1, 100.0), (2, 104.0), (3, 96.0)] {
            record(
                &tables,
                &RunRecord::from_report("cap3", format!("r{i}"), &report(m)),
            )
            .unwrap();
        }
        let stats = summary_of(&tables, "cap3").unwrap().unwrap();
        assert_eq!(stats.n, 3);
        assert!((stats.mean - 100.0).abs() < 1e-9);
        // The paper's sustained-performance methodology: CV over repeated
        // runs (they measured 1.56% on AWS).
        assert!(stats.cv_percent() < 5.0);
        assert!(summary_of(&tables, "nothing").unwrap().is_none());
    }
}
