//! Job descriptions for the Classic Cloud framework.

use ppc_core::task::TaskSpec;
use ppc_core::{PpcError, Result};
use std::time::Duration;

/// A pleasingly parallel job: a set of independent tasks plus the storage
/// and queue plumbing they flow through.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name; queue and bucket names are derived from it.
    pub name: String,
    /// The independent tasks. Input objects must exist in
    /// [`JobSpec::input_bucket`] under each task's `input_key` before the
    /// job starts (the paper assumes "the data was already present in the
    /// framework's preferred storage location", §3).
    pub tasks: Vec<TaskSpec>,
    pub input_bucket: String,
    pub output_bucket: String,
    /// Visibility timeout for the scheduling queue: must exceed the longest
    /// task execution or live tasks will be spuriously re-executed.
    pub visibility_timeout: Duration,
    /// Give up on a task after this many deliveries (a dead-letter policy;
    /// prevents a poison task from looping forever).
    pub max_deliveries: u32,
}

impl JobSpec {
    /// A job with conventional bucket names and a generous visibility timeout.
    pub fn new(name: impl Into<String>, tasks: Vec<TaskSpec>) -> JobSpec {
        let name = name.into();
        JobSpec {
            input_bucket: format!("{name}-in"),
            output_bucket: format!("{name}-out"),
            name,
            tasks,
            visibility_timeout: Duration::from_secs(600),
            max_deliveries: 5,
        }
    }

    pub fn with_visibility_timeout(mut self, t: Duration) -> JobSpec {
        self.visibility_timeout = t;
        self
    }

    pub fn with_max_deliveries(mut self, n: u32) -> JobSpec {
        self.max_deliveries = n;
        self
    }

    /// Name of the scheduling queue for this job.
    pub fn sched_queue(&self) -> String {
        format!("{}-sched", self.name)
    }

    /// Name of the monitoring queue ("Our implementation uses a monitoring
    /// message queue to monitor the progress of the computation", §2.1.3).
    pub fn monitor_queue(&self) -> String {
        format!("{}-monitor", self.name)
    }

    /// Name of the dead-letter queue: tasks that exhaust `max_deliveries`
    /// are parked here for offline inspection or redrive. The runtime
    /// leaves this queue alive after the job so operators can drain it.
    pub fn dead_letter_queue(&self) -> String {
        format!("{}-dlq", self.name)
    }

    /// Sanity-check the job before spending money on it.
    pub fn validate(&self) -> Result<()> {
        if self.tasks.is_empty() {
            return Err(PpcError::InvalidArgument(format!(
                "job '{}' has no tasks",
                self.name
            )));
        }
        if self.max_deliveries == 0 {
            return Err(PpcError::InvalidArgument(
                "max_deliveries must be at least 1".into(),
            ));
        }
        let mut ids: Vec<u64> = self.tasks.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.tasks.len() {
            return Err(PpcError::InvalidArgument(format!(
                "job '{}' has duplicate task ids",
                self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::task::ResourceProfile;

    fn tasks(n: u64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec::new(i, "app", format!("in/{i}"), ResourceProfile::cpu_bound(1.0)))
            .collect()
    }

    #[test]
    fn names_are_derived() {
        let j = JobSpec::new("cap3", tasks(2));
        assert_eq!(j.sched_queue(), "cap3-sched");
        assert_eq!(j.monitor_queue(), "cap3-monitor");
        assert_eq!(j.input_bucket, "cap3-in");
        assert_eq!(j.output_bucket, "cap3-out");
        assert!(j.validate().is_ok());
    }

    #[test]
    fn empty_job_rejected() {
        assert_eq!(
            JobSpec::new("x", vec![]).validate().unwrap_err().code(),
            "InvalidArgument"
        );
    }

    #[test]
    fn duplicate_task_ids_rejected() {
        let mut ts = tasks(2);
        ts[1].id = ts[0].id;
        assert!(JobSpec::new("x", ts).validate().is_err());
    }

    #[test]
    fn zero_max_deliveries_rejected() {
        let j = JobSpec::new("x", tasks(1)).with_max_deliveries(0);
        assert!(j.validate().is_err());
    }
}
