//! The native Classic Cloud runtime: real threads, real queues, real bytes.
//!
//! One thread per worker slot plays the part of a worker process in a cloud
//! instance (paper Figure 1). The pipeline per task is exactly the paper's:
//! receive → download input over the storage service → run the executable →
//! upload output → report to the monitoring queue → delete the message.
//! Everything that can fail does so through the services' own error
//! surfaces, and recovery is purely the visibility-timeout mechanism.

use crate::fault::FaultPlan;
use crate::report::ClassicReport;
use crate::spec::JobSpec;
use ppc_compute::cluster::Cluster;
use ppc_core::exec::Executor;
use ppc_core::metrics::RunSummary;
use ppc_core::rng::Pcg32;
use ppc_core::task::{TaskId, TaskSpec};
use ppc_core::{PpcError, Result};
use ppc_queue::queue::QueueConfig;
use ppc_queue::service::QueueService;
use ppc_storage::service::StorageService;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for the native runtime.
#[derive(Debug, Clone)]
pub struct ClassicConfig {
    /// Sleep between polls when the scheduling queue comes up empty.
    pub poll_backoff: Duration,
    /// Long-poll window for worker receives (SQS `WaitTimeSeconds`): the
    /// worker blocks up to this long per receive request instead of
    /// hammering the endpoint with empty receives.
    pub long_poll_wait: Duration,
    /// Retry budget for eventually consistent input fetches.
    pub input_fetch_attempts: u32,
    /// Worker fault injection.
    pub fault: FaultPlan,
    /// Chaos dials for the queues this job creates.
    pub queue_chaos: ppc_queue::chaos::ChaosConfig,
    /// Optional live progress probe: the monitor thread stores the number
    /// of resolved (done + failed) tasks here as the job runs, so an
    /// external observer can watch a running job — the role of the paper's
    /// monitoring queue.
    pub progress: Option<Arc<AtomicUsize>>,
}

impl Default for ClassicConfig {
    fn default() -> Self {
        ClassicConfig {
            poll_backoff: Duration::from_micros(200),
            long_poll_wait: Duration::from_millis(20),
            input_fetch_attempts: 16,
            fault: FaultPlan::NONE,
            queue_chaos: ppc_queue::chaos::ChaosConfig::NONE,
            progress: None,
        }
    }
}

/// Shared mutable state between workers and the monitor thread.
struct Shared {
    stop: AtomicBool,
    total_executions: AtomicUsize,
    worker_deaths: AtomicUsize,
    remote_bytes: AtomicU64,
    finished_at: Mutex<Option<Instant>>,
    failed: Mutex<Vec<TaskId>>,
    /// Successful task completions credited per fleet (hybrid accounting).
    per_fleet: Mutex<Vec<usize>>,
}

/// Execute a job on the given (native) cluster and services.
///
/// Returns once every task has either completed or been declared failed
/// after `max_deliveries` attempts.
pub fn run_job(
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    cluster: &Cluster,
    job: &JobSpec,
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
) -> Result<ClassicReport> {
    run_job_on_fleets(
        storage,
        queues,
        std::slice::from_ref(cluster),
        job,
        executor,
        config,
    )
}

/// Execute a job with workers drawn from *several* fleets polling the same
/// scheduling queue — the paper's §2.1.3 extension: "One interesting
/// feature of the Classic Cloud framework is the ability to extend it to
/// use the local machines and clusters side by side with the clouds."
/// Typical use: `&[cloud_fleet, local_cluster]`.
pub fn run_job_on_fleets(
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    fleets: &[Cluster],
    job: &JobSpec,
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
) -> Result<ClassicReport> {
    if fleets.is_empty() {
        return Err(PpcError::InvalidArgument("no worker fleets".into()));
    }
    job.validate()?;
    if !config.fault.validate() {
        return Err(PpcError::InvalidArgument(
            "invalid fault plan probabilities".into(),
        ));
    }

    let sched = queues.create_queue(
        &job.sched_queue(),
        QueueConfig {
            visibility_timeout: job.visibility_timeout,
            chaos: config.queue_chaos,
            seed: config.fault.seed,
        },
    )?;
    let monitor = queues.create_queue(&job.monitor_queue(), QueueConfig::default())?;
    storage.ensure_bucket(&job.output_bucket);

    let storage_before = storage.metering().snapshot();
    let requests_before = queues.total_requests();
    let start = Instant::now();

    // The client populates the scheduling queue with tasks (Figure 1).
    for task in &job.tasks {
        let body = task.to_message()?;
        loop {
            match sched.send(body.clone()) {
                Ok(_) => break,
                Err(e) if e.is_retryable() => continue,
                Err(e) => return Err(e),
            }
        }
    }

    let n_tasks = job.tasks.len();
    let shared = Shared {
        stop: AtomicBool::new(false),
        total_executions: AtomicUsize::new(0),
        worker_deaths: AtomicUsize::new(0),
        remote_bytes: AtomicU64::new(0),
        finished_at: Mutex::new(None),
        failed: Mutex::new(Vec::new()),
        per_fleet: Mutex::new(vec![0; fleets.len()]),
    };

    std::thread::scope(|scope| {
        // Monitor: drains the monitoring queue, decides when the job is done.
        scope.spawn(|| {
            let mut done: HashSet<u64> = HashSet::with_capacity(n_tasks);
            let mut failed: HashSet<u64> = HashSet::new();
            while !shared.stop.load(Ordering::Acquire) {
                match monitor.receive_wait(config.long_poll_wait) {
                    Ok(Some(msg)) => {
                        if let Some(id) = msg.body.strip_prefix("done:") {
                            if let Ok(id) = id.parse::<u64>() {
                                done.insert(id);
                                failed.remove(&id); // a late success still counts
                            }
                        } else if let Some(id) = msg.body.strip_prefix("fail:") {
                            if let Ok(id) = id.parse::<u64>() {
                                if !done.contains(&id) {
                                    failed.insert(id);
                                }
                            }
                        }
                        let _ = monitor.delete(msg.receipt);
                        if let Some(probe) = &config.progress {
                            probe.store(done.len() + failed.len(), Ordering::Relaxed);
                        }
                        if done.len() + failed.len() >= n_tasks {
                            *shared.finished_at.lock().unwrap() = Some(Instant::now());
                            let mut f: Vec<TaskId> = failed.iter().map(|&i| TaskId(i)).collect();
                            f.sort();
                            *shared.failed.lock().unwrap() = f;
                            shared.stop.store(true, Ordering::Release);
                        }
                    }
                    // Guard against a zero-length long-poll window turning
                    // this loop into a busy spin (and a billing storm).
                    Ok(None) => {
                        if config.long_poll_wait.is_zero() {
                            std::thread::sleep(config.poll_backoff);
                        }
                    }
                    Err(_) => std::thread::sleep(config.poll_backoff),
                }
            }
        });

        // Workers: one thread per worker slot, across every fleet.
        for (fleet_id, node_id, slot) in fleets
            .iter()
            .enumerate()
            .flat_map(|(f, c)| c.worker_slots().map(move |(n, s)| (f, n, s)))
        {
            let executor = executor.clone();
            let sched = sched.clone();
            let monitor = monitor.clone();
            let shared = &shared;
            let storage = storage.clone();
            let job = &job;
            let config = &config;
            scope.spawn(move || {
                let mut rng = Pcg32::new(
                    config.fault.seed
                        ^ ((fleet_id as u64) << 40)
                        ^ ((node_id as u64) << 20)
                        ^ slot as u64,
                );
                while !shared.stop.load(Ordering::Acquire) {
                    // Long polling (SQS WaitTimeSeconds): one billable
                    // request per wait window instead of a busy-poll storm.
                    let msg = match sched.receive_wait(config.long_poll_wait) {
                        Ok(Some(m)) => m,
                        Ok(None) => {
                            if config.long_poll_wait.is_zero() {
                                std::thread::sleep(config.poll_backoff);
                            }
                            continue;
                        }
                        Err(_) => {
                            std::thread::sleep(config.poll_backoff);
                            continue;
                        }
                    };

                    let spec = match TaskSpec::from_message(&msg.body) {
                        Ok(s) => s,
                        Err(_) => {
                            // Poison message: report and drop it.
                            let _ = monitor.send("fail:poison".to_string());
                            let _ = sched.delete(msg.receipt);
                            continue;
                        }
                    };

                    // Dead-letter policy: give up on tasks that keep failing.
                    if msg.receive_count > job.max_deliveries {
                        let _ = monitor.send(format!("fail:{}", spec.id.0));
                        let _ = sched.delete(msg.receipt);
                        continue;
                    }

                    // Injected death between receive and execute: the message
                    // stays in flight and reappears after the timeout.
                    if config.fault.die_before_execute > 0.0
                        && rng.chance(config.fault.die_before_execute)
                    {
                        shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(config.fault.restart_delay_ms));
                        continue;
                    }

                    // Download the input file over the storage web interface.
                    let input = match storage.get_with_retry(
                        &job.input_bucket,
                        &spec.input_key,
                        config.input_fetch_attempts,
                    ) {
                        Ok(d) => d,
                        Err(e) if e.is_retryable() => continue, // let it reappear
                        Err(_) => {
                            // Input genuinely missing: the task can never run.
                            let _ = monitor.send(format!("fail:{}", spec.id.0));
                            let _ = sched.delete(msg.receipt);
                            continue;
                        }
                    };

                    shared.total_executions.fetch_add(1, Ordering::Relaxed);
                    let output = match executor.run(&spec, &input) {
                        Ok(o) => o,
                        Err(_) => {
                            // Leave the message; redelivery retries until the
                            // dead-letter policy gives up.
                            continue;
                        }
                    };

                    shared
                        .remote_bytes
                        .fetch_add(input.len() as u64 + output.len() as u64, Ordering::Relaxed);
                    if storage
                        .put(&job.output_bucket, &spec.output_key, output)
                        .is_err()
                    {
                        continue; // redelivery will retry the whole task
                    }

                    // Injected death between upload and delete: the duplicate
                    // re-execution must overwrite with identical output.
                    if config.fault.die_before_delete > 0.0
                        && rng.chance(config.fault.die_before_delete)
                    {
                        shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(config.fault.restart_delay_ms));
                        continue;
                    }

                    let _ = monitor.send(format!("done:{}", spec.id.0));
                    shared.per_fleet.lock().unwrap()[fleet_id] += 1;
                    // A stale receipt here means someone else finished the
                    // task first — harmless by idempotence.
                    let _ = sched.delete(msg.receipt);
                }
            });
        }
    });

    let finished = shared
        .finished_at
        .lock()
        .unwrap()
        .unwrap_or_else(Instant::now);
    let makespan = finished.duration_since(start).as_secs_f64();
    let failed = shared.failed.lock().unwrap().clone();
    let completed = n_tasks - failed.len();
    let total_executions = shared.total_executions.load(Ordering::Relaxed);

    let storage_after = storage.metering().snapshot();
    let per_fleet = shared.per_fleet.into_inner().unwrap();
    let report = ClassicReport {
        summary: RunSummary {
            platform: "classic".into(),
            cores: fleets.iter().map(Cluster::total_workers).sum(),
            tasks: completed,
            makespan_seconds: makespan,
            redundant_executions: total_executions.saturating_sub(completed),
            remote_bytes: shared.remote_bytes.load(Ordering::Relaxed),
        },
        failed,
        total_executions,
        worker_deaths: shared.worker_deaths.load(Ordering::Relaxed),
        queue_requests: queues.total_requests() - requests_before,
        executions_per_fleet: per_fleet,
        timeline: None,
        storage: ppc_storage::metering::MeteringSnapshot {
            requests: storage_after.requests - storage_before.requests,
            bytes_in: storage_after.bytes_in - storage_before.bytes_in,
            bytes_out: storage_after.bytes_out - storage_before.bytes_out,
            stored_bytes: storage_after.stored_bytes,
            peak_stored_bytes: storage_after.peak_stored_bytes,
        },
    };

    // Clean up job queues (buckets are left for the caller to inspect).
    let _ = queues.delete_queue(&job.sched_queue());
    let _ = queues.delete_queue(&job.monitor_queue());

    Ok(report)
}

/// Sequential baseline for Equation 1: run every task back to back on this
/// thread with inputs already local (no storage round trips).
pub fn run_sequential(inputs: &[(TaskSpec, Vec<u8>)], executor: &dyn Executor) -> Result<f64> {
    let start = Instant::now();
    for (spec, input) in inputs {
        executor.run(spec, input)?;
    }
    Ok(start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::cluster::Cluster;
    use ppc_compute::instance::EC2_HCXL;
    use ppc_core::exec::FnExecutor;
    use ppc_core::task::ResourceProfile;

    fn setup(n_tasks: u64) -> (Arc<StorageService>, Arc<QueueService>, JobSpec) {
        let storage = StorageService::in_memory();
        let queues = QueueService::new();
        let tasks: Vec<TaskSpec> = (0..n_tasks)
            .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
            .collect();
        let job = JobSpec::new("t", tasks);
        storage.create_bucket(&job.input_bucket).unwrap();
        for i in 0..n_tasks {
            storage
                .put(
                    &job.input_bucket,
                    &format!("f{i}"),
                    format!("payload-{i}").into_bytes(),
                )
                .unwrap();
        }
        (storage, queues, job)
    }

    fn reverse_executor() -> Arc<dyn Executor> {
        FnExecutor::new("rev", |_s, input: &[u8]| {
            let mut v = input.to_vec();
            v.reverse();
            Ok(v)
        })
    }

    #[test]
    fn small_job_end_to_end() {
        let (storage, queues, job) = setup(20);
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.tasks, 20);
        assert!(report.total_executions >= 20);
        // Every output object exists and is correct.
        for i in 0..20 {
            let out = storage
                .get(&job.output_bucket, &format!("f{i}.out"))
                .unwrap();
            let mut expect = format!("payload-{i}").into_bytes();
            expect.reverse();
            assert_eq!(*out, expect);
        }
        // Queues were cleaned up.
        assert!(queues.queue(&job.sched_queue()).is_err());
        assert!(report.queue_requests > 0);
        assert!(report.storage.requests > 0);
    }

    #[test]
    fn empty_job_is_invalid() {
        let (storage, queues, _) = setup(1);
        let cluster = Cluster::provision(EC2_HCXL, 1, 1);
        let job = JobSpec::new("empty", vec![]);
        let err = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    #[test]
    fn missing_input_fails_that_task_only() {
        let (storage, queues, mut job) = setup(5);
        // Add a task whose input was never uploaded.
        job.tasks.push(TaskSpec::new(
            99,
            "rev",
            "ghost",
            ResourceProfile::cpu_bound(0.0),
        ));
        let cluster = Cluster::provision(EC2_HCXL, 1, 2);
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap();
        assert_eq!(report.failed, vec![TaskId(99)]);
        assert_eq!(report.summary.tasks, 5);
    }

    #[test]
    fn poison_task_hits_dead_letter_policy() {
        let (storage, queues, job) = setup(4);
        let job = job
            .with_visibility_timeout(Duration::from_millis(20))
            .with_max_deliveries(3);
        let exec = FnExecutor::new("half-poison", |spec: &TaskSpec, input: &[u8]| {
            if spec.id.0 == 2 {
                Err(PpcError::TaskFailed("cannot process".into()))
            } else {
                Ok(input.to_vec())
            }
        });
        let cluster = Cluster::provision(EC2_HCXL, 1, 2);
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            exec,
            &ClassicConfig::default(),
        )
        .unwrap();
        assert_eq!(report.failed, vec![TaskId(2)]);
        assert_eq!(report.summary.tasks, 3);
        assert!(
            report.total_executions >= 3 + 3,
            "poison task retried to the delivery cap"
        );
    }

    #[test]
    fn survives_worker_deaths() {
        let (storage, queues, job) = setup(30);
        let job = job.with_visibility_timeout(Duration::from_millis(25));
        let cluster = Cluster::provision(EC2_HCXL, 2, 4);
        let config = ClassicConfig {
            fault: FaultPlan::hostile(17),
            ..ClassicConfig::default()
        };
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &config,
        )
        .unwrap();
        assert!(report.is_complete(), "all tasks complete despite deaths");
        assert_eq!(report.summary.tasks, 30);
        for i in 0..30 {
            let out = storage
                .get(&job.output_bucket, &format!("f{i}.out"))
                .unwrap();
            let mut expect = format!("payload-{i}").into_bytes();
            expect.reverse();
            assert_eq!(*out, expect, "idempotent re-execution left output intact");
        }
    }

    #[test]
    fn survives_queue_chaos() {
        let (storage, queues, job) = setup(25);
        let job = job.with_visibility_timeout(Duration::from_millis(25));
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let config = ClassicConfig {
            queue_chaos: ppc_queue::chaos::ChaosConfig::flaky(),
            ..ClassicConfig::default()
        };
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &config,
        )
        .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.tasks, 25);
    }

    #[test]
    fn hybrid_fleets_share_one_queue() {
        // The paper's cloud + local-cluster extension: both fleets drain
        // the same scheduling queue.
        let (storage, queues, job) = setup(24);
        let cloud = Cluster::provision(EC2_HCXL, 1, 4);
        let local = Cluster::provision(ppc_compute::instance::BARE_CAP3, 1, 4);
        let report = crate::runtime::run_job_on_fleets(
            &storage,
            &queues,
            &[cloud, local],
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.cores, 8, "both fleets' workers counted");
        assert_eq!(report.summary.tasks, 24);
    }

    #[test]
    fn empty_fleet_list_rejected() {
        let (storage, queues, job) = setup(1);
        let err = crate::runtime::run_job_on_fleets(
            &storage,
            &queues,
            &[],
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    #[test]
    fn sequential_baseline_runs_all() {
        let inputs: Vec<(TaskSpec, Vec<u8>)> = (0..10)
            .map(|i| {
                (
                    TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                    vec![1u8; 8],
                )
            })
            .collect();
        let exec = reverse_executor();
        let t = run_sequential(&inputs, exec.as_ref()).unwrap();
        assert!(t >= 0.0);
    }
}
