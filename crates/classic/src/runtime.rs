//! The native Classic Cloud runtime: real threads, real queues, real bytes.
//!
//! One thread per worker slot plays the part of a worker process in a cloud
//! instance (paper Figure 1). The pipeline per task is exactly the paper's:
//! receive → download input over the storage service → run the executable →
//! upload output → report to the monitoring queue → delete the message.
//! Everything that can fail does so through the services' own error
//! surfaces, and recovery is purely the visibility-timeout mechanism.

use crate::fault::FaultPlan;
use crate::report::ClassicReport;
use crate::spec::JobSpec;
use ppc_autoscale::{AutoscaleConfig, Controller, Decision, FleetEventKind, SlotState, Telemetry};
use ppc_chaos::{FaultSchedule, RunClock};
use ppc_compute::billing::FleetLedger;
use ppc_compute::cluster::Cluster;
use ppc_core::exec::Executor;
use ppc_core::metrics::RunSummary;
use ppc_core::retry::{CircuitBreaker, RetryPolicy};
use ppc_core::rng::{Pcg32, CLIENT_STREAM};
use ppc_core::task::{TaskId, TaskSpec};
use ppc_core::{PpcError, Result};
use ppc_exec::{RunContext, RunReport};
use ppc_queue::queue::QueueConfig;
use ppc_queue::service::QueueService;
use ppc_resilience::{DeadlineConfig, Health, HealthTracker, HedgePolicy, ResiliencePolicy};
use ppc_storage::service::StorageService;
use ppc_trace::{AttemptMarker, EventKind, Phase, RunMeta, Span, TraceEvent, TraceSink, NO_WORKER};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for the native runtime.
#[derive(Debug, Clone)]
pub struct ClassicConfig {
    /// Sleep between polls when the scheduling queue comes up empty.
    pub poll_backoff: Duration,
    /// Long-poll window for worker receives (SQS `WaitTimeSeconds`): the
    /// worker blocks up to this long per receive request instead of
    /// hammering the endpoint with empty receives.
    pub long_poll_wait: Duration,
    /// Retry budget for eventually consistent input fetches.
    pub input_fetch_attempts: u32,
    /// Worker fault injection (i.i.d. pipeline-point death dice).
    pub fault: FaultPlan,
    /// Optional event-based chaos: timed worker kills, mid-execution
    /// kills, gray degradation, torn uploads. Workers are addressed by
    /// flat index (fleet runtimes number slots in spawn order; the
    /// autoscaled runtime uses controller slot ids). Composes with
    /// `fault`: both layers are queried.
    pub schedule: Option<Arc<FaultSchedule>>,
    /// Chaos dials for the queues this job creates.
    pub queue_chaos: ppc_queue::chaos::ChaosConfig,
    /// Consecutive retryable storage-fetch failures before the shared
    /// circuit breaker opens and workers fast-fail to redelivery instead
    /// of hammering a browned-out store.
    pub storage_breaker_threshold: u32,
    /// Seconds an open storage breaker waits before letting a probe
    /// request through.
    pub storage_breaker_reset_s: f64,
    /// Optional live progress probe: the monitor thread stores the number
    /// of resolved (done + failed) tasks here as the job runs, so an
    /// external observer can watch a running job — the role of the paper's
    /// monitoring queue.
    pub progress: Option<Arc<AtomicUsize>>,
    /// Optional span sink: when set (and enabled) every task attempt
    /// records its lifecycle phases (`enqueue → dequeue → download →
    /// execute → upload → ack`) plus worker-death events, and the report
    /// carries the finished [`ppc_trace::Trace`]. `None` keeps the hot
    /// path free of any recording cost.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Straggler and gray-failure defense (hedged duplicate messages,
    /// health-scored worker quarantine, per-task deadlines). `None` — the
    /// default — keeps the legacy behavior bit-identical: recovery is the
    /// visibility timeout alone. Hedging and deadlines re-dispatch the
    /// task body through the scheduling queue (the Classic analogue of
    /// speculation); first result wins by output idempotence and the
    /// monitor's done-set dedupe.
    pub resilience: Option<ResiliencePolicy>,
}

impl Default for ClassicConfig {
    fn default() -> Self {
        ClassicConfig {
            poll_backoff: Duration::from_micros(200),
            long_poll_wait: Duration::from_millis(20),
            input_fetch_attempts: 16,
            fault: FaultPlan::NONE,
            schedule: None,
            queue_chaos: ppc_queue::chaos::ChaosConfig::NONE,
            storage_breaker_threshold: 8,
            storage_breaker_reset_s: 0.005,
            progress: None,
            trace: None,
            resilience: None,
        }
    }
}

/// The live span sink, if tracing is on: `None` costs one branch.
fn live_sink(config: &ClassicConfig) -> Option<&dyn TraceSink> {
    config.trace.as_deref().filter(|s| s.enabled())
}

/// Validate every probability-bearing knob of a [`ClassicConfig`]; run at
/// each runtime entry point so out-of-range dials fail loudly up front.
fn validate_config(config: &ClassicConfig) -> Result<()> {
    config.fault.validate()?;
    config.queue_chaos.validate()?;
    if let Some(schedule) = &config.schedule {
        schedule.validate()?;
    }
    if let Some(policy) = &config.resilience {
        policy.validate()?;
    }
    Ok(())
}

/// Worker-health helpers shared by both native bodies: score an attempt
/// outcome into the tracker and surface Healthy→Quarantined transitions as
/// trace events. No-ops when quarantine is off.
fn note_failure(
    health: Option<&Mutex<HealthTracker>>,
    sink: Option<&dyn TraceSink>,
    worker: u32,
    now_s: f64,
) {
    if let Some(h) = health {
        let mut tracker = h.lock().unwrap();
        let benched_before = matches!(tracker.health(worker), Health::Quarantined { .. });
        tracker.record_failure(worker, now_s);
        if !benched_before && matches!(tracker.health(worker), Health::Quarantined { .. }) {
            if let Some(s) = sink {
                s.event(TraceEvent {
                    at_s: now_s,
                    worker,
                    kind: EventKind::Quarantine,
                });
            }
        }
    }
}

fn note_success(
    health: Option<&Mutex<HealthTracker>>,
    sink: Option<&dyn TraceSink>,
    worker: u32,
    latency_s: f64,
    now_s: f64,
) {
    if let Some(h) = health {
        let mut tracker = h.lock().unwrap();
        let benched_before = matches!(tracker.health(worker), Health::Quarantined { .. });
        tracker.record_success(worker, latency_s, now_s);
        if !benched_before && matches!(tracker.health(worker), Health::Quarantined { .. }) {
            if let Some(s) = sink {
                s.event(TraceEvent {
                    at_s: now_s,
                    worker,
                    kind: EventKind::Quarantine,
                });
            }
        }
    }
}

/// The monitor thread's straggler defense: watches `start:`/`done:`
/// progress reports against the run clock and re-dispatches the bodies of
/// tasks that outlive the hedge delay (a duplicate attempt races the
/// straggler — Hadoop's speculation generalized to queue re-dispatch) or
/// their deadline (cancel-and-requeue). First result wins: outputs are
/// idempotent overwrites and the done set ignores late duplicates.
struct MonitorDefense {
    hedge: Option<HedgePolicy>,
    deadline: Option<DeadlineConfig>,
    /// Message body of each task, for re-dispatch.
    bodies: HashMap<u64, String>,
    /// Start time of the most recent attempt of each unresolved task.
    running: HashMap<u64, f64>,
    /// Tasks already hedged once (one duplicate per task).
    hedged: HashSet<u64>,
    n_tasks: usize,
}

impl MonitorDefense {
    /// Build the defense when the policy asks for hedging or deadlines.
    fn new(config: &ClassicConfig, job: &JobSpec) -> Option<MonitorDefense> {
        let policy = config.resilience?;
        if policy.hedge.is_none() && policy.deadline.is_none() {
            return None;
        }
        let bodies = job
            .tasks
            .iter()
            .filter_map(|t| t.to_message().ok().map(|b| (t.id.0, b)))
            .collect();
        Some(MonitorDefense {
            hedge: policy.hedge.map(HedgePolicy::new),
            deadline: policy.deadline,
            bodies,
            running: HashMap::new(),
            hedged: HashSet::new(),
            n_tasks: job.tasks.len(),
        })
    }

    fn on_start(&mut self, id: u64, now_s: f64) {
        self.running.insert(id, now_s);
    }

    fn on_done(&mut self, id: u64, now_s: f64) {
        if let Some(started) = self.running.remove(&id) {
            if let Some(policy) = &mut self.hedge {
                policy.observe(now_s - started);
            }
        }
        self.hedged.remove(&id);
    }

    /// One pass over the running set: hedge stragglers, cancel-and-requeue
    /// deadline breaches. Called on every monitor iteration.
    fn sweep(
        &mut self,
        sched: &ppc_queue::Queue,
        sink: Option<&dyn TraceSink>,
        done: &HashSet<u64>,
        now_s: f64,
    ) {
        let ids: Vec<u64> = self.running.keys().copied().collect();
        for id in ids {
            if done.contains(&id) {
                self.running.remove(&id);
                continue;
            }
            let started = self.running[&id];
            let age = now_s - started;
            if let Some(d) = self.deadline {
                if age > d.timeout_s {
                    // Cancel-and-requeue: the stuck attempt is abandoned to
                    // its lease and a fresh copy of the task re-enters the
                    // queue right now instead of waiting out the
                    // visibility timeout.
                    if let Some(body) = self.bodies.get(&id) {
                        if sched.send(body.clone()).is_ok() {
                            if let Some(s) = sink {
                                s.event(TraceEvent {
                                    at_s: now_s,
                                    worker: NO_WORKER,
                                    kind: EventKind::Cancel,
                                });
                            }
                            self.running.insert(id, now_s);
                        }
                    }
                    continue;
                }
            }
            if let Some(policy) = &mut self.hedge {
                let live = if self.hedged.contains(&id) { 2 } else { 1 };
                if policy.should_hedge(age, live, self.n_tasks) {
                    if let Some(body) = self.bodies.get(&id) {
                        if sched.send(body.clone()).is_ok() {
                            policy.record_hedge();
                            self.hedged.insert(id);
                            if let Some(s) = sink {
                                s.event(TraceEvent {
                                    at_s: now_s,
                                    worker: NO_WORKER,
                                    kind: EventKind::Hedge,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Create (or reuse) the job's dead-letter queue. Unlike the scheduling
/// and monitoring queues, the DLQ persists after the job so operators can
/// inspect or redrive parked tasks — so a rerun finds it already there.
fn dead_letter_queue(queues: &QueueService, job: &JobSpec) -> Result<Arc<ppc_queue::Queue>> {
    match queues.create_queue(&job.dead_letter_queue(), QueueConfig::default()) {
        Ok(q) => Ok(q),
        Err(PpcError::AlreadyExists(_)) => queues.queue(&job.dead_letter_queue()),
        Err(e) => Err(e),
    }
}

/// Retry policy for the client's task-submission sends: effectively
/// unbounded attempts (queue chaos send failures are transient and the
/// original loop retried forever) with a short jittered backoff instead
/// of a busy spin.
fn client_send_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: u32::MAX,
        base_delay: Duration::from_micros(100),
        max_delay: Duration::from_millis(5),
        multiplier: 2.0,
        jitter: 0.5,
        budget: None,
    }
}

/// A worker's view of the chaos configuration: the i.i.d. death dice from
/// the [`FaultPlan`] composed with the optional event-based
/// [`FaultSchedule`], tracked against the shared run clock. Dice are pure
/// hashes of `(seed, roll-point, worker, task_seq)`, so outcomes are
/// deterministic for a given schedule regardless of thread interleaving.
struct WorkerChaos<'a> {
    dice: FaultSchedule,
    events: Option<&'a FaultSchedule>,
    clock: &'a RunClock,
    worker: u32,
    /// Messages this worker has received so far; the per-task roll index.
    task_seq: u32,
    /// Run-clock position of the last timed-kill check, so each scheduled
    /// kill fires exactly once (half-open interval semantics).
    last_kill_s: f64,
}

impl<'a> WorkerChaos<'a> {
    fn new(config: &'a ClassicConfig, clock: &'a RunClock, worker: u32) -> WorkerChaos<'a> {
        WorkerChaos {
            dice: config.fault.to_schedule(),
            events: config.schedule.as_deref(),
            clock,
            worker,
            task_seq: 0,
            last_kill_s: 0.0,
        }
    }

    /// Claim the roll index for the message just received.
    fn next_seq(&mut self) -> u32 {
        let seq = self.task_seq;
        self.task_seq += 1;
        seq
    }

    /// Has a scheduled timed kill fired since the last check?
    fn kill_event_pending(&mut self) -> bool {
        let Some(events) = self.events else {
            return false;
        };
        let now = self.clock.now_s();
        let hit = events.kills_in(self.worker, self.last_kill_s, now);
        self.last_kill_s = now;
        hit
    }

    fn die_before_execute(&self, seq: u32) -> bool {
        self.dice.die_before_execute(self.worker, seq)
            || self
                .events
                .is_some_and(|e| e.die_before_execute(self.worker, seq))
    }

    fn die_mid_execute(&self, seq: u32) -> bool {
        self.dice.die_mid_execute(self.worker, seq)
            || self
                .events
                .is_some_and(|e| e.die_mid_execute(self.worker, seq))
    }

    fn die_before_delete(&self, seq: u32) -> bool {
        self.dice.die_before_delete(self.worker, seq)
            || self
                .events
                .is_some_and(|e| e.die_before_delete(self.worker, seq))
    }

    fn torn_upload(&self, seq: u32) -> bool {
        self.events
            .is_some_and(|e| e.is_torn_upload(self.worker, seq))
    }

    /// Gray-failure slowdown factor in effect for this worker right now.
    fn slowdown(&self) -> f64 {
        self.events
            .map_or(1.0, |e| e.slowdown(self.worker, self.clock.now_s()))
    }
}

/// Shared mutable state between workers and the monitor thread.
struct Shared {
    stop: AtomicBool,
    total_executions: AtomicUsize,
    worker_deaths: AtomicUsize,
    remote_bytes: AtomicU64,
    finished_at: Mutex<Option<Instant>>,
    failed: Mutex<Vec<TaskId>>,
    /// Successful task completions credited per fleet (hybrid accounting).
    per_fleet: Mutex<Vec<usize>>,
}

/// Execute a job on the given (native) cluster and services.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_classic::run`")]
pub fn run_job(
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    cluster: &Cluster,
    job: &JobSpec,
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
) -> Result<ClassicReport> {
    crate::harness::run(
        &RunContext::new(cluster),
        storage,
        queues,
        job,
        executor,
        config,
    )
}

/// Execute a job with workers drawn from *several* fleets sharing a queue.
#[deprecated(
    note = "build a `ppc_exec::RunContext` with `RunContext::on_fleets(…)` and call `ppc_classic::run`"
)]
pub fn run_job_on_fleets(
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    fleets: &[Cluster],
    job: &JobSpec,
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
) -> Result<ClassicReport> {
    crate::harness::run(
        &RunContext::on_fleets(fleets.to_vec()),
        storage,
        queues,
        job,
        executor,
        config,
    )
}

/// The fixed-fleet native body: workers drawn from one or more fleets all
/// polling the same scheduling queue — several fleets is the paper's
/// §2.1.3 extension: "One interesting feature of the Classic Cloud
/// framework is the ability to extend it to use the local machines and
/// clusters side by side with the clouds." Returns once every task has
/// either completed or been declared failed after `max_deliveries`
/// attempts. Reached through [`crate::run`], which resolves the
/// [`RunContext`] into the effective config.
pub(crate) fn run_on_fleets_impl(
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    fleets: &[Cluster],
    job: &JobSpec,
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
) -> Result<ClassicReport> {
    if fleets.is_empty() {
        return Err(PpcError::InvalidArgument("no worker fleets".into()));
    }
    job.validate()?;
    validate_config(config)?;

    let sched = queues.create_queue(
        &job.sched_queue(),
        QueueConfig {
            visibility_timeout: job.visibility_timeout,
            chaos: config.queue_chaos,
            seed: config.fault.seed,
        },
    )?;
    let monitor = queues.create_queue(&job.monitor_queue(), QueueConfig::default())?;
    let dlq = dead_letter_queue(queues, job)?;
    storage.ensure_bucket(&job.output_bucket);

    // Arm the storage service with the chaos schedule (brownouts,
    // partitions) for the duration of the run; workers share the same
    // run clock so timed worker kills line up with storage windows.
    let clock = RunClock::start();
    if let Some(schedule) = &config.schedule {
        storage.set_chaos(schedule.clone());
    }
    let breaker = CircuitBreaker::new(
        config.storage_breaker_threshold,
        config.storage_breaker_reset_s,
    );
    let health: Option<Mutex<HealthTracker>> = config
        .resilience
        .and_then(|p| p.quarantine)
        .map(|q| Mutex::new(HealthTracker::new(q)));
    let health = health.as_ref();

    let storage_before = storage.metering().snapshot();
    let requests_before = queues.total_requests();
    let start = Instant::now();

    // The client populates the scheduling queue with tasks (Figure 1).
    // Transient send failures (queue chaos) retry through the shared
    // policy; anything else aborts the job before workers start.
    let send_policy = client_send_policy();
    let mut send_rng = Pcg32::for_stream(config.fault.seed, CLIENT_STREAM);
    for task in &job.tasks {
        let body = task.to_message()?;
        let sent_at = live_sink(config).map(|_| clock.now_s());
        send_policy.run_blocking(&mut send_rng, |_| sched.send(body.clone()))?;
        if let (Some(s), Some(at)) = (live_sink(config), sent_at) {
            s.span(Span::new(
                task.id.0,
                0,
                NO_WORKER,
                Phase::Enqueue,
                at,
                clock.now_s(),
            ));
        }
    }

    let n_tasks = job.tasks.len();
    let shared = Shared {
        stop: AtomicBool::new(false),
        total_executions: AtomicUsize::new(0),
        worker_deaths: AtomicUsize::new(0),
        remote_bytes: AtomicU64::new(0),
        finished_at: Mutex::new(None),
        failed: Mutex::new(Vec::new()),
        per_fleet: Mutex::new(vec![0; fleets.len()]),
    };

    std::thread::scope(|scope| {
        // Monitor: drains the monitoring queue, decides when the job is done.
        scope.spawn(|| monitor_loop(&monitor, &sched, config, &shared, job, &clock));

        // Workers: one thread per worker slot, across every fleet. The
        // chaos schedule addresses workers by their flat spawn index.
        for (windex, (fleet_id, _node, _slot)) in fleets
            .iter()
            .enumerate()
            .flat_map(|(f, c)| c.worker_slots().map(move |(n, s)| (f, n, s)))
            .enumerate()
        {
            let executor = executor.clone();
            let sched = sched.clone();
            let monitor = monitor.clone();
            let dlq = dlq.clone();
            let shared = &shared;
            let storage = storage.clone();
            let job = &job;
            let config = &config;
            let clock = &clock;
            let breaker = &breaker;
            scope.spawn(move || {
                if let Some(s) = live_sink(config) {
                    s.event(TraceEvent {
                        at_s: clock.now_s(),
                        worker: windex as u32,
                        kind: EventKind::WorkerStart,
                    });
                }
                let mut chaos = WorkerChaos::new(config, clock, windex as u32);
                while !shared.stop.load(Ordering::Acquire) {
                    poll_once(
                        &sched,
                        &monitor,
                        &dlq,
                        shared,
                        &storage,
                        job,
                        config,
                        executor.as_ref(),
                        fleet_id,
                        &mut chaos,
                        breaker,
                        health,
                    );
                }
            });
        }
    });
    if config.schedule.is_some() {
        storage.clear_chaos();
    }

    let finished = shared
        .finished_at
        .lock()
        .unwrap()
        .unwrap_or_else(Instant::now);
    let makespan = finished.duration_since(start).as_secs_f64();
    let failed = shared.failed.lock().unwrap().clone();
    let completed = n_tasks - failed.len();
    let total_executions = shared.total_executions.load(Ordering::Relaxed);

    let storage_after = storage.metering().snapshot();
    let per_fleet = shared.per_fleet.into_inner().unwrap();
    let mut report = ClassicReport {
        core: RunReport {
            summary: RunSummary {
                platform: "classic".into(),
                cores: fleets.iter().map(Cluster::total_workers).sum(),
                tasks: completed,
                makespan_seconds: makespan,
                redundant_executions: total_executions.saturating_sub(completed),
                remote_bytes: shared.remote_bytes.load(Ordering::Relaxed),
            },
            failed,
            total_attempts: total_executions,
            worker_deaths: shared.worker_deaths.load(Ordering::Relaxed),
            cost: Some(crate::report::fleets_cost(fleets, makespan)),
            trace: None,
        },
        queue_requests: queues.total_requests() - requests_before,
        executions_per_fleet: per_fleet,
        timeline: None,
        fleet: None,
        storage: ppc_storage::metering::MeteringSnapshot {
            requests: storage_after.requests - storage_before.requests,
            bytes_in: storage_after.bytes_in - storage_before.bytes_in,
            bytes_out: storage_after.bytes_out - storage_before.bytes_out,
            stored_bytes: storage_after.stored_bytes,
            peak_stored_bytes: storage_after.peak_stored_bytes,
        },
    };
    finalize_trace(config, &mut report);

    // Clean up job queues (buckets are left for the caller to inspect).
    let _ = queues.delete_queue(&job.sched_queue());
    let _ = queues.delete_queue(&job.monitor_queue());

    Ok(report)
}

/// Stamp the run metadata + job span into the sink and move the finished
/// trace (and its derived legacy timeline) into the report. The makespan
/// written here is byte-identical to `report.summary.makespan_seconds`, so
/// `Trace::parallel_efficiency` reproduces `RunSummary::efficiency` exactly.
fn finalize_trace(config: &ClassicConfig, report: &mut ClassicReport) {
    if let Some(s) = live_sink(config) {
        s.set_meta(RunMeta {
            platform: report.summary.platform.clone(),
            cores: report.summary.cores,
            tasks: report.summary.tasks,
            makespan_seconds: report.summary.makespan_seconds,
        });
        s.span(Span::job(report.summary.makespan_seconds));
        report.trace = s.snapshot();
        report.timeline = report.trace.as_ref().map(ppc_trace::Trace::to_timeline);
    }
}

/// The monitor thread body: drains the monitoring queue and flips
/// `shared.stop` once every task is resolved (done or failed). When a
/// resilience policy with hedging or deadlines is set, the monitor also
/// plays job manager: it tracks `start:` progress reports and re-dispatches
/// straggling tasks through `sched` (see [`MonitorDefense`]).
fn monitor_loop(
    monitor: &ppc_queue::Queue,
    sched: &ppc_queue::Queue,
    config: &ClassicConfig,
    shared: &Shared,
    job: &JobSpec,
    clock: &RunClock,
) {
    let n_tasks = job.tasks.len();
    let mut done: HashSet<u64> = HashSet::with_capacity(n_tasks);
    let mut failed: HashSet<u64> = HashSet::new();
    let mut defense = MonitorDefense::new(config, job);
    let sink = live_sink(config);
    while !shared.stop.load(Ordering::Acquire) {
        match monitor.receive_wait(config.long_poll_wait) {
            Ok(Some(msg)) => {
                if let Some(id) = msg.body.strip_prefix("done:") {
                    if let Ok(id) = id.parse::<u64>() {
                        done.insert(id);
                        failed.remove(&id); // a late success still counts
                        if let Some(d) = &mut defense {
                            d.on_done(id, clock.now_s());
                        }
                    }
                } else if let Some(id) = msg.body.strip_prefix("fail:") {
                    if let Ok(id) = id.parse::<u64>() {
                        if !done.contains(&id) {
                            failed.insert(id);
                        }
                    }
                } else if let Some(id) = msg.body.strip_prefix("start:") {
                    if let (Ok(id), Some(d)) = (id.parse::<u64>(), &mut defense) {
                        if !done.contains(&id) {
                            d.on_start(id, clock.now_s());
                        }
                    }
                }
                let _ = monitor.delete(msg.receipt);
                if let Some(probe) = &config.progress {
                    probe.store(done.len() + failed.len(), Ordering::Relaxed);
                }
                if done.len() + failed.len() >= n_tasks {
                    *shared.finished_at.lock().unwrap() = Some(Instant::now());
                    let mut f: Vec<TaskId> = failed.iter().map(|&i| TaskId(i)).collect();
                    f.sort();
                    *shared.failed.lock().unwrap() = f;
                    shared.stop.store(true, Ordering::Release);
                }
            }
            // Guard against a zero-length long-poll window turning
            // this loop into a busy spin (and a billing storm).
            Ok(None) => {
                if config.long_poll_wait.is_zero() {
                    std::thread::sleep(config.poll_backoff);
                }
            }
            Err(_) => std::thread::sleep(config.poll_backoff),
        }
        if let Some(d) = &mut defense {
            d.sweep(sched, sink, &done, clock.now_s());
        }
    }
}

/// One worker iteration: receive → download → execute → upload → report →
/// delete. A `return` leaves any in-flight message to the visibility
/// timeout, exactly as a `continue` did when this lived inline in the
/// worker loop. One call holds at most one lease, so a worker that stops
/// calling this between iterations (stop flag, drain flag) never abandons
/// a leased message.
#[allow(clippy::too_many_arguments)]
fn poll_once(
    sched: &ppc_queue::Queue,
    monitor: &ppc_queue::Queue,
    dlq: &ppc_queue::Queue,
    shared: &Shared,
    storage: &StorageService,
    job: &JobSpec,
    config: &ClassicConfig,
    executor: &dyn Executor,
    fleet_id: usize,
    chaos: &mut WorkerChaos<'_>,
    breaker: &CircuitBreaker,
    health: Option<&Mutex<HealthTracker>>,
) {
    let restart_delay = Duration::from_millis(config.fault.restart_delay_ms);
    let sink = live_sink(config);

    // Health-scored quarantine: a benched worker stays off the assignment
    // path entirely (it does not even receive), then re-enters through
    // probation when its bench expires.
    if let Some(h) = health {
        let now_s = chaos.clock.now_s();
        let mut tracker = h.lock().unwrap();
        let benched_before = matches!(tracker.health(chaos.worker), Health::Quarantined { .. });
        if !tracker.allow(chaos.worker, now_s) {
            drop(tracker);
            std::thread::sleep(config.poll_backoff);
            return;
        }
        if benched_before {
            if let Some(s) = sink {
                s.event(TraceEvent {
                    at_s: now_s,
                    worker: chaos.worker,
                    kind: EventKind::Release,
                });
            }
        }
    }

    let polled_at = sink.map(|_| chaos.clock.now_s());
    // Long polling (SQS WaitTimeSeconds): one billable request per wait
    // window instead of a busy-poll storm.
    let msg = match sched.receive_wait(config.long_poll_wait) {
        Ok(Some(m)) => m,
        Ok(None) => {
            if config.long_poll_wait.is_zero() {
                std::thread::sleep(config.poll_backoff);
            }
            return;
        }
        Err(_) => {
            std::thread::sleep(config.poll_backoff);
            return;
        }
    };

    let spec = match TaskSpec::from_message(&msg.body) {
        Ok(s) => s,
        Err(_) => {
            // Poison message: park it in the DLQ, report, and drop it.
            let _ = dlq.send(msg.body.clone());
            let _ = monitor.send("fail:poison".to_string());
            let _ = sched.delete(msg.receipt);
            return;
        }
    };
    let seq = chaos.next_seq();
    let attempt_began_s = chaos.clock.now_s();

    // Attempt number = redelivery ordinal, so chaos re-executions show up
    // in the trace as distinct attempts of the same task. The structural
    // Attempt span is flushed when `tt` drops, whichever exit is taken.
    let mut tt = sink.map(|s| {
        let mut tt = AttemptMarker::new(
            s,
            spec.id.0,
            msg.receive_count.saturating_sub(1),
            chaos.worker,
            polled_at.unwrap_or(0.0),
        );
        tt.mark(Phase::Dequeue, chaos.clock.now_s());
        tt
    });

    // Dead-letter policy: give up on tasks that keep failing and park the
    // original message in the DLQ for offline inspection or redrive.
    if msg.receive_count > job.max_deliveries {
        let _ = dlq.send(msg.body.clone());
        let _ = monitor.send(format!("fail:{}", spec.id.0));
        let _ = sched.delete(msg.receipt);
        return;
    }

    // Progress report for the monitor's straggler defense: lets it hedge
    // or deadline-cancel this attempt if it never reports done.
    if config
        .resilience
        .is_some_and(|p| p.hedge.is_some() || p.deadline.is_some())
    {
        let _ = monitor.send(format!("start:{}", spec.id.0));
    }

    // Injected death between receive and execute — a timed kill from the
    // schedule or an i.i.d. roll. The message stays in flight and
    // reappears after the visibility timeout.
    if chaos.kill_event_pending() || chaos.die_before_execute(seq) {
        shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = sink {
            s.event(TraceEvent {
                at_s: chaos.clock.now_s(),
                worker: chaos.worker,
                kind: EventKind::Death,
            });
        }
        note_failure(health, sink, chaos.worker, chaos.clock.now_s());
        std::thread::sleep(restart_delay);
        return;
    }

    // Download the input file over the storage web interface, behind the
    // shared circuit breaker: during a storage brownout the first few
    // workers exhaust their retries and trip the breaker, and everyone
    // else fast-fails to redelivery instead of piling on.
    if !breaker.allow(chaos.clock.now_s()) {
        std::thread::sleep(config.poll_backoff);
        return; // lease reappears after the timeout
    }
    let input = match storage.get_with_retry(
        &job.input_bucket,
        &spec.input_key,
        config.input_fetch_attempts,
    ) {
        Ok(d) => {
            breaker.record_success();
            if let Some(tt) = tt.as_mut() {
                tt.mark(Phase::Download, chaos.clock.now_s());
            }
            d
        }
        Err(e) if e.is_retryable() => {
            breaker.record_failure(chaos.clock.now_s());
            return; // let it reappear
        }
        Err(_) => {
            // Input genuinely missing: the task can never run.
            let _ = monitor.send(format!("fail:{}", spec.id.0));
            let _ = sched.delete(msg.receipt);
            return;
        }
    };

    shared.total_executions.fetch_add(1, Ordering::Relaxed);
    let exec_started = Instant::now();
    let output = match executor.run(&spec, &input) {
        Ok(o) => o,
        Err(_) => {
            // Leave the message; redelivery retries until the dead-letter
            // policy gives up.
            if let Some(tt) = tt.as_mut() {
                tt.mark(Phase::Execute, chaos.clock.now_s());
            }
            note_failure(health, sink, chaos.worker, chaos.clock.now_s());
            return;
        }
    };
    // Gray failure: a degraded (not dead) worker runs slower by the
    // schedule's factor — it still completes, it just holds tasks longer.
    let factor = chaos.slowdown();
    if factor > 1.0 {
        std::thread::sleep(exec_started.elapsed().mul_f64(factor - 1.0));
    }
    if let Some(tt) = tt.as_mut() {
        tt.mark(Phase::Execute, chaos.clock.now_s());
    }

    // Death mid-upload: half the output lands as a torn object, then the
    // worker dies. Redelivery must idempotently overwrite the torn bytes.
    if chaos.die_mid_execute(seq) {
        let torn = output[..output.len() / 2].to_vec();
        let _ = storage.put(&job.output_bucket, &spec.output_key, torn);
        shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = sink {
            s.event(TraceEvent {
                at_s: chaos.clock.now_s(),
                worker: chaos.worker,
                kind: EventKind::Death,
            });
        }
        note_failure(health, sink, chaos.worker, chaos.clock.now_s());
        std::thread::sleep(restart_delay);
        return;
    }
    // Torn upload without a death: the worker's put "fails" after writing
    // a prefix; it abandons the lease and redelivery retries the task.
    if chaos.torn_upload(seq) {
        let torn = output[..output.len() / 2].to_vec();
        let _ = storage.put(&job.output_bucket, &spec.output_key, torn);
        note_failure(health, sink, chaos.worker, chaos.clock.now_s());
        return;
    }

    shared
        .remote_bytes
        .fetch_add(input.len() as u64 + output.len() as u64, Ordering::Relaxed);
    if storage
        .put(&job.output_bucket, &spec.output_key, output)
        .is_err()
    {
        return; // redelivery will retry the whole task
    }
    if let Some(tt) = tt.as_mut() {
        tt.mark(Phase::Upload, chaos.clock.now_s());
    }

    // Injected death between upload and delete: the duplicate re-execution
    // must overwrite with identical output.
    if chaos.die_before_delete(seq) {
        shared.worker_deaths.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = sink {
            s.event(TraceEvent {
                at_s: chaos.clock.now_s(),
                worker: chaos.worker,
                kind: EventKind::Death,
            });
        }
        note_failure(health, sink, chaos.worker, chaos.clock.now_s());
        std::thread::sleep(restart_delay);
        return;
    }

    let _ = monitor.send(format!("done:{}", spec.id.0));
    shared.per_fleet.lock().unwrap()[fleet_id] += 1;
    // A stale receipt here means someone else finished the task first —
    // harmless by idempotence.
    let _ = sched.delete(msg.receipt);
    let done_s = chaos.clock.now_s();
    note_success(health, sink, chaos.worker, done_s - attempt_began_s, done_s);
    if let Some(tt) = tt.as_mut() {
        tt.mark(Phase::Ack, done_s);
    }
}

/// Execute a job on an *elastic* fleet.
#[deprecated(
    note = "build a `ppc_exec::RunContext` with `RunContext::elastic(…)` and call `ppc_classic::run`"
)]
#[allow(clippy::too_many_arguments)]
pub fn run_job_autoscaled(
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    itype: ppc_compute::instance::InstanceType,
    job: &JobSpec,
    arrivals: &[f64],
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
    autoscale: &AutoscaleConfig,
) -> Result<ClassicReport> {
    crate::harness::run(
        &RunContext::elastic(itype, autoscale.clone(), arrivals.to_vec()),
        storage,
        queues,
        job,
        executor,
        config,
    )
}

/// The elastic native body: worker threads are launched and retired while
/// the job runs, driven by a `ppc-autoscale` [`Controller`] watching the
/// scheduling queue's
/// [`metrics snapshot`](ppc_queue::Queue::metrics_snapshot).
///
/// Each autoscaled unit is one single-worker instance of `itype` (the
/// granularity the controller reasons about); `arrivals[i]` is the wall
/// offset in seconds at which `job.tasks[i]` is sent to the scheduling
/// queue (an empty slice sends everything up front). All `AutoscaleConfig`
/// times are wall seconds — tests and examples compress them (10 ms ticks,
/// 100 ms "billing hours") so elastic behavior plays out in milliseconds.
///
/// Scale-in drains: a victim worker finishes the lease it holds, then
/// exits; the controller confirms the retirement on its next tick, so a
/// leased message is never orphaned by scale-in. The report carries a
/// [`FleetReport`](crate::report::FleetReport) with the fleet-size
/// timeline and the staggered per-instance bill. Reached through
/// [`crate::run`], which resolves the [`RunContext`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_autoscaled_impl(
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    itype: ppc_compute::instance::InstanceType,
    job: &JobSpec,
    arrivals: &[f64],
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
    autoscale: &AutoscaleConfig,
) -> Result<ClassicReport> {
    job.validate()?;
    validate_config(config)?;
    if !arrivals.is_empty() && arrivals.len() != job.tasks.len() {
        return Err(PpcError::InvalidArgument(format!(
            "{} arrival offsets for {} tasks",
            arrivals.len(),
            job.tasks.len()
        )));
    }

    let sched = queues.create_queue(
        &job.sched_queue(),
        QueueConfig {
            visibility_timeout: job.visibility_timeout,
            chaos: config.queue_chaos,
            seed: config.fault.seed,
        },
    )?;
    let monitor = queues.create_queue(&job.monitor_queue(), QueueConfig::default())?;
    let dlq = dead_letter_queue(queues, job)?;
    storage.ensure_bucket(&job.output_bucket);

    let clock = RunClock::start();
    if let Some(schedule) = &config.schedule {
        storage.set_chaos(schedule.clone());
    }
    let breaker = CircuitBreaker::new(
        config.storage_breaker_threshold,
        config.storage_breaker_reset_s,
    );
    let health: Option<Mutex<HealthTracker>> = config
        .resilience
        .and_then(|p| p.quarantine)
        .map(|q| Mutex::new(HealthTracker::new(q)));
    let health = health.as_ref();

    let storage_before = storage.metering().snapshot();
    let requests_before = queues.total_requests();

    let n_tasks = job.tasks.len();
    let shared = Shared {
        stop: AtomicBool::new(false),
        total_executions: AtomicUsize::new(0),
        worker_deaths: AtomicUsize::new(0),
        remote_bytes: AtomicU64::new(0),
        finished_at: Mutex::new(None),
        failed: Mutex::new(Vec::new()),
        per_fleet: Mutex::new(vec![0; 1]),
    };

    let controller = Mutex::new(Controller::new(autoscale.clone()));
    // Per-slot drain flags, indexed by slot id; grown under the lock as
    // the controller launches instances.
    let drain_flags: Mutex<Vec<Arc<AtomicBool>>> = Mutex::new(Vec::new());
    // Slot ids whose workers have exited after a drain, awaiting
    // confirmation at the controller's next tick.
    let retired_inbox: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    // Slots the chaos schedule killed: already Retired via `mark_dead`,
    // so their workers' exit notifications must not be re-confirmed.
    let dead_slots: Mutex<HashSet<u32>> = Mutex::new(HashSet::new());
    let start = Instant::now();

    std::thread::scope(|scope| {
        scope.spawn(|| monitor_loop(&monitor, &sched, config, &shared, job, &clock));

        // Client: sends each task at its arrival offset.
        scope.spawn(|| {
            let mut send_rng = Pcg32::for_stream(config.fault.seed, CLIENT_STREAM);
            let mut order: Vec<usize> = (0..n_tasks).collect();
            if !arrivals.is_empty() {
                order.sort_by(|&a, &b| arrivals[a].partial_cmp(&arrivals[b]).unwrap());
            }
            for i in order {
                let at = Duration::from_secs_f64(if arrivals.is_empty() {
                    0.0
                } else {
                    arrivals[i]
                });
                while start.elapsed() < at {
                    if shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep((at - start.elapsed()).min(Duration::from_millis(2)));
                }
                let body = match job.tasks[i].to_message() {
                    Ok(b) => b,
                    Err(_) => continue,
                };
                // Durable submission through the shared retry policy; a
                // stop mid-retry surfaces as a non-retryable error.
                let enq_at = live_sink(config).map(|_| clock.now_s());
                let sent = client_send_policy().run_blocking(&mut send_rng, |_| {
                    if shared.stop.load(Ordering::Acquire) {
                        return Err(PpcError::InvalidState("job stopped".into()));
                    }
                    sched.send(body.clone())
                });
                if sent.is_ok() {
                    if let Some(s) = live_sink(config) {
                        s.span(Span::new(
                            job.tasks[i].id.0,
                            0,
                            NO_WORKER,
                            Phase::Enqueue,
                            enq_at.unwrap_or(0.0),
                            clock.now_s(),
                        ));
                    }
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
            }
        });

        // Controller: one thread ticking every `interval_s`, spawning and
        // draining worker threads per the policy's decisions.
        scope.spawn(|| {
            let spawn_worker = |slot: u32| {
                let drain = {
                    let mut flags = drain_flags.lock().unwrap();
                    while flags.len() <= slot as usize {
                        flags.push(Arc::new(AtomicBool::new(false)));
                    }
                    flags[slot as usize].clone()
                };
                let sched = sched.clone();
                let monitor = monitor.clone();
                let dlq = dlq.clone();
                let shared = &shared;
                let storage = storage.clone();
                let executor = executor.clone();
                let retired_inbox = &retired_inbox;
                let clock = &clock;
                let breaker = &breaker;
                scope.spawn(move || {
                    // The chaos schedule addresses autoscaled workers by
                    // their controller slot id.
                    let mut chaos = WorkerChaos::new(config, clock, slot);
                    while !shared.stop.load(Ordering::Acquire) && !drain.load(Ordering::Acquire) {
                        poll_once(
                            &sched,
                            &monitor,
                            &dlq,
                            shared,
                            &storage,
                            job,
                            config,
                            executor.as_ref(),
                            0,
                            &mut chaos,
                            breaker,
                            health,
                        );
                    }
                    if drain.load(Ordering::Acquire) {
                        retired_inbox.lock().unwrap().push(slot);
                    }
                });
            };

            // The controller seeded `min_workers` active slots at t = 0.
            for slot in 0..autoscale.min_workers {
                spawn_worker(slot);
            }

            let interval = Duration::from_secs_f64(autoscale.interval_s);
            let quantum = interval.min(Duration::from_millis(2));
            let mut next_tick = interval;
            let mut last_tick_s = 0.0_f64;
            while !shared.stop.load(Ordering::Acquire) {
                std::thread::sleep(quantum);
                let now = start.elapsed();
                if now < next_tick {
                    continue;
                }
                next_tick += interval;
                let now_s = now.as_secs_f64();
                let mut ctrl = controller.lock().unwrap();
                // Dead-instance detection: a timed kill addressed to a
                // live slot takes the whole instance down. The controller
                // records the death (waiving the scale-up cooldown) so
                // `decide` below can launch a replacement immediately.
                if let Some(schedule) = &config.schedule {
                    let victims: Vec<u32> = ctrl
                        .slots()
                        .iter()
                        .filter(|s| matches!(s.state, SlotState::Warming | SlotState::Active))
                        .filter(|s| schedule.kills_in(s.id, last_tick_s, now_s))
                        .map(|s| s.id)
                        .collect();
                    if !victims.is_empty() {
                        let flags = drain_flags.lock().unwrap();
                        let mut dead = dead_slots.lock().unwrap();
                        for id in victims {
                            if let Some(f) = flags.get(id as usize) {
                                f.store(true, Ordering::Release);
                            }
                            ctrl.mark_dead(id, now_s);
                            dead.insert(id);
                        }
                    }
                }
                last_tick_s = now_s;
                {
                    let dead = dead_slots.lock().unwrap();
                    for slot in retired_inbox.lock().unwrap().drain(..) {
                        // A dead slot is already Retired; only drained
                        // workers need their exit confirmed.
                        if !dead.contains(&slot) {
                            ctrl.confirm_retired(slot, now_s);
                        }
                    }
                }
                let snap = sched.metrics_snapshot();
                let telemetry = Telemetry {
                    queued: snap.visible,
                    in_flight: snap.in_flight,
                    oldest_age_s: snap.oldest_age.map(|d| d.as_secs_f64()),
                };
                match ctrl.decide(now_s, &telemetry) {
                    Decision::Launch { ids } => {
                        drop(ctrl);
                        for id in ids {
                            spawn_worker(id);
                        }
                    }
                    Decision::Drain { ids } => {
                        let flags = drain_flags.lock().unwrap();
                        for id in ids {
                            flags[id as usize].store(true, Ordering::Release);
                        }
                    }
                    Decision::Hold => {}
                }
            }
        });
    });

    let finished = shared
        .finished_at
        .lock()
        .unwrap()
        .unwrap_or_else(Instant::now);
    let makespan = finished.duration_since(start).as_secs_f64();
    let failed = shared.failed.lock().unwrap().clone();
    let completed = n_tasks - failed.len();
    let total_executions = shared.total_executions.load(Ordering::Relaxed);

    // Close the fleet ledger: confirm drains that landed after the last
    // tick, then bill. The horizon never precedes the last fleet event
    // (a final tick can outlast the monitor's finish stamp slightly).
    let mut ctrl = controller.into_inner().unwrap();
    let last_event_s = ctrl.events().last().map(|e| e.at_s).unwrap_or(0.0);
    let end_s = makespan.max(last_event_s);
    let dead = dead_slots.into_inner().unwrap();
    for slot in retired_inbox.into_inner().unwrap() {
        if !dead.contains(&slot) {
            ctrl.confirm_retired(slot, end_s);
        }
    }
    // A drain decided on the final tick may never have reached its worker
    // before the stop flag did; close those slots' bills at the horizon.
    let still_draining: Vec<u32> = ctrl
        .slots()
        .iter()
        .filter(|s| s.state == SlotState::Draining)
        .map(|s| s.id)
        .collect();
    for slot in still_draining {
        ctrl.confirm_retired(slot, end_s);
    }
    let fleet = fleet_report(&ctrl, itype, autoscale.billing_hour_s, end_s);
    if config.schedule.is_some() {
        storage.clear_chaos();
    }

    // Replay the controller's fleet ledger into the trace: launches,
    // drains, retirements, and chaos-killed instances, addressed by slot.
    if let Some(s) = live_sink(config) {
        for ev in ctrl.events() {
            s.event(TraceEvent {
                at_s: ev.at_s,
                worker: ev.slot,
                kind: match ev.kind {
                    FleetEventKind::Launch => EventKind::Launch,
                    FleetEventKind::Drain => EventKind::Drain,
                    FleetEventKind::Retire => EventKind::Retire,
                    FleetEventKind::Died => EventKind::Death,
                },
            });
        }
    }

    let storage_after = storage.metering().snapshot();
    let mut report = ClassicReport {
        core: RunReport {
            summary: RunSummary {
                platform: format!("classic-autoscale-{}", itype.name),
                cores: fleet.peak_fleet() as usize,
                tasks: completed,
                makespan_seconds: makespan,
                redundant_executions: total_executions.saturating_sub(completed),
                remote_bytes: shared.remote_bytes.load(Ordering::Relaxed),
            },
            failed,
            total_attempts: total_executions,
            worker_deaths: shared.worker_deaths.load(Ordering::Relaxed),
            cost: Some(fleet.cost),
            trace: None,
        },
        queue_requests: queues.total_requests() - requests_before,
        executions_per_fleet: shared.per_fleet.into_inner().unwrap(),
        timeline: None,
        fleet: Some(fleet),
        storage: ppc_storage::metering::MeteringSnapshot {
            requests: storage_after.requests - storage_before.requests,
            bytes_in: storage_after.bytes_in - storage_before.bytes_in,
            bytes_out: storage_after.bytes_out - storage_before.bytes_out,
            stored_bytes: storage_after.stored_bytes,
            peak_stored_bytes: storage_after.peak_stored_bytes,
        },
    };
    finalize_trace(config, &mut report);

    let _ = queues.delete_queue(&job.sched_queue());
    let _ = queues.delete_queue(&job.monitor_queue());

    Ok(report)
}

/// Build the fleet section of an autoscaled report from the controller's
/// audit log: the fleet-size step function plus the per-instance bill.
/// Slots still running at `end_s` are billed through the horizon. Shared
/// by the native runtime and the simulator so both engines account
/// identically.
pub(crate) fn fleet_report(
    ctrl: &Controller,
    itype: ppc_compute::instance::InstanceType,
    billing_hour_s: f64,
    end_s: f64,
) -> crate::report::FleetReport {
    let mut timeline = ppc_core::trace::FleetTimeline::new();
    for e in ctrl.events() {
        // Drain events do not change the billed fleet; launches, retires,
        // and chaos-killed instances do.
        if matches!(
            e.kind,
            FleetEventKind::Launch | FleetEventKind::Retire | FleetEventKind::Died
        ) {
            timeline.record(e.at_s, e.fleet_after);
        }
    }
    let mut ledger = FleetLedger::new(itype, billing_hour_s);
    for s in ctrl.slots() {
        let idx = ledger.launch(s.launched_at);
        if let Some(t) = s.retired_at {
            ledger.retire(idx, t.min(end_s));
        }
    }
    crate::report::FleetReport {
        itype,
        timeline,
        horizon_s: end_s,
        billed_hours: ledger.billed_hours(end_s),
        wasted_hours: ledger.wasted_hours(end_s),
        cost: ledger.cost(end_s),
    }
}

/// Sequential baseline for Equation 1: run every task back to back on this
/// thread with inputs already local (no storage round trips).
pub fn run_sequential(inputs: &[(TaskSpec, Vec<u8>)], executor: &dyn Executor) -> Result<f64> {
    let start = Instant::now();
    for (spec, input) in inputs {
        executor.run(spec, input)?;
    }
    Ok(start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::cluster::Cluster;
    use ppc_compute::instance::EC2_HCXL;
    use ppc_core::exec::FnExecutor;
    use ppc_core::task::ResourceProfile;

    fn setup(n_tasks: u64) -> (Arc<StorageService>, Arc<QueueService>, JobSpec) {
        let storage = StorageService::in_memory();
        let queues = QueueService::new();
        let tasks: Vec<TaskSpec> = (0..n_tasks)
            .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
            .collect();
        let job = JobSpec::new("t", tasks);
        storage.create_bucket(&job.input_bucket).unwrap();
        for i in 0..n_tasks {
            storage
                .put(
                    &job.input_bucket,
                    &format!("f{i}"),
                    format!("payload-{i}").into_bytes(),
                )
                .unwrap();
        }
        (storage, queues, job)
    }

    fn reverse_executor() -> Arc<dyn Executor> {
        FnExecutor::new("rev", |_s, input: &[u8]| {
            let mut v = input.to_vec();
            v.reverse();
            Ok(v)
        })
    }

    // Every native run below goes through the unified harness entry point
    // (`crate::run` + a `RunContext`); these helpers shadow the deprecated
    // legacy shims and spell out the context each fleet shape needs.
    fn run_job(
        storage: &Arc<StorageService>,
        queues: &Arc<QueueService>,
        cluster: &Cluster,
        job: &JobSpec,
        executor: Arc<dyn Executor>,
        config: &ClassicConfig,
    ) -> Result<ClassicReport> {
        crate::run(
            &RunContext::new(cluster),
            storage,
            queues,
            job,
            executor,
            config,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_job_autoscaled(
        storage: &Arc<StorageService>,
        queues: &Arc<QueueService>,
        itype: ppc_compute::instance::InstanceType,
        job: &JobSpec,
        arrivals: &[f64],
        executor: Arc<dyn Executor>,
        config: &ClassicConfig,
        autoscale: &AutoscaleConfig,
    ) -> Result<ClassicReport> {
        crate::run(
            &RunContext::elastic(itype, autoscale.clone(), arrivals.to_vec()),
            storage,
            queues,
            job,
            executor,
            config,
        )
    }

    #[test]
    fn small_job_end_to_end() {
        let (storage, queues, job) = setup(20);
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.tasks, 20);
        assert!(report.total_attempts >= 20);
        // Every output object exists and is correct.
        for i in 0..20 {
            let out = storage
                .get(&job.output_bucket, &format!("f{i}.out"))
                .unwrap();
            let mut expect = format!("payload-{i}").into_bytes();
            expect.reverse();
            assert_eq!(*out, expect);
        }
        // Queues were cleaned up.
        assert!(queues.queue(&job.sched_queue()).is_err());
        assert!(report.queue_requests > 0);
        assert!(report.storage.requests > 0);
    }

    #[test]
    fn empty_job_is_invalid() {
        let (storage, queues, _) = setup(1);
        let cluster = Cluster::provision(EC2_HCXL, 1, 1);
        let job = JobSpec::new("empty", vec![]);
        let err = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    #[test]
    fn missing_input_fails_that_task_only() {
        let (storage, queues, mut job) = setup(5);
        // Add a task whose input was never uploaded.
        job.tasks.push(TaskSpec::new(
            99,
            "rev",
            "ghost",
            ResourceProfile::cpu_bound(0.0),
        ));
        let cluster = Cluster::provision(EC2_HCXL, 1, 2);
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap();
        assert_eq!(report.failed, vec![TaskId(99)]);
        assert_eq!(report.summary.tasks, 5);
    }

    #[test]
    fn poison_task_hits_dead_letter_policy() {
        let (storage, queues, job) = setup(4);
        let job = job
            .with_visibility_timeout(Duration::from_millis(20))
            .with_max_deliveries(3);
        let exec = FnExecutor::new("half-poison", |spec: &TaskSpec, input: &[u8]| {
            if spec.id.0 == 2 {
                Err(PpcError::TaskFailed("cannot process".into()))
            } else {
                Ok(input.to_vec())
            }
        });
        let cluster = Cluster::provision(EC2_HCXL, 1, 2);
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            exec,
            &ClassicConfig::default(),
        )
        .unwrap();
        assert_eq!(report.failed, vec![TaskId(2)]);
        assert_eq!(report.summary.tasks, 3);
        assert!(
            report.total_attempts >= 3 + 3,
            "poison task retried to the delivery cap"
        );
    }

    #[test]
    fn survives_worker_deaths() {
        let (storage, queues, job) = setup(30);
        let job = job.with_visibility_timeout(Duration::from_millis(25));
        let cluster = Cluster::provision(EC2_HCXL, 2, 4);
        let config = ClassicConfig {
            fault: FaultPlan::hostile(17),
            ..ClassicConfig::default()
        };
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &config,
        )
        .unwrap();
        assert!(report.is_complete(), "all tasks complete despite deaths");
        assert_eq!(report.summary.tasks, 30);
        for i in 0..30 {
            let out = storage
                .get(&job.output_bucket, &format!("f{i}.out"))
                .unwrap();
            let mut expect = format!("payload-{i}").into_bytes();
            expect.reverse();
            assert_eq!(*out, expect, "idempotent re-execution left output intact");
        }
    }

    #[test]
    fn survives_queue_chaos() {
        let (storage, queues, job) = setup(25);
        let job = job.with_visibility_timeout(Duration::from_millis(25));
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let config = ClassicConfig {
            queue_chaos: ppc_queue::chaos::ChaosConfig::flaky(),
            ..ClassicConfig::default()
        };
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &config,
        )
        .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.tasks, 25);
    }

    #[test]
    fn hybrid_fleets_share_one_queue() {
        // The paper's cloud + local-cluster extension: both fleets drain
        // the same scheduling queue.
        let (storage, queues, job) = setup(24);
        let cloud = Cluster::provision(EC2_HCXL, 1, 4);
        let local = Cluster::provision(ppc_compute::instance::BARE_CAP3, 1, 4);
        let report = crate::run(
            &RunContext::on_fleets(vec![cloud, local]),
            &storage,
            &queues,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.cores, 8, "both fleets' workers counted");
        assert_eq!(report.summary.tasks, 24);
    }

    #[test]
    fn empty_fleet_list_rejected() {
        let (storage, queues, job) = setup(1);
        let err = crate::run(
            &RunContext::on_fleets(vec![]),
            &storage,
            &queues,
            &job,
            reverse_executor(),
            &ClassicConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    fn sleep_executor(ms: u64) -> Arc<dyn Executor> {
        FnExecutor::new("rev-slow", move |_s, input: &[u8]| {
            std::thread::sleep(Duration::from_millis(ms));
            let mut v = input.to_vec();
            v.reverse();
            Ok(v)
        })
    }

    fn fast_autoscale() -> ppc_autoscale::AutoscaleConfig {
        // Millisecond-compressed timing: 10 ms controller ticks against
        // 30 ms tasks, so elastic behavior plays out in under a second.
        ppc_autoscale::AutoscaleConfig {
            policy: ppc_autoscale::Policy::TargetBacklog { per_worker: 12.0 },
            min_workers: 1,
            max_workers: 4,
            interval_s: 0.01,
            scale_up_cooldown_s: 0.03,
            scale_down_cooldown_s: 0.02,
            warmup_s: 0.0,
            billing_aware: false,
            billing_window_s: 0.02,
            billing_hour_s: 0.1,
        }
    }

    #[test]
    fn autoscaled_job_end_to_end() {
        let (storage, queues, job) = setup(48);
        let report = run_job_autoscaled(
            &storage,
            &queues,
            EC2_HCXL,
            &job,
            &[],
            sleep_executor(30),
            &ClassicConfig::default(),
            &fast_autoscale(),
        )
        .unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.tasks, 48);
        for i in 0..48 {
            let out = storage
                .get(&job.output_bucket, &format!("f{i}.out"))
                .unwrap();
            let mut expect = format!("payload-{i}").into_bytes();
            expect.reverse();
            assert_eq!(*out, expect);
        }
        let fleet = report.fleet.expect("autoscaled run reports its fleet");
        assert!(
            (2..=4).contains(&fleet.peak_fleet()),
            "one burst must trigger scale-out: peak {}",
            fleet.peak_fleet()
        );
        assert!(fleet.billed_hours >= 1);
        // Every launched slot's bill is closed or open-but-billed; the
        // timeline starts at the minimum fleet.
        assert_eq!(fleet.timeline.size_sequence()[0], 1);
        // Queues were cleaned up.
        assert!(queues.queue(&job.sched_queue()).is_err());
    }

    #[test]
    fn autoscaled_scale_in_never_loses_a_task() {
        // Staggered arrivals force scale-out then scale-in while messages
        // are in flight; draining must never orphan a leased message.
        let (storage, queues, job) = setup(40);
        let arrivals: Vec<f64> = (0..40).map(|i| if i < 30 { 0.0 } else { 0.4 }).collect();
        let report = run_job_autoscaled(
            &storage,
            &queues,
            EC2_HCXL,
            &job,
            &arrivals,
            sleep_executor(20),
            &ClassicConfig::default(),
            &fast_autoscale(),
        )
        .unwrap();
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert_eq!(report.summary.tasks, 40);
        assert_eq!(
            report.total_attempts, 40,
            "no redeliveries: scale-in drained cleanly"
        );
    }

    #[test]
    fn autoscaled_rejects_mismatched_arrivals() {
        let (storage, queues, job) = setup(4);
        let err = run_job_autoscaled(
            &storage,
            &queues,
            EC2_HCXL,
            &job,
            &[0.0, 1.0],
            reverse_executor(),
            &ClassicConfig::default(),
            &fast_autoscale(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    #[test]
    fn mid_execute_death_overwrites_torn_output() {
        // A worker dying mid-upload leaves a torn half-object; the
        // redelivered task must idempotently overwrite it with the full
        // output.
        let (storage, queues, job) = setup(20);
        let job = job
            .with_visibility_timeout(Duration::from_millis(25))
            .with_max_deliveries(20);
        let cluster = Cluster::provision(EC2_HCXL, 2, 4);
        let config = ClassicConfig {
            fault: FaultPlan {
                die_mid_execute: 0.45,
                restart_delay_ms: 1,
                seed: 7,
                ..FaultPlan::NONE
            },
            ..ClassicConfig::default()
        };
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &config,
        )
        .unwrap();
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert!(report.worker_deaths > 0, "mid-execute deaths were rolled");
        for i in 0..20 {
            let out = storage
                .get(&job.output_bucket, &format!("f{i}.out"))
                .unwrap();
            let mut expect = format!("payload-{i}").into_bytes();
            expect.reverse();
            assert_eq!(*out, expect, "torn upload was overwritten in full");
        }
    }

    #[test]
    fn exhausted_task_parks_in_dead_letter_queue() {
        let (storage, queues, job) = setup(4);
        let job = job
            .with_visibility_timeout(Duration::from_millis(20))
            .with_max_deliveries(3);
        let exec = FnExecutor::new("half-poison", |spec: &TaskSpec, input: &[u8]| {
            if spec.id.0 == 2 {
                Err(PpcError::TaskFailed("cannot process".into()))
            } else {
                Ok(input.to_vec())
            }
        });
        let cluster = Cluster::provision(EC2_HCXL, 1, 2);
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            exec,
            &ClassicConfig::default(),
        )
        .unwrap();
        assert_eq!(report.failed, vec![TaskId(2)]);
        // The DLQ outlives the job and holds exactly the poison task.
        let dlq = queues.queue(&job.dead_letter_queue()).unwrap();
        let parked = dlq.receive().unwrap().expect("poison task parked");
        let spec = TaskSpec::from_message(&parked.body).unwrap();
        assert_eq!(spec.id, TaskId(2));
        dlq.delete(parked.receipt).unwrap();
        assert!(dlq.receive().unwrap().is_none(), "exactly one parked task");
    }

    #[test]
    fn survives_scheduled_chaos() {
        // A full hostile schedule: timed kills, a mid-execute kill, a torn
        // upload, a gray-degraded worker, and a storage brownout window.
        let (storage, queues, job) = setup(24);
        let job = job
            .with_visibility_timeout(Duration::from_millis(30))
            .with_max_deliveries(20);
        let cluster = Cluster::provision(EC2_HCXL, 2, 4);
        let schedule = FaultSchedule::new(11)
            .kill_at(0, 0.005)
            .kill_mid_execute(1, 0)
            .torn_upload(2, 1)
            .degrade(3, 3.0, 0.0, 1.0)
            .brownout(0.010, 0.020);
        let config = ClassicConfig {
            schedule: Some(Arc::new(schedule)),
            ..ClassicConfig::default()
        };
        let report = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            sleep_executor(2),
            &config,
        )
        .unwrap();
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert_eq!(report.summary.tasks, 24);
        for i in 0..24 {
            let out = storage
                .get(&job.output_bucket, &format!("f{i}.out"))
                .unwrap();
            let mut expect = format!("payload-{i}").into_bytes();
            expect.reverse();
            assert_eq!(*out, expect);
        }
        // The chaos injection was disarmed on the way out.
        assert!(storage.get(&job.output_bucket, "f0.out").is_ok());
    }

    #[test]
    fn invalid_schedule_rejected_up_front() {
        let (storage, queues, job) = setup(2);
        let cluster = Cluster::provision(EC2_HCXL, 1, 1);
        let config = ClassicConfig {
            schedule: Some(Arc::new(
                FaultSchedule::new(1).kill_at(0, 0.01).brownout(0.5, 0.1),
            )),
            ..ClassicConfig::default()
        };
        let err = run_job(
            &storage,
            &queues,
            &cluster,
            &job,
            reverse_executor(),
            &config,
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    #[test]
    fn autoscaled_replaces_chaos_killed_instance() {
        // A timed kill takes out slot 0 (the only seed worker); the
        // controller must record the death and launch a replacement, and
        // the job must still finish every task.
        let (storage, queues, job) = setup(30);
        let job = job.with_visibility_timeout(Duration::from_millis(60));
        let schedule = FaultSchedule::new(5).kill_at(0, 0.05);
        let config = ClassicConfig {
            schedule: Some(Arc::new(schedule)),
            ..ClassicConfig::default()
        };
        let report = run_job_autoscaled(
            &storage,
            &queues,
            EC2_HCXL,
            &job,
            &[],
            sleep_executor(10),
            &config,
            &fast_autoscale(),
        )
        .unwrap();
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert_eq!(report.summary.tasks, 30);
        let fleet = report.fleet.expect("autoscaled run reports its fleet");
        assert!(fleet.billed_hours >= 1);
    }

    #[test]
    fn sequential_baseline_runs_all() {
        let inputs: Vec<(TaskSpec, Vec<u8>)> = (0..10)
            .map(|i| {
                (
                    TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                    vec![1u8; 8],
                )
            })
            .collect();
        let exec = reverse_executor();
        let t = run_sequential(&inputs, exec.as_ref()).unwrap();
        assert!(t >= 0.0);
    }
}
