//! # ppc-classic — the Classic Cloud processing model
//!
//! The paper's Figure 1 architecture, built from cloud infrastructure
//! services exactly as §2.1.3 describes:
//!
//! > "The Classic Cloud processing model follows a task processing pipeline
//! > approach with independent workers. ... The client populates the
//! > scheduling queue with tasks, while the worker-processes running in
//! > cloud instances pick tasks from the scheduling queue. The configurable
//! > visibility timeout feature ... is used to provide a simple fault
//! > tolerance capability to the system. The workers delete the task
//! > (message) in the queue only after the completion of the task."
//!
//! Two runtimes share one [`spec::JobSpec`] vocabulary, and both are
//! reached through exactly two entry points driven by a
//! [`ppc_exec::RunContext`]:
//!
//! * [`run`] — the **native** runtime ([`runtime`]): real worker threads
//!   polling a real `ppc-queue` queue, moving real bytes through
//!   `ppc-storage`, and running real application kernels. Used by
//!   examples, tests, and the fault-tolerance studies ([`fault`] injects
//!   worker deaths).
//! * [`simulate`] — the **simulated** runtime ([`sim`]): the same pipeline
//!   modeled on the `ppc-des` engine in virtual time, used for the
//!   paper-scale experiments (hundreds of cores, hour-scale billing).
//!
//! The context's fleet plan picks the shape (single cluster, hybrid
//! fleets, elastic autoscaled fleet); its seed / fault schedule / trace
//! settings override the per-runtime configs. [`ClassicEngine`] exposes
//! the same pair behind the paradigm-generic [`ppc_exec::Engine`] trait.

pub mod engine;
pub mod fault;
pub mod harness;
pub mod history;
pub mod report;
pub mod runtime;
pub mod sim;
pub mod spec;

pub use engine::ClassicEngine;
pub use fault::FaultPlan;
pub use harness::{run, simulate};
pub use history::{record, runs_of, RunRecord};
pub use report::{ClassicReport, FleetReport};
pub use runtime::{run_sequential, ClassicConfig};
pub use sim::{sequential_baseline_seconds, SimConfig};
pub use spec::JobSpec;
