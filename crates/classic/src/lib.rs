//! # ppc-classic — the Classic Cloud processing model
//!
//! The paper's Figure 1 architecture, built from cloud infrastructure
//! services exactly as §2.1.3 describes:
//!
//! > "The Classic Cloud processing model follows a task processing pipeline
//! > approach with independent workers. ... The client populates the
//! > scheduling queue with tasks, while the worker-processes running in
//! > cloud instances pick tasks from the scheduling queue. The configurable
//! > visibility timeout feature ... is used to provide a simple fault
//! > tolerance capability to the system. The workers delete the task
//! > (message) in the queue only after the completion of the task."
//!
//! Two runtimes share one [`spec::JobSpec`] vocabulary:
//!
//! * [`runtime`] — the **native** runtime: real worker threads polling a
//!   real `ppc-queue` queue, moving real bytes through `ppc-storage`, and
//!   running real application kernels. Used by examples, tests, and the
//!   fault-tolerance studies ([`fault`] injects worker deaths).
//! * [`sim`] — the **simulated** runtime: the same pipeline modeled on the
//!   `ppc-des` engine in virtual time, used for the paper-scale experiments
//!   (hundreds of cores, hour-scale billing).

pub mod fault;
pub mod history;
pub mod report;
pub mod runtime;
pub mod sim;
pub mod spec;

pub use fault::FaultPlan;
pub use history::{record, runs_of, RunRecord};
pub use report::{ClassicReport, FleetReport};
pub use runtime::{run_job, run_job_autoscaled, ClassicConfig};
pub use sim::{simulate, simulate_autoscaled, simulate_fleets, SimConfig};
pub use spec::JobSpec;
