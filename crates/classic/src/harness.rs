//! The two Classic Cloud entry points: [`run`] (native) and [`simulate`]
//! (discrete-event), both driven by a [`ppc_exec::RunContext`].
//!
//! The context's fleet plan selects the execution shape — one cluster,
//! several hybrid fleets, or an elastic autoscaled fleet — and its seed /
//! fault schedule / trace settings override the corresponding config
//! fields, so every cross-cutting concern arrives through one value
//! instead of a dedicated entry-point variant.

use crate::report::ClassicReport;
use crate::runtime::ClassicConfig;
use crate::sim::SimConfig;
use crate::spec::JobSpec;
use ppc_core::exec::Executor;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_exec::{FleetPlan, RunContext};
use ppc_queue::service::QueueService;
use ppc_storage::service::StorageService;
use std::sync::Arc;

/// Execute `job` natively on the context's fleet plan: real worker
/// threads polling a real queue, moving real bytes through `storage`.
///
/// * `FleetPlan::Fixed` — one or more fleets share the scheduling queue
///   (several fleets = the paper's hybrid cloud + local-cluster layout).
/// * `FleetPlan::Elastic` — single-worker instances launched and retired
///   by a `ppc-autoscale` controller while the job runs.
///
/// The context's seed, fault schedule, and trace sink override the
/// config's `fault.seed`, `schedule`, and `trace` fields when set.
pub fn run(
    ctx: &RunContext,
    storage: &Arc<StorageService>,
    queues: &Arc<QueueService>,
    job: &JobSpec,
    executor: Arc<dyn Executor>,
    config: &ClassicConfig,
) -> Result<ClassicReport> {
    let mut cfg = config.clone();
    cfg.fault.seed = ctx.seed_or(cfg.fault.seed);
    cfg.schedule = ctx.schedule_or(&cfg.schedule);
    cfg.trace = ctx.sink_or(&cfg.trace);
    cfg.resilience = ctx.resilience_or(&cfg.resilience);
    match &ctx.fleet {
        FleetPlan::Fixed(_) => {
            let fleets = ctx.fixed_fleets()?;
            crate::runtime::run_on_fleets_impl(storage, queues, fleets, job, executor, &cfg)
        }
        FleetPlan::Elastic {
            itype,
            autoscale,
            arrivals,
        } => crate::runtime::run_autoscaled_impl(
            storage, queues, *itype, job, arrivals, executor, &cfg, autoscale,
        ),
    }
}

/// Simulate `tasks` in virtual time on the context's fleet plan — the
/// `ppc-des` twin of [`run`] for paper-scale what-if studies.
///
/// The context's seed and trace flag override the sim config's; its fault
/// schedule (sims carry none in their config) drives the event-based
/// chaos model. Panics on malformed sim dials, like every simulator here.
pub fn simulate(ctx: &RunContext, tasks: &[TaskSpec], cfg: &SimConfig) -> ClassicReport {
    let mut cfg = *cfg;
    cfg.seed = ctx.seed_or(cfg.seed);
    cfg.trace = ctx.trace_or(cfg.trace);
    cfg.resilience = ctx.resilience_or(&cfg.resilience);
    cfg.queue = ctx.queue_or(cfg.queue);
    let schedule = ctx.schedule.clone();
    match &ctx.fleet {
        FleetPlan::Fixed(fleets) => crate::sim::sim_fleets_impl(fleets, tasks, &cfg, schedule),
        FleetPlan::Elastic {
            itype,
            autoscale,
            arrivals,
        } => crate::sim::sim_autoscaled_impl(*itype, tasks, arrivals, &cfg, autoscale, schedule),
    }
}
