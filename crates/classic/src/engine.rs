//! [`ppc_exec::Engine`] implementation: Classic Cloud as one of the three
//! interchangeable paradigms.

use crate::runtime::ClassicConfig;
use crate::sim::SimConfig;
use crate::spec::JobSpec;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_exec::{Engine, JobOutputs, RunContext, RunReport, Workload};
use ppc_queue::service::QueueService;
use ppc_storage::service::StorageService;

/// The Classic Cloud paradigm behind the uniform [`Engine`] interface.
/// Native runs provision fresh in-memory storage/queue services per job;
/// pass the configs to tune either runtime.
#[derive(Clone)]
pub struct ClassicEngine {
    pub sim: SimConfig,
    pub native: ClassicConfig,
}

impl Default for ClassicEngine {
    fn default() -> Self {
        ClassicEngine {
            sim: SimConfig::ec2(),
            native: ClassicConfig::default(),
        }
    }
}

impl Engine for ClassicEngine {
    fn name(&self) -> &str {
        "classic"
    }

    fn run(&self, ctx: &RunContext, workload: &Workload) -> Result<(RunReport, JobOutputs)> {
        let storage = StorageService::in_memory();
        let queues = QueueService::new();
        let mut job = JobSpec::new(workload.name.clone(), workload.specs())
            .with_max_deliveries(workload.max_attempts);
        if let Some(t) = workload.visibility_timeout {
            job = job.with_visibility_timeout(t);
        }
        storage.create_bucket(&job.input_bucket)?;
        for (spec, input) in &workload.inputs {
            storage.put(&job.input_bucket, &spec.input_key, input.clone())?;
        }
        let report = crate::harness::run(
            ctx,
            &storage,
            &queues,
            &job,
            workload.executor.clone(),
            &self.native,
        )?;
        let mut outputs = JobOutputs::new();
        for (spec, _) in &workload.inputs {
            if let Ok(bytes) = storage.get(&job.output_bucket, &spec.output_key) {
                outputs.push((spec.output_key.clone(), (*bytes).clone()));
            }
        }
        Ok((report.core, outputs))
    }

    fn simulate(&self, ctx: &RunContext, tasks: &[TaskSpec]) -> RunReport {
        crate::harness::simulate(ctx, tasks, &self.sim).core
    }
}
