//! Run reports and cost accounting for Classic Cloud jobs.

use ppc_compute::billing::CostBreakdown;
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::InstanceType;
use ppc_core::json::Json;
use ppc_core::money::Usd;
use ppc_core::pricing::PriceBook;
use ppc_core::trace::FleetTimeline;
use ppc_exec::RunReport;
use ppc_storage::metering::MeteringSnapshot;

/// Everything a Classic Cloud run reports back, shared by the native and
/// simulated runtimes: the cross-paradigm [`RunReport`] core (summary,
/// failed tasks, attempt/death counters, cost, trace — reachable directly
/// through `Deref`) plus the Classic-specific extras.
#[derive(Debug, Clone)]
pub struct ClassicReport {
    /// The shared report core; `report.summary`, `report.failed`,
    /// `report.total_attempts`, `report.worker_deaths`, `report.cost`,
    /// and `report.trace` all live here.
    pub core: RunReport,
    /// Billable queue API requests across scheduling + monitoring queues.
    pub queue_requests: u64,
    /// Successful task completions credited to each worker fleet (one
    /// entry per fleet for hybrid runs; a single entry otherwise; empty
    /// for simulated runs, which model a single fleet).
    pub executions_per_fleet: Vec<usize>,
    /// Storage service usage.
    pub storage: MeteringSnapshot,
    /// Per-worker execution timeline, derived from the core's trace
    /// (runs with tracing enabled).
    pub timeline: Option<ppc_core::trace::Timeline>,
    /// Fleet-size timeline and per-instance billing for *elastic* runs;
    /// `None` for fixed-fleet runs.
    pub fleet: Option<FleetReport>,
}

impl std::ops::Deref for ClassicReport {
    type Target = RunReport;
    fn deref(&self) -> &RunReport {
        &self.core
    }
}

impl std::ops::DerefMut for ClassicReport {
    fn deref_mut(&mut self) -> &mut RunReport {
        &mut self.core
    }
}

/// What an autoscaled run adds to the report: the fleet-size step function
/// and the staggered per-instance bill.
#[derive(Debug, Clone)]
pub struct FleetReport {
    pub itype: InstanceType,
    /// Fleet size over time (billed instances).
    pub timeline: FleetTimeline,
    /// End of the billing horizon (job completion), seconds.
    pub horizon_s: f64,
    /// Per-instance started billing hours summed across the fleet.
    pub billed_hours: u64,
    /// Billed-but-unused instance-hours (money left on the table).
    pub wasted_hours: f64,
    /// Fleet cost over `[0, horizon_s]` under whole-hour and amortized
    /// billing.
    pub cost: CostBreakdown,
}

impl FleetReport {
    /// Largest fleet ever held.
    pub fn peak_fleet(&self) -> u32 {
        self.timeline.peak()
    }

    /// Time-weighted mean fleet size over the horizon.
    pub fn mean_fleet(&self) -> f64 {
        self.timeline.mean_size(self.horizon_s)
    }
}

/// Combined whole-fleet cost of a fixed-fleet run: every cluster held for
/// the full makespan. Shared by the native runtime and the simulator.
pub(crate) fn fleets_cost(fleets: &[Cluster], makespan_s: f64) -> CostBreakdown {
    fleets.iter().map(|c| c.cost(makespan_s)).fold(
        CostBreakdown {
            compute_cost: Usd::cents(0),
            amortized_cost: Usd::cents(0),
        },
        |acc, c| CostBreakdown {
            compute_cost: acc.compute_cost + c.compute_cost,
            amortized_cost: acc.amortized_cost + c.amortized_cost,
        },
    )
}

impl ClassicReport {
    /// Re-executed task count: wasted (but harmless) work.
    pub fn redundant_executions(&self) -> usize {
        self.core.redundant_attempts()
    }

    /// JSON rendering: the core's canonical object
    /// ([`RunReport::to_json`]) extended with the Classic extras.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.core.to_json() else {
            unreachable!("RunReport::to_json returns an object");
        };
        fields.push(("queue_requests".into(), Json::from(self.queue_requests)));
        fields.push(("storage_requests".into(), Json::from(self.storage.requests)));
        fields.push((
            "peak_fleet".into(),
            match &self.fleet {
                Some(f) => Json::from(f.peak_fleet() as u64),
                None => Json::Null,
            },
        ));
        Json::Obj(fields)
    }

    /// Full cost of the run: instances + queue requests + storage,
    /// in the paper's Table 4 shape.
    pub fn bill(&self, cluster: &Cluster, book: &PriceBook, storage_months: f64) -> Bill {
        let instances = cluster.cost(self.summary.makespan_seconds);
        let queue = book.queue_requests(self.queue_requests);
        let storage = self.storage.storage_cost(book, storage_months);
        Bill {
            instances,
            queue,
            storage,
        }
    }
}

/// Itemized job cost (Table 4's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bill {
    pub instances: CostBreakdown,
    pub queue: Usd,
    pub storage: Usd,
}

impl Bill {
    /// Total with whole-hour instance billing (the provider's invoice).
    pub fn total(&self) -> Usd {
        self.instances.compute_cost + self.queue + self.storage
    }

    /// Total with amortized instance billing (the paper's second view).
    pub fn total_amortized(&self) -> Usd {
        self.instances.amortized_cost + self.queue + self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::EC2_HCXL;
    use ppc_core::metrics::RunSummary;
    use ppc_core::pricing::AWS_2010;

    fn report() -> ClassicReport {
        ClassicReport {
            core: RunReport {
                summary: RunSummary {
                    platform: "classic-ec2".into(),
                    cores: 128,
                    tasks: 4096,
                    makespan_seconds: 3000.0,
                    redundant_executions: 4,
                    remote_bytes: 2 << 30,
                },
                failed: vec![],
                total_attempts: 4100,
                worker_deaths: 2,
                cost: None,
                trace: None,
            },
            queue_requests: 10_000,
            executions_per_fleet: vec![4100],
            timeline: None,
            fleet: None,
            storage: MeteringSnapshot {
                requests: 0,
                bytes_in: 1 << 30,
                bytes_out: 0,
                stored_bytes: 1 << 30,
                peak_stored_bytes: 1 << 30,
            },
        }
    }

    #[test]
    fn redundant_counts() {
        let r = report();
        assert_eq!(r.redundant_executions(), 4);
        assert!(r.is_complete());
    }

    #[test]
    fn core_reachable_through_deref() {
        let r = report();
        assert_eq!(r.summary.cores, 128);
        assert_eq!(r.total_attempts, 4100);
        assert_eq!(r.worker_deaths, 2);
    }

    #[test]
    fn json_extends_the_core_object() {
        let r = report();
        let j = Json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(
            j.field("summary")
                .unwrap()
                .field("platform")
                .unwrap()
                .as_str()
                .unwrap(),
            "classic-ec2"
        );
        assert_eq!(j.field("queue_requests").unwrap().as_u64().unwrap(), 10_000);
        assert!(matches!(j.field("peak_fleet").unwrap(), Json::Null));
    }

    #[test]
    fn table4_shaped_bill() {
        // 16 HCXL within the hour: $10.88 compute + $0.01 queue + $0.24
        // storage/transfer = $11.13 — the paper's AWS column.
        let r = report();
        let cluster = Cluster::provision_per_core(EC2_HCXL, 16);
        let bill = r.bill(&cluster, &AWS_2010, 1.0);
        assert_eq!(bill.instances.compute_cost, Usd::cents(1088));
        assert_eq!(bill.queue, Usd::cents(1));
        assert_eq!(bill.storage, Usd::cents(24));
        assert_eq!(bill.total(), Usd::cents(1113));
        assert!(bill.total_amortized() < bill.total());
    }

    #[test]
    fn fleet_costs_sum_across_clusters() {
        let a = Cluster::provision(EC2_HCXL, 2, 8);
        let single = fleets_cost(std::slice::from_ref(&a), 1800.0);
        let double = fleets_cost(&[a.clone(), a], 1800.0);
        assert_eq!(
            double.compute_cost,
            single.compute_cost + single.compute_cost
        );
    }
}
