//! Run reports and cost accounting for Classic Cloud jobs.

use ppc_compute::billing::CostBreakdown;
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::InstanceType;
use ppc_core::metrics::RunSummary;
use ppc_core::money::Usd;
use ppc_core::pricing::PriceBook;
use ppc_core::task::TaskId;
use ppc_core::trace::FleetTimeline;
use ppc_storage::metering::MeteringSnapshot;

/// Everything a Classic Cloud run reports back, shared by the native and
/// simulated runtimes.
#[derive(Debug, Clone)]
pub struct ClassicReport {
    pub summary: RunSummary,
    /// Tasks given up on after `max_deliveries` failed attempts.
    pub failed: Vec<TaskId>,
    /// Total task executions, including re-executions of the same task.
    pub total_executions: usize,
    /// Injected (or modeled) worker deaths observed.
    pub worker_deaths: usize,
    /// Billable queue API requests across scheduling + monitoring queues.
    pub queue_requests: u64,
    /// Successful task completions credited to each worker fleet (one
    /// entry per fleet for hybrid runs; a single entry otherwise; empty
    /// for simulated runs, which model a single fleet).
    pub executions_per_fleet: Vec<usize>,
    /// Storage service usage.
    pub storage: MeteringSnapshot,
    /// Per-worker execution timeline, derived from `trace` (runs with
    /// tracing enabled).
    pub timeline: Option<ppc_core::trace::Timeline>,
    /// Full span trace (traced runs): per-task lifecycle phases, attempts,
    /// and fleet events. Feed it to [`ppc_trace::OverheadReport`] or
    /// [`ppc_trace::chrome_trace_json`].
    pub trace: Option<ppc_trace::Trace>,
    /// Fleet-size timeline and per-instance billing for *elastic* runs
    /// (`run_job_autoscaled` / `simulate_autoscaled`); `None` for
    /// fixed-fleet runs.
    pub fleet: Option<FleetReport>,
}

/// What an autoscaled run adds to the report: the fleet-size step function
/// and the staggered per-instance bill.
#[derive(Debug, Clone)]
pub struct FleetReport {
    pub itype: InstanceType,
    /// Fleet size over time (billed instances).
    pub timeline: FleetTimeline,
    /// End of the billing horizon (job completion), seconds.
    pub horizon_s: f64,
    /// Per-instance started billing hours summed across the fleet.
    pub billed_hours: u64,
    /// Billed-but-unused instance-hours (money left on the table).
    pub wasted_hours: f64,
    /// Fleet cost over `[0, horizon_s]` under whole-hour and amortized
    /// billing.
    pub cost: CostBreakdown,
}

impl FleetReport {
    /// Largest fleet ever held.
    pub fn peak_fleet(&self) -> u32 {
        self.timeline.peak()
    }

    /// Time-weighted mean fleet size over the horizon.
    pub fn mean_fleet(&self) -> f64 {
        self.timeline.mean_size(self.horizon_s)
    }
}

impl ClassicReport {
    /// Re-executed task count: wasted (but harmless) work.
    pub fn redundant_executions(&self) -> usize {
        self.total_executions.saturating_sub(self.summary.tasks)
    }

    /// Whether every task eventually completed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Full cost of the run: instances + queue requests + storage,
    /// in the paper's Table 4 shape.
    pub fn bill(&self, cluster: &Cluster, book: &PriceBook, storage_months: f64) -> Bill {
        let instances = cluster.cost(self.summary.makespan_seconds);
        let queue = book.queue_requests(self.queue_requests);
        let storage = self.storage.storage_cost(book, storage_months);
        Bill {
            instances,
            queue,
            storage,
        }
    }
}

/// Itemized job cost (Table 4's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bill {
    pub instances: CostBreakdown,
    pub queue: Usd,
    pub storage: Usd,
}

impl Bill {
    /// Total with whole-hour instance billing (the provider's invoice).
    pub fn total(&self) -> Usd {
        self.instances.compute_cost + self.queue + self.storage
    }

    /// Total with amortized instance billing (the paper's second view).
    pub fn total_amortized(&self) -> Usd {
        self.instances.amortized_cost + self.queue + self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::EC2_HCXL;
    use ppc_core::pricing::AWS_2010;

    fn report() -> ClassicReport {
        ClassicReport {
            summary: RunSummary {
                platform: "classic-ec2".into(),
                cores: 128,
                tasks: 4096,
                makespan_seconds: 3000.0,
                redundant_executions: 4,
                remote_bytes: 2 << 30,
            },
            failed: vec![],
            total_executions: 4100,
            worker_deaths: 2,
            queue_requests: 10_000,
            executions_per_fleet: vec![4100],
            timeline: None,
            trace: None,
            fleet: None,
            storage: MeteringSnapshot {
                requests: 0,
                bytes_in: 1 << 30,
                bytes_out: 0,
                stored_bytes: 1 << 30,
                peak_stored_bytes: 1 << 30,
            },
        }
    }

    #[test]
    fn redundant_counts() {
        let r = report();
        assert_eq!(r.redundant_executions(), 4);
        assert!(r.is_complete());
    }

    #[test]
    fn table4_shaped_bill() {
        // 16 HCXL within the hour: $10.88 compute + $0.01 queue + $0.24
        // storage/transfer = $11.13 — the paper's AWS column.
        let r = report();
        let cluster = Cluster::provision_per_core(EC2_HCXL, 16);
        let bill = r.bill(&cluster, &AWS_2010, 1.0);
        assert_eq!(bill.instances.compute_cost, Usd::cents(1088));
        assert_eq!(bill.queue, Usd::cents(1));
        assert_eq!(bill.storage, Usd::cents(24));
        assert_eq!(bill.total(), Usd::cents(1113));
        assert!(bill.total_amortized() < bill.total());
    }
}
