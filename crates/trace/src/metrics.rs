//! Metrics registry: monotonic counters and mergeable log-bucket histograms
//! with p50/p95/p99 estimates.

use crate::span::JOB_TASK;
use crate::store::Trace;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Sub-buckets per power of two. 8 gives ~9% worst-case relative error on
/// quantile estimates — plenty for overhead attribution.
const BUCKETS_PER_DOUBLING: f64 = 8.0;
/// Bucket index for observations ≤ 0 (zero-duration spans are legal).
const ZERO_BUCKET: i32 = i32::MIN;

/// A mergeable histogram over sparse logarithmic buckets.
///
/// Merging is exact on `count`/`min`/`max` and per-bucket counts, so merge
/// order never changes a quantile estimate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

fn bucket_of(v: f64) -> i32 {
    if v <= 0.0 {
        ZERO_BUCKET
    } else {
        (v.log2() * BUCKETS_PER_DOUBLING).floor() as i32
    }
}

/// Representative value for a bucket: its geometric midpoint.
fn bucket_value(idx: i32) -> f64 {
    if idx == ZERO_BUCKET {
        0.0
    } else {
        ((idx as f64 + 0.5) / BUCKETS_PER_DOUBLING).exp2()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (idx, n) in &other.buckets {
            *self.buckets.entry(*idx).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Quantile estimate (`q` in `[0, 1]`), always clamped to
    /// `[min, max]` of the observed values. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for (idx, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return bucket_value(*idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Named counters + histograms, thread-safe, render-to-table.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Increment a counter. Counters only ever grow.
    pub fn inc(&self, name: &str, by: u64) {
        *self
            .counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert(0) += by;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub fn observe(&self, name: &str, v: f64) {
        self.histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.lock().unwrap().get(name).cloned()
    }

    pub fn counter_names(&self) -> Vec<String> {
        self.counters.lock().unwrap().keys().cloned().collect()
    }

    /// Build per-phase duration histograms and span/event counters from a
    /// finished trace.
    pub fn from_trace(trace: &Trace) -> Registry {
        let reg = Registry::new();
        for s in trace.spans() {
            if s.task == JOB_TASK {
                continue;
            }
            reg.inc("spans", 1);
            if s.phase == crate::span::Phase::Attempt {
                reg.inc("attempts", 1);
            }
            if s.phase.is_terminal() {
                reg.inc("tasks_completed", 1);
            }
            if !s.phase.is_structural() {
                reg.observe(&format!("phase.{}.seconds", s.phase.name()), s.duration_s());
            }
        }
        for e in trace.events() {
            reg.inc(&format!("events.{}", e.kind.name()), 1);
        }
        reg
    }

    /// Render counters and histogram quantiles as an ASCII table.
    pub fn render(&self) -> String {
        let mut t = ppc_core::report::Table::new(
            "metrics registry",
            &["metric", "count", "p50", "p95", "p99", "min", "max"],
        );
        for (name, v) in self.counters.lock().unwrap().iter() {
            t.row(vec![
                name.clone(),
                v.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            t.row(vec![
                name.clone(),
                h.count().to_string(),
                format!("{:.6}", h.p50()),
                format!("{:.6}", h.p95()),
                format!("{:.6}", h.p99()),
                format!("{:.6}", h.min()),
                format!("{:.6}", h.max()),
            ]);
        }
        t.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::rng::Pcg32;

    fn random_histogram(rng: &mut Pcg32, n: usize) -> Histogram {
        let mut h = Histogram::new();
        for _ in 0..n {
            // Mix of scales, including exact zeros.
            let v = if rng.chance(0.1) {
                0.0
            } else {
                rng.log_normal(0.0, 2.0)
            };
            h.observe(v);
        }
        h
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut rng = Pcg32::new(101);
        for _ in 0..50 {
            let a = random_histogram(&mut rng, 40);
            let b = random_histogram(&mut rng, 25);
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab.buckets, ba.buckets);
            assert_eq!(ab.count, ba.count);
            assert_eq!(ab.min, ba.min);
            assert_eq!(ab.max, ba.max);
            assert!((ab.sum - ba.sum).abs() <= 1e-9 * ab.sum.abs().max(1.0));
            // Same buckets + same extremes ⇒ identical quantiles.
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(ab.quantile(q), ba.quantile(q));
            }
        }
    }

    #[test]
    fn histogram_merge_is_associative() {
        let mut rng = Pcg32::new(202);
        for _ in 0..50 {
            let a = random_histogram(&mut rng, 30);
            let b = random_histogram(&mut rng, 20);
            let c = random_histogram(&mut rng, 10);
            let mut ab_c = a.clone();
            ab_c.merge(&b);
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c.buckets, a_bc.buckets);
            assert_eq!(ab_c.count, a_bc.count);
            assert_eq!(ab_c.min, a_bc.min);
            assert_eq!(ab_c.max, a_bc.max);
            assert!((ab_c.sum - a_bc.sum).abs() <= 1e-9 * ab_c.sum.abs().max(1.0));
        }
    }

    #[test]
    fn quantiles_bounded_by_min_and_max() {
        let mut rng = Pcg32::new(303);
        for _ in 0..100 {
            let n = 1 + rng.next_below(200) as usize;
            let h = random_histogram(&mut rng, n);
            for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let v = h.quantile(q);
                assert!(
                    v >= h.min() && v <= h.max(),
                    "q={q}: {v} outside [{}, {}]",
                    h.min(),
                    h.max()
                );
            }
            // Quantiles are monotone in q.
            assert!(h.quantile(0.25) <= h.quantile(0.75));
        }
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        // With 8 buckets per doubling the representative is within one
        // bucket width (~9%) of any value in the bucket.
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 / 100.0);
        }
        let p50 = h.p50();
        assert!((p50 - 5.0).abs() / 5.0 < 0.1, "p50 {p50}");
        let p99 = h.p99();
        assert!((p99 - 9.9).abs() / 9.9 < 0.1, "p99 {p99}");
    }

    #[test]
    fn counters_never_decrease() {
        let reg = Registry::new();
        let mut rng = Pcg32::new(404);
        let mut last = 0;
        for _ in 0..500 {
            reg.inc("ops", rng.next_below(5) as u64);
            let now = reg.counter("ops");
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        let mut m = Histogram::new();
        m.merge(&h);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn registry_renders_counters_and_histograms() {
        let reg = Registry::new();
        reg.inc("spans", 3);
        reg.observe("phase.execute.seconds", 1.5);
        reg.observe("phase.execute.seconds", 2.5);
        let out = reg.render();
        assert!(out.contains("spans"));
        assert!(out.contains("phase.execute.seconds"));
    }
}
