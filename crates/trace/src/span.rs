//! Span and event vocabulary shared by every engine.

/// Worker id used for spans that happen outside any worker (the client's
/// enqueue loop, the job-level root span).
pub const NO_WORKER: u32 = u32::MAX;

/// Task id used for the job-level root span.
pub const JOB_TASK: u64 = u64::MAX;

/// A lifecycle phase of a task attempt (or a structural container).
///
/// The per-paradigm taxonomies (DESIGN.md §6d):
///
/// | paradigm | phases |
/// |----------|--------|
/// | Classic  | `enqueue → dequeue → download → execute → upload → ack` |
/// | Hadoop   | `dispatch → read_local\|read_remote → map → commit` |
/// | Dryad    | `vertex_start → read_local → execute → write` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Root span covering the whole run; `task == JOB_TASK`.
    Job,
    /// Structural parent covering one attempt of one task.
    Attempt,
    // Classic Cloud.
    /// Client pushes the task message onto the queue (worker == NO_WORKER).
    Enqueue,
    /// Worker receives the message from the queue.
    Dequeue,
    /// Worker fetches the input object from blob storage.
    Download,
    /// Application compute (Classic + Dryad).
    Execute,
    /// Worker writes the output object to blob storage.
    Upload,
    /// Worker deletes the message — the terminal "this attempt won" span.
    Ack,
    // Hadoop.
    /// Scheduler hands the attempt to a task tracker slot.
    Dispatch,
    /// Input read served by a local replica (Hadoop + Dryad).
    ReadLocal,
    /// Input read streamed from a remote datanode.
    ReadRemote,
    /// Application compute inside the mapper.
    Map,
    /// Output committer promotes the attempt's output — terminal for Hadoop.
    Commit,
    // Dryad.
    /// Vertex scheduling/startup overhead.
    VertexStart,
    /// Vertex writes its output partition — terminal for Dryad.
    Write,
    // Workflow stage boundaries (any paradigm; worker == NO_WORKER).
    /// A workflow stage began; `attempt` carries the stage index.
    StageStart,
    /// Inter-stage materialization barrier: the upstream stage's outputs
    /// round-trip through shared storage before the downstream stage may
    /// start. `attempt` carries the *downstream* stage index.
    Materialize,
    /// A workflow stage finished; `attempt` carries the stage index.
    StageDone,
}

impl Phase {
    /// Stable lowercase name used by exporters and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Job => "job",
            Phase::Attempt => "attempt",
            Phase::Enqueue => "enqueue",
            Phase::Dequeue => "dequeue",
            Phase::Download => "download",
            Phase::Execute => "execute",
            Phase::Upload => "upload",
            Phase::Ack => "ack",
            Phase::Dispatch => "dispatch",
            Phase::ReadLocal => "read_local",
            Phase::ReadRemote => "read_remote",
            Phase::Map => "map",
            Phase::Commit => "commit",
            Phase::VertexStart => "vertex_start",
            Phase::Write => "write",
            Phase::StageStart => "stage_start",
            Phase::Materialize => "materialize",
            Phase::StageDone => "stage_done",
        }
    }

    /// Structural spans contain other spans rather than naming a phase.
    pub fn is_structural(self) -> bool {
        matches!(self, Phase::Job | Phase::Attempt)
    }

    /// Terminal phases mark the attempt that *won* the task: the Classic
    /// ack (message delete), the Hadoop commit, the Dryad output write.
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Ack | Phase::Commit | Phase::Write)
    }

    /// Application compute as opposed to framework overhead.
    pub fn is_compute(self) -> bool {
        matches!(self, Phase::Execute | Phase::Map)
    }

    /// Whether the phase must nest inside an [`Phase::Attempt`] parent.
    /// Client-side enqueue, the job root, and workflow stage boundaries
    /// live outside attempts.
    pub fn requires_attempt(self) -> bool {
        !matches!(self, Phase::Job | Phase::Attempt | Phase::Enqueue) && !self.is_stage_boundary()
    }

    /// Workflow stage-boundary markers emitted by the driver between
    /// per-stage runs (never inside an attempt, never on a worker).
    pub fn is_stage_boundary(self) -> bool {
        matches!(
            self,
            Phase::StageStart | Phase::Materialize | Phase::StageDone
        )
    }
}

/// One timed interval in a task attempt's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Task id (`TaskSpec::id`), or [`JOB_TASK`] for the root span.
    pub task: u64,
    /// Zero-based attempt number; chaos re-executions bump this.
    pub attempt: u32,
    /// Flat worker index, or [`NO_WORKER`] for client-side spans.
    pub worker: u32,
    pub phase: Phase,
    pub start_s: f64,
    pub end_s: f64,
}

impl Span {
    pub fn new(
        task: u64,
        attempt: u32,
        worker: u32,
        phase: Phase,
        start_s: f64,
        end_s: f64,
    ) -> Span {
        Span {
            task,
            attempt,
            worker,
            phase,
            start_s,
            end_s,
        }
    }

    /// The job-level root span: `[0, makespan]`, no task, no worker.
    pub fn job(makespan_s: f64) -> Span {
        Span::new(JOB_TASK, 0, NO_WORKER, Phase::Job, 0.0, makespan_s)
    }

    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Fleet-level instants recorded alongside spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A worker thread/slot came up (fixed fleets record one per worker).
    WorkerStart,
    /// Autoscaler launched a new instance slot.
    Launch,
    /// Autoscaler began draining a slot (no new work).
    Drain,
    /// Autoscaler retired a drained slot at its billing boundary.
    Retire,
    /// Chaos killed a worker (fault-schedule kill or death dice).
    Death,
    /// Resilience layer launched a duplicate (hedged) attempt of a task
    /// on `worker` because the primary attempt aged past the hedge delay.
    Hedge,
    /// Health tracker benched `worker` as gray (slow or failure-streaked).
    Quarantine,
    /// Health tracker released `worker` from quarantine into probation.
    Release,
    /// Resilience layer cancelled an attempt on `worker` — either the
    /// losing side of a hedge race or a task that blew its deadline.
    Cancel,
    // Job-service lifecycle (ppc-serve); `worker` is the serving slot, or
    // NO_WORKER for front-door events.
    /// A job entered a tenant's bounded queue.
    JobSubmit,
    /// The fair-share scheduler picked a job under its tenant's quota.
    JobAdmit,
    /// Admission control shed a submission (bounded buffer full).
    JobReject,
    /// A job began occupying a fleet slot.
    JobDispatch,
    /// A job reached a terminal Done/Failed state.
    JobComplete,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::WorkerStart => "worker_start",
            EventKind::Launch => "launch",
            EventKind::Drain => "drain",
            EventKind::Retire => "retire",
            EventKind::Death => "death",
            EventKind::Hedge => "hedge",
            EventKind::Quarantine => "quarantine",
            EventKind::Release => "release",
            EventKind::Cancel => "cancel",
            EventKind::JobSubmit => "job_submit",
            EventKind::JobAdmit => "job_admit",
            EventKind::JobReject => "job_reject",
            EventKind::JobDispatch => "job_dispatch",
            EventKind::JobComplete => "job_complete",
        }
    }
}

/// A fleet event: something happened to `worker` at `at_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub at_s: f64,
    pub worker: u32,
    pub kind: EventKind,
}

/// Run-level metadata stamped by the engine at finalisation. The makespan
/// here is the *engine-reported* value, so Eq. 1 recomputed from the trace
/// reproduces the report's efficiency exactly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunMeta {
    pub platform: String,
    pub cores: usize,
    pub tasks: usize,
    pub makespan_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable_and_unique() {
        let all = [
            Phase::Job,
            Phase::Attempt,
            Phase::Enqueue,
            Phase::Dequeue,
            Phase::Download,
            Phase::Execute,
            Phase::Upload,
            Phase::Ack,
            Phase::Dispatch,
            Phase::ReadLocal,
            Phase::ReadRemote,
            Phase::Map,
            Phase::Commit,
            Phase::VertexStart,
            Phase::Write,
            Phase::StageStart,
            Phase::Materialize,
            Phase::StageDone,
        ];
        let mut names: Vec<&str> = all.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate phase name");
        for p in all {
            assert!(
                p.is_structural()
                    || p.requires_attempt()
                    || p.is_stage_boundary()
                    || p == Phase::Enqueue
            );
        }
    }

    #[test]
    fn terminal_and_compute_partition() {
        assert!(Phase::Ack.is_terminal());
        assert!(Phase::Commit.is_terminal());
        assert!(Phase::Write.is_terminal());
        assert!(!Phase::Execute.is_terminal());
        assert!(Phase::Execute.is_compute());
        assert!(Phase::Map.is_compute());
        assert!(!Phase::Ack.is_compute());
    }

    #[test]
    fn job_span_shape() {
        let s = Span::job(12.5);
        assert_eq!(s.task, JOB_TASK);
        assert_eq!(s.worker, NO_WORKER);
        assert_eq!(s.duration_s(), 12.5);
        assert!(s.phase.is_structural());
    }
}
