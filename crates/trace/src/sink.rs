//! Recording sinks: where engines put spans.
//!
//! The hot path guards every recording call on [`TraceSink::enabled`], so a
//! disabled sink (or no sink at all) costs a branch on an `Option` — nothing
//! is formatted, cloned, or locked.

use crate::span::{Phase, RunMeta, Span, TraceEvent};
use crate::store::Trace;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Destination for spans and fleet events.
///
/// `fmt::Debug` is a supertrait so `Arc<dyn TraceSink>` can live inside
/// `#[derive(Debug)]` engine configs.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Whether recording is on. Engines skip span construction entirely
    /// when this is false.
    fn enabled(&self) -> bool {
        false
    }
    fn span(&self, _span: Span) {}
    fn event(&self, _event: TraceEvent) {}
    fn set_meta(&self, _meta: RunMeta) {}
    /// An immutable copy of everything recorded so far, if this sink keeps
    /// anything.
    fn snapshot(&self) -> Option<Trace> {
        None
    }
}

/// Marks successive lifecycle phases of one attempt against a live sink.
///
/// Native engines create one marker per attempt and call [`mark`] with
/// wall-clock seconds from their run clock as each phase completes; every
/// `mark` closes the phase running since the previous one. The structural
/// [`Phase::Attempt`] parent span is emitted on drop, so early exits
/// (worker death, lost lease, failed attempt) still close the span tree.
///
/// [`mark`]: AttemptMarker::mark
pub struct AttemptMarker<'a> {
    sink: &'a dyn TraceSink,
    task: u64,
    attempt: u32,
    worker: u32,
    start_s: f64,
    last_s: f64,
}

impl<'a> AttemptMarker<'a> {
    pub fn new(
        sink: &'a dyn TraceSink,
        task: u64,
        attempt: u32,
        worker: u32,
        start_s: f64,
    ) -> AttemptMarker<'a> {
        AttemptMarker {
            sink,
            task,
            attempt,
            worker,
            start_s,
            last_s: start_s,
        }
    }

    /// Close the phase that has been running since the previous mark (or
    /// since the attempt started), ending at `now_s`. Clamped monotone so
    /// clock jitter can never produce a negative-length span.
    pub fn mark(&mut self, phase: Phase, now_s: f64) {
        let end = now_s.max(self.last_s);
        self.sink.span(Span::new(
            self.task,
            self.attempt,
            self.worker,
            phase,
            self.last_s,
            end,
        ));
        self.last_s = end;
    }
}

impl Drop for AttemptMarker<'_> {
    fn drop(&mut self) {
        self.sink.span(Span::new(
            self.task,
            self.attempt,
            self.worker,
            Phase::Attempt,
            self.start_s,
            self.last_s,
        ));
    }
}

/// Discards everything; the default when tracing is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// Keeps every span and event; the sink behind `trace: true` runs.
#[derive(Debug, Default)]
pub struct Recorder {
    spans: Mutex<Vec<Span>>,
    events: Mutex<Vec<TraceEvent>>,
    meta: Mutex<RunMeta>,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }
}

impl TraceSink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&self, span: Span) {
        self.spans.lock().unwrap().push(span);
    }

    fn event(&self, event: TraceEvent) {
        self.events.lock().unwrap().push(event);
    }

    fn set_meta(&self, meta: RunMeta) {
        *self.meta.lock().unwrap() = meta;
    }

    fn snapshot(&self) -> Option<Trace> {
        Some(Trace::new(
            self.meta.lock().unwrap().clone(),
            self.spans.lock().unwrap().clone(),
            self.events.lock().unwrap().clone(),
        ))
    }
}

/// Bounded recorder keeping only the most recent `capacity` spans — for
/// long runs where only the tail matters. Events and meta are unbounded
/// (they are few).
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    spans: Mutex<VecDeque<Span>>,
    events: Mutex<Vec<TraceEvent>>,
    meta: Mutex<RunMeta>,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            events: Mutex::new(Vec::new()),
            meta: Mutex::new(RunMeta::default()),
        }
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&self, span: Span) {
        let mut q = self.spans.lock().unwrap();
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(span);
    }

    fn event(&self, event: TraceEvent) {
        self.events.lock().unwrap().push(event);
    }

    fn set_meta(&self, meta: RunMeta) {
        *self.meta.lock().unwrap() = meta;
    }

    fn snapshot(&self) -> Option<Trace> {
        Some(Trace::new(
            self.meta.lock().unwrap().clone(),
            self.spans.lock().unwrap().iter().copied().collect(),
            self.events.lock().unwrap().clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn span(task: u64) -> Span {
        Span::new(task, 0, 0, Phase::Execute, 0.0, 1.0)
    }

    #[test]
    fn noop_sink_records_nothing() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.span(span(1));
        assert!(s.snapshot().is_none());
    }

    #[test]
    fn recorder_keeps_everything_in_order() {
        let r = Recorder::new();
        assert!(r.enabled());
        for i in 0..5 {
            r.span(span(i));
        }
        r.event(TraceEvent {
            at_s: 1.0,
            worker: 2,
            kind: crate::span::EventKind::Death,
        });
        r.set_meta(RunMeta {
            platform: "test".into(),
            cores: 4,
            tasks: 5,
            makespan_seconds: 9.0,
        });
        let t = r.snapshot().unwrap();
        assert_eq!(t.spans().len(), 5);
        assert_eq!(t.spans()[3].task, 3);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.meta().cores, 4);
    }

    #[test]
    fn attempt_marker_flushes_parent_on_drop() {
        let r = Recorder::new();
        {
            let mut m = AttemptMarker::new(&r, 7, 1, 3, 10.0);
            m.mark(Phase::Dequeue, 10.5);
            m.mark(Phase::Execute, 12.0);
            // Clock jitter: an earlier timestamp clamps to a zero span.
            m.mark(Phase::Ack, 11.0);
        }
        let t = r.snapshot().unwrap();
        let spans = t.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].phase, Phase::Dequeue);
        assert_eq!((spans[0].start_s, spans[0].end_s), (10.0, 10.5));
        assert_eq!(spans[2].phase, Phase::Ack);
        assert_eq!(spans[2].duration_s(), 0.0);
        let attempt = spans[3];
        assert_eq!(attempt.phase, Phase::Attempt);
        assert_eq!((attempt.start_s, attempt.end_s), (10.0, 12.0));
        assert_eq!((attempt.task, attempt.attempt, attempt.worker), (7, 1, 3));
    }

    #[test]
    fn ring_sink_keeps_only_the_tail() {
        let r = RingSink::new(3);
        for i in 0..10 {
            r.span(span(i));
        }
        let t = r.snapshot().unwrap();
        let tasks: Vec<u64> = t.spans().iter().map(|s| s.task).collect();
        assert_eq!(tasks, vec![7, 8, 9]);
    }
}
