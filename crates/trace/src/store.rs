//! The immutable span store: queries, well-formedness, Eq. 1 / Eq. 2
//! recomputation, and the legacy Gantt view.

use crate::span::{EventKind, Phase, RunMeta, Span, TraceEvent, JOB_TASK, NO_WORKER};
use ppc_core::metrics::{avg_time_per_task_per_core, parallel_efficiency};
use ppc_core::trace::Timeline;
use std::collections::{BTreeMap, BTreeSet};

/// Tolerance for interval-containment checks: spans are recorded from f64
/// arithmetic on both engines, so exact nesting can be off by rounding.
const EPS_S: f64 = 1e-9;

/// An immutable snapshot of a run's spans and fleet events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    meta: RunMeta,
    spans: Vec<Span>,
    events: Vec<TraceEvent>,
}

impl Trace {
    pub fn new(meta: RunMeta, spans: Vec<Span>, events: Vec<TraceEvent>) -> Trace {
        Trace {
            meta,
            spans,
            events,
        }
    }

    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn events_of_kind(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// All distinct task ids with at least one span (excluding the job root).
    pub fn task_ids(&self) -> BTreeSet<u64> {
        self.spans
            .iter()
            .filter(|s| s.task != JOB_TASK)
            .map(|s| s.task)
            .collect()
    }

    /// Distinct attempt numbers recorded for `task` (from Attempt spans).
    pub fn attempts_of(&self, task: u64) -> BTreeSet<u32> {
        self.spans
            .iter()
            .filter(|s| s.task == task && s.phase == Phase::Attempt)
            .map(|s| s.attempt)
            .collect()
    }

    /// Spans belonging to one `(task, attempt)`, in recording order.
    pub fn spans_of(&self, task: u64, attempt: u32) -> Vec<Span> {
        self.spans
            .iter()
            .filter(|s| s.task == task && s.attempt == attempt)
            .copied()
            .collect()
    }

    /// The job-level root span, if the engine recorded one.
    pub fn job_span(&self) -> Option<Span> {
        self.spans.iter().find(|s| s.phase == Phase::Job).copied()
    }

    /// Makespan seen by the trace: the job span's duration, else the latest
    /// span end.
    pub fn makespan_s(&self) -> f64 {
        self.job_span()
            .map(|s| s.duration_s())
            .unwrap_or_else(|| self.spans.iter().map(|s| s.end_s).fold(0.0, f64::max))
    }

    /// Task ids that finished: at least one terminal (ack/commit/write) span.
    pub fn completed_tasks(&self) -> BTreeSet<u64> {
        self.spans
            .iter()
            .filter(|s| s.phase.is_terminal())
            .map(|s| s.task)
            .collect()
    }

    /// Number of terminal spans recorded for `task`.
    pub fn terminal_spans_of(&self, task: u64) -> usize {
        self.spans
            .iter()
            .filter(|s| s.task == task && s.phase.is_terminal())
            .count()
    }

    /// Lifecycle phase set of the attempt that won `task` (the attempt
    /// holding a terminal span), excluding structural spans. Empty if the
    /// task never completed.
    pub fn terminal_attempt_phases(&self, task: u64) -> BTreeSet<Phase> {
        let Some(win) = self
            .spans
            .iter()
            .find(|s| s.task == task && s.phase.is_terminal())
        else {
            return BTreeSet::new();
        };
        self.spans
            .iter()
            .filter(|s| s.task == task && s.attempt == win.attempt && !s.phase.is_structural())
            .map(|s| s.phase)
            .collect()
    }

    /// Eq. 1 from spans: `E = T1 / (P · Tp)` with `Tp` the job span's
    /// duration and `P` the recorded core count.
    pub fn parallel_efficiency(&self, t1_seconds: f64) -> f64 {
        parallel_efficiency(t1_seconds, self.makespan_s(), self.meta.cores)
    }

    /// Eq. 2 from spans: average time per task per core.
    pub fn per_task_per_core(&self) -> f64 {
        avg_time_per_task_per_core(self.makespan_s(), self.meta.cores, self.meta.tasks)
    }

    /// Structural well-formedness violations; empty means the trace is sound.
    ///
    /// Checks: finite non-negative durations; at most one Attempt span per
    /// `(task, attempt)`; every phase span that requires an attempt has an
    /// Attempt parent on the same worker whose interval contains it.
    pub fn check_well_formed(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut attempts: BTreeMap<(u64, u32), Span> = BTreeMap::new();
        for s in &self.spans {
            if !s.start_s.is_finite() || !s.end_s.is_finite() {
                problems.push(format!("non-finite span: {s:?}"));
                continue;
            }
            if s.end_s < s.start_s - EPS_S {
                problems.push(format!(
                    "negative duration ({:.9}s) on {:?} task {} attempt {}",
                    s.duration_s(),
                    s.phase,
                    s.task,
                    s.attempt
                ));
            }
            if s.phase == Phase::Attempt {
                if let Some(prev) = attempts.insert((s.task, s.attempt), *s) {
                    problems.push(format!(
                        "duplicate attempt span for task {} attempt {} (prev {:?})",
                        s.task, s.attempt, prev
                    ));
                }
            }
        }
        for s in &self.spans {
            if !s.phase.requires_attempt() {
                continue;
            }
            match attempts.get(&(s.task, s.attempt)) {
                None => problems.push(format!(
                    "{} span for task {} attempt {} has no attempt parent",
                    s.phase.name(),
                    s.task,
                    s.attempt
                )),
                Some(parent) => {
                    if s.start_s < parent.start_s - EPS_S || s.end_s > parent.end_s + EPS_S {
                        problems.push(format!(
                            "{} span [{:.9}, {:.9}] outside attempt [{:.9}, {:.9}] (task {} attempt {})",
                            s.phase.name(),
                            s.start_s,
                            s.end_s,
                            parent.start_s,
                            parent.end_s,
                            s.task,
                            s.attempt
                        ));
                    }
                    if s.worker != parent.worker {
                        problems.push(format!(
                            "{} span on worker {} but attempt parent on worker {} (task {} attempt {})",
                            s.phase.name(),
                            s.worker,
                            parent.worker,
                            s.task,
                            s.attempt
                        ));
                    }
                }
            }
        }
        problems
    }

    /// Legacy per-worker busy view: one [`Timeline`] interval per *winning*
    /// attempt (an Attempt span whose `(task, attempt)` holds a terminal
    /// span). This is the view `ClassicReport::timeline` used to maintain by
    /// hand in the simulator.
    pub fn to_timeline(&self) -> Timeline {
        let winners: BTreeSet<(u64, u32)> = self
            .spans
            .iter()
            .filter(|s| s.phase.is_terminal())
            .map(|s| (s.task, s.attempt))
            .collect();
        let mut tl = Timeline::new();
        for s in &self.spans {
            if s.phase == Phase::Attempt
                && s.worker != NO_WORKER
                && winners.contains(&(s.task, s.attempt))
            {
                tl.push(s.worker as usize, s.task, s.start_s, s.end_s);
            }
        }
        tl
    }

    /// ASCII Gantt chart of winning attempts per worker — a rendering view
    /// over the span store via the legacy [`Timeline`] engine.
    pub fn render_gantt(&self, width: usize) -> String {
        self.to_timeline().render_ascii(width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            platform: "classic-test".into(),
            cores: 2,
            tasks: 2,
            makespan_seconds: 10.0,
        }
    }

    /// Two tasks on two workers; task 1 needs two attempts.
    fn sample() -> Trace {
        let mut spans = vec![Span::job(10.0)];
        // task 0, attempt 0, worker 0: clean run.
        spans.push(Span::new(0, 0, NO_WORKER, Phase::Enqueue, 0.0, 0.1));
        spans.push(Span::new(0, 0, 0, Phase::Dequeue, 1.0, 1.2));
        spans.push(Span::new(0, 0, 0, Phase::Download, 1.2, 2.0));
        spans.push(Span::new(0, 0, 0, Phase::Execute, 2.0, 6.0));
        spans.push(Span::new(0, 0, 0, Phase::Upload, 6.0, 6.5));
        spans.push(Span::new(0, 0, 0, Phase::Ack, 6.5, 6.7));
        spans.push(Span::new(0, 0, 0, Phase::Attempt, 1.0, 6.7));
        // task 1, attempt 0, worker 1: dies mid-execute (no terminal).
        spans.push(Span::new(1, 0, 1, Phase::Dequeue, 1.0, 1.1));
        spans.push(Span::new(1, 0, 1, Phase::Execute, 1.1, 3.0));
        spans.push(Span::new(1, 0, 1, Phase::Attempt, 1.0, 3.0));
        // task 1, attempt 1, worker 0: wins.
        spans.push(Span::new(1, 1, 0, Phase::Dequeue, 6.8, 6.9));
        spans.push(Span::new(1, 1, 0, Phase::Download, 6.9, 7.2));
        spans.push(Span::new(1, 1, 0, Phase::Execute, 7.2, 9.0));
        spans.push(Span::new(1, 1, 0, Phase::Upload, 9.0, 9.5));
        spans.push(Span::new(1, 1, 0, Phase::Ack, 9.5, 9.6));
        spans.push(Span::new(1, 1, 0, Phase::Attempt, 6.8, 9.6));
        let events = vec![TraceEvent {
            at_s: 3.0,
            worker: 1,
            kind: EventKind::Death,
        }];
        Trace::new(meta(), spans, events)
    }

    #[test]
    fn sample_is_well_formed() {
        let t = sample();
        let problems = t.check_well_formed();
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn queries_see_attempts_and_terminals() {
        let t = sample();
        assert_eq!(t.task_ids().len(), 2);
        assert_eq!(t.attempts_of(1).len(), 2);
        assert_eq!(t.completed_tasks().len(), 2);
        assert_eq!(t.terminal_spans_of(0), 1);
        assert_eq!(t.terminal_spans_of(1), 1);
        let phases = t.terminal_attempt_phases(1);
        assert!(phases.contains(&Phase::Ack));
        assert!(phases.contains(&Phase::Execute));
        assert!(!phases.contains(&Phase::Attempt));
        assert_eq!(t.events_of_kind(EventKind::Death), 1);
    }

    #[test]
    fn efficiency_matches_core_metrics() {
        let t = sample();
        assert_eq!(t.makespan_s(), 10.0);
        let e = t.parallel_efficiency(18.0);
        assert!((e - 18.0 / (2.0 * 10.0)).abs() < 1e-12);
        let eq2 = t.per_task_per_core();
        assert!((eq2 - 10.0 * 2.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_view_keeps_only_winning_attempts() {
        let t = sample();
        let tl = t.to_timeline();
        // 3 attempt spans, but only 2 won.
        assert_eq!(tl.intervals().len(), 2);
        let gantt = t.render_gantt(40);
        assert!(gantt.contains('#') || !gantt.is_empty());
    }

    #[test]
    fn malformed_traces_are_reported() {
        let mut t = sample();
        t.spans.push(Span::new(7, 0, 0, Phase::Execute, 1.0, 2.0));
        let problems = t.check_well_formed();
        assert!(problems.iter().any(|p| p.contains("no attempt parent")));

        let mut t2 = sample();
        t2.spans.push(Span::new(9, 0, 0, Phase::Attempt, 5.0, 4.0));
        assert!(t2
            .check_well_formed()
            .iter()
            .any(|p| p.contains("negative duration")));

        let mut t3 = sample();
        t3.spans.push(Span::new(0, 0, 0, Phase::Attempt, 0.0, 1.0));
        assert!(t3
            .check_well_formed()
            .iter()
            .any(|p| p.contains("duplicate attempt")));
    }
}
