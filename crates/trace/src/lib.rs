//! Unified span tracing + metrics for all three paradigms.
//!
//! The paper's argument rests on decomposing *where time goes*: parallel
//! efficiency (Eq. 1), per-task-per-core time (Eq. 2), and the framework
//! overheads that separate Classic Cloud (queue poll + blob transfer) from
//! Hadoop (dispatch + non-local reads) from DryadLINQ (static-partition idle
//! time). This crate gives every engine — native and discrete-event — one
//! vocabulary for that decomposition:
//!
//! - [`Span`]: a timed lifecycle phase of one task attempt. Classic tasks go
//!   `enqueue → dequeue → download → execute → upload → ack`, Hadoop tasks
//!   `dispatch → read(local|remote) → map → commit`, Dryad vertices
//!   `vertex_start → read_local → execute → write`.
//! - [`TraceEvent`]: fleet-level instants (worker launch/kill/replace) from
//!   ppc-autoscale and ppc-chaos.
//! - [`TraceSink`]: the recording trait. [`NoopSink`] is free; [`Recorder`]
//!   keeps everything; [`RingSink`] keeps the last N spans.
//! - [`Trace`]: an immutable snapshot with well-formedness checks, Eq. 1 /
//!   Eq. 2 recomputation from spans, and a legacy
//!   [`Timeline`](ppc_core::trace::Timeline) view for Gantt rendering.
//! - [`Registry`]/[`Histogram`]: counters and log-bucket histograms
//!   (p50/p95/p99) built from a trace or fed directly.
//! - [`OverheadReport`]: attributes the efficiency gap to named per-framework
//!   overhead categories, recomputed purely from spans.
//! - [`chrome_trace_json`]: `chrome://tracing` / Perfetto JSON export.

mod chrome;
mod metrics;
mod overhead;
mod sink;
mod span;
mod store;

pub use chrome::chrome_trace_json;
pub use metrics::{Histogram, Registry};
pub use overhead::{
    OverheadCategory, OverheadReport, Paradigm, INTER_STAGE_MATERIALIZATION, WASTED_DUPLICATE_WORK,
};
pub use sink::{AttemptMarker, NoopSink, Recorder, RingSink, TraceSink};
pub use span::{EventKind, Phase, RunMeta, Span, TraceEvent, JOB_TASK, NO_WORKER};
pub use store::Trace;
