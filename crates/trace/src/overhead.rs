//! Overhead decomposition: attribute the Eq. 1 efficiency gap to named
//! per-framework overheads, recomputed purely from spans.
//!
//! The paper explains each framework's efficiency loss with a different
//! mechanism — Classic Cloud pays queue-control round-trips and blob
//! transfers, Hadoop pays dispatch latency and non-local reads, DryadLINQ
//! pays vertex startup and static-partition idle time. Each paradigm gets a
//! *fixed* category list (zero-valued categories included), so a sim trace
//! and a native trace of the same paradigm always decompose into the same
//! structure even when the numbers differ.

use crate::span::{Phase, NO_WORKER};
use crate::store::Trace;
use ppc_core::metrics::{avg_time_per_task_per_core, parallel_efficiency};
use ppc_core::report::Table;
use std::collections::HashMap;

/// Category name for core-time burnt by attempts that lost: hedged
/// duplicates and chaos re-executions of tasks some other attempt won.
/// Present (zero-valued when unused) in every paradigm's taxonomy.
pub const WASTED_DUPLICATE_WORK: &str = "wasted duplicate work";

/// Category name for inter-stage materialization barriers in a workflow
/// trace: the storage round-trips moving one stage's outputs into the next
/// stage's inputs. Present (zero-valued for single-stage runs) in every
/// paradigm's taxonomy. Unlike per-attempt phases these spans carry
/// [`NO_WORKER`] — the barrier serializes the whole stage boundary — so
/// [`OverheadReport::from_trace`] bills them specially.
pub const INTER_STAGE_MATERIALIZATION: &str = "inter-stage materialization";

/// Which of the paper's three frameworks a trace came from, detected from
/// the platform string every engine stamps into [`RunMeta`](crate::RunMeta).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    Classic,
    Hadoop,
    Dryad,
}

impl Paradigm {
    /// Detect from a platform name: `classic*`, `hadoop*`, `dryad*`.
    pub fn detect(platform: &str) -> Option<Paradigm> {
        if platform.starts_with("classic") {
            Some(Paradigm::Classic)
        } else if platform.starts_with("hadoop") {
            Some(Paradigm::Hadoop)
        } else if platform.starts_with("dryad") {
            Some(Paradigm::Dryad)
        } else {
            None
        }
    }

    /// The fixed overhead taxonomy: `(category name, phases billed to it)`.
    ///
    /// Every paradigm ends with [`WASTED_DUPLICATE_WORK`], an empty-phase
    /// bucket filled specially by [`OverheadReport::from_trace`]: all
    /// non-structural time of *losing* attempts (hedged duplicates, chaos
    /// re-executions) for tasks some other attempt won.
    pub fn categories(self) -> &'static [(&'static str, &'static [Phase])] {
        match self {
            Paradigm::Classic => &[
                ("queue control", &[Phase::Dequeue, Phase::Ack]),
                ("storage download", &[Phase::Download]),
                ("storage upload", &[Phase::Upload]),
                (INTER_STAGE_MATERIALIZATION, &[Phase::Materialize]),
                (WASTED_DUPLICATE_WORK, &[]),
            ],
            Paradigm::Hadoop => &[
                ("dispatch", &[Phase::Dispatch]),
                ("local read", &[Phase::ReadLocal]),
                ("remote read", &[Phase::ReadRemote]),
                ("commit write", &[Phase::Commit]),
                (INTER_STAGE_MATERIALIZATION, &[Phase::Materialize]),
                (WASTED_DUPLICATE_WORK, &[]),
            ],
            Paradigm::Dryad => &[
                ("vertex startup", &[Phase::VertexStart]),
                ("local io", &[Phase::ReadLocal, Phase::Write]),
                (INTER_STAGE_MATERIALIZATION, &[Phase::Materialize]),
                (WASTED_DUPLICATE_WORK, &[]),
            ],
        }
    }
}

/// One named overhead bucket: total worker-seconds spent in its phases.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadCategory {
    pub name: &'static str,
    pub seconds: f64,
}

/// Eq. 1 / Eq. 2 recomputed from spans plus a core-time decomposition:
/// `cores × horizon = compute + Σ overheads + idle`.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    pub paradigm: Paradigm,
    pub platform: String,
    pub cores: usize,
    pub tasks: usize,
    pub makespan_s: f64,
    /// Last span end — ≥ makespan, because speculative duplicates keep
    /// burning cores after the winning attempt completes the job. This,
    /// not the makespan, bounds the core-time being decomposed.
    pub horizon_s: f64,
    /// Worker-seconds of application compute (execute/map), all attempts.
    pub compute_s: f64,
    /// Fixed per-paradigm overhead buckets (zeros kept).
    pub categories: Vec<OverheadCategory>,
    /// Core-seconds not covered by compute or overheads: scheduling gaps,
    /// static-partition imbalance, post-death idleness.
    pub idle_s: f64,
}

impl OverheadReport {
    /// Decompose a finished trace. Panics if the platform string does not
    /// identify a paradigm — traces are always stamped by an engine.
    pub fn from_trace(trace: &Trace) -> OverheadReport {
        let meta = trace.meta();
        let paradigm = Paradigm::detect(&meta.platform)
            .unwrap_or_else(|| panic!("unknown paradigm for platform {:?}", meta.platform));
        let makespan_s = trace.makespan_s();
        let horizon_s = trace
            .spans()
            .iter()
            .map(|s| s.end_s)
            .fold(makespan_s, f64::max);
        let mut compute_s = 0.0;
        let mut categories: Vec<OverheadCategory> = paradigm
            .categories()
            .iter()
            .map(|(name, _)| OverheadCategory { name, seconds: 0.0 })
            .collect();
        let wasted_idx = categories
            .iter()
            .position(|c| c.name == WASTED_DUPLICATE_WORK)
            .expect("every taxonomy ends with the wasted-duplicate bucket");
        // The attempt that won each task, identified by its terminal span
        // (ack/commit/write). Attempts of the same task that are not the
        // winner burnt core-time without producing the output: their whole
        // footprint is wasted duplicate work, not compute or overhead.
        let mut winner: HashMap<u64, u32> = HashMap::new();
        for s in trace.spans() {
            if s.phase.is_terminal() {
                winner.entry(s.task).or_insert(s.attempt);
            }
        }
        let mat_idx = categories
            .iter()
            .position(|c| c.name == INTER_STAGE_MATERIALIZATION)
            .expect("every taxonomy has the materialization bucket");
        for s in trace.spans() {
            // Materialization barriers are driver-side (NO_WORKER) spans,
            // billed before the worker filter below would drop them.
            if s.phase == Phase::Materialize {
                categories[mat_idx].seconds += s.duration_s();
                continue;
            }
            if s.worker == NO_WORKER || s.phase.is_structural() || s.phase.is_stage_boundary() {
                continue;
            }
            if winner.get(&s.task).is_some_and(|&w| w != s.attempt) {
                categories[wasted_idx].seconds += s.duration_s();
                continue;
            }
            if s.phase.is_compute() {
                compute_s += s.duration_s();
                continue;
            }
            for (i, (_, phases)) in paradigm.categories().iter().enumerate() {
                if phases.contains(&s.phase) {
                    categories[i].seconds += s.duration_s();
                    break;
                }
            }
        }
        let overhead_s: f64 = categories.iter().map(|c| c.seconds).sum();
        let idle_s = (meta.cores as f64 * horizon_s - compute_s - overhead_s).max(0.0);
        OverheadReport {
            paradigm,
            platform: meta.platform.clone(),
            cores: meta.cores,
            tasks: meta.tasks,
            makespan_s,
            horizon_s,
            compute_s,
            categories,
            idle_s,
        }
    }

    /// Eq. 1 recomputed from the trace: `E = T1 / (P · Tp)`.
    pub fn efficiency(&self, t1_seconds: f64) -> f64 {
        parallel_efficiency(t1_seconds, self.makespan_s, self.cores)
    }

    /// Eq. 2 recomputed from the trace.
    pub fn per_task_per_core(&self) -> f64 {
        avg_time_per_task_per_core(self.makespan_s, self.cores, self.tasks)
    }

    /// Total worker-seconds across all overhead categories.
    pub fn overhead_s(&self) -> f64 {
        self.categories.iter().map(|c| c.seconds).sum()
    }

    /// The category names, in taxonomy order — structure, not values.
    pub fn category_names(&self) -> Vec<&'static str> {
        self.categories.iter().map(|c| c.name).collect()
    }

    /// Fraction of total core-time (`cores × horizon`) a bucket takes.
    fn share(&self, seconds: f64) -> f64 {
        let total = self.cores as f64 * self.horizon_s;
        if total > 0.0 {
            seconds / total
        } else {
            0.0
        }
    }

    /// Render the decomposition: each row attributes a slice of the
    /// efficiency gap to a named overhead.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!("overhead decomposition — {}", self.platform),
            &["bucket", "core-seconds", "share of core-time"],
        );
        t.row(vec![
            "compute".into(),
            format!("{:.3}", self.compute_s),
            format!("{:.1}%", 100.0 * self.share(self.compute_s)),
        ]);
        for c in &self.categories {
            t.row(vec![
                c.name.into(),
                format!("{:.3}", c.seconds),
                format!("{:.1}%", 100.0 * self.share(c.seconds)),
            ]);
        }
        t.row(vec![
            "idle".into(),
            format!("{:.3}", self.idle_s),
            format!("{:.1}%", 100.0 * self.share(self.idle_s)),
        ]);
        t.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{RunMeta, Span};
    use crate::store::Trace;

    fn classic_trace() -> Trace {
        let meta = RunMeta {
            platform: "classic-sim-test".into(),
            cores: 2,
            tasks: 1,
            makespan_seconds: 10.0,
        };
        let spans = vec![
            Span::job(10.0),
            Span::new(0, 0, 0, Phase::Dequeue, 0.0, 1.0),
            Span::new(0, 0, 0, Phase::Download, 1.0, 3.0),
            Span::new(0, 0, 0, Phase::Execute, 3.0, 8.0),
            Span::new(0, 0, 0, Phase::Upload, 8.0, 9.0),
            Span::new(0, 0, 0, Phase::Ack, 9.0, 9.5),
            Span::new(0, 0, 0, Phase::Attempt, 0.0, 9.5),
        ];
        Trace::new(meta, spans, Vec::new())
    }

    #[test]
    fn detects_paradigm_from_platform() {
        assert_eq!(Paradigm::detect("classic"), Some(Paradigm::Classic));
        assert_eq!(
            Paradigm::detect("classic-autoscale-ec2-hcxl"),
            Some(Paradigm::Classic)
        );
        assert_eq!(Paradigm::detect("hadoop-sim-x"), Some(Paradigm::Hadoop));
        assert_eq!(Paradigm::detect("dryadlinq"), Some(Paradigm::Dryad));
        assert_eq!(Paradigm::detect("unknown"), None);
    }

    #[test]
    fn decomposition_accounts_for_all_core_time() {
        let r = OverheadReport::from_trace(&classic_trace());
        assert_eq!(r.paradigm, Paradigm::Classic);
        assert_eq!(r.compute_s, 5.0);
        assert_eq!(
            r.category_names(),
            vec![
                "queue control",
                "storage download",
                "storage upload",
                INTER_STAGE_MATERIALIZATION,
                WASTED_DUPLICATE_WORK,
            ]
        );
        assert_eq!(r.categories[0].seconds, 1.5); // dequeue + ack
        assert_eq!(r.categories[1].seconds, 2.0);
        assert_eq!(r.categories[2].seconds, 1.0);
        let total = r.compute_s + r.overhead_s() + r.idle_s;
        assert!((total - 2.0 * 10.0).abs() < 1e-9);
        // Eq. 1: with T1 = compute, E = 5 / 20.
        assert!((r.efficiency(5.0) - 0.25).abs() < 1e-12);
        let rendered = r.render();
        assert!(rendered.contains("queue control"));
        assert!(rendered.contains("idle"));
    }

    #[test]
    fn zero_categories_are_kept_for_structural_parity() {
        let meta = RunMeta {
            platform: "hadoop".into(),
            cores: 1,
            tasks: 1,
            makespan_seconds: 1.0,
        };
        let spans = vec![
            Span::job(1.0),
            Span::new(0, 0, 0, Phase::Dispatch, 0.0, 0.1),
            Span::new(0, 0, 0, Phase::ReadLocal, 0.1, 0.2),
            Span::new(0, 0, 0, Phase::Map, 0.2, 0.8),
            Span::new(0, 0, 0, Phase::Commit, 0.8, 0.9),
            Span::new(0, 0, 0, Phase::Attempt, 0.0, 0.9),
        ];
        let r = OverheadReport::from_trace(&Trace::new(meta, spans, Vec::new()));
        // No remote read happened, but the category is still present.
        assert!(r.category_names().contains(&"remote read"));
        let remote = r
            .categories
            .iter()
            .find(|c| c.name == "remote read")
            .unwrap();
        assert_eq!(remote.seconds, 0.0);
        // Same for the wasted-duplicate bucket: no hedge ran, zero kept.
        let wasted = r
            .categories
            .iter()
            .find(|c| c.name == WASTED_DUPLICATE_WORK)
            .unwrap();
        assert_eq!(wasted.seconds, 0.0);
    }

    #[test]
    fn materialize_spans_bill_to_the_inter_stage_bucket() {
        use crate::span::{JOB_TASK, NO_WORKER};
        let meta = RunMeta {
            platform: "classic-workflow".into(),
            cores: 2,
            tasks: 2,
            makespan_seconds: 12.0,
        };
        let spans = vec![
            Span::job(12.0),
            Span::new(JOB_TASK, 0, NO_WORKER, Phase::StageStart, 0.0, 0.0),
            Span::new(0, 0, 0, Phase::Dequeue, 0.0, 1.0),
            Span::new(0, 0, 0, Phase::Execute, 1.0, 4.0),
            Span::new(0, 0, 0, Phase::Ack, 4.0, 4.5),
            Span::new(0, 0, 0, Phase::Attempt, 0.0, 4.5),
            Span::new(JOB_TASK, 0, NO_WORKER, Phase::StageDone, 4.5, 4.5),
            // The stage boundary: outputs round-trip through storage.
            Span::new(JOB_TASK, 1, NO_WORKER, Phase::Materialize, 4.5, 6.5),
            Span::new(JOB_TASK, 1, NO_WORKER, Phase::StageStart, 6.5, 6.5),
            Span::new(1, 0, 1, Phase::Dequeue, 6.5, 7.0),
            Span::new(1, 0, 1, Phase::Execute, 7.0, 11.0),
            Span::new(1, 0, 1, Phase::Ack, 11.0, 11.5),
            Span::new(1, 0, 1, Phase::Attempt, 6.5, 11.5),
            Span::new(JOB_TASK, 1, NO_WORKER, Phase::StageDone, 11.5, 11.5),
        ];
        let r = OverheadReport::from_trace(&Trace::new(meta, spans, Vec::new()));
        let mat = r
            .categories
            .iter()
            .find(|c| c.name == INTER_STAGE_MATERIALIZATION)
            .unwrap();
        assert!((mat.seconds - 2.0).abs() < 1e-9);
        assert!((r.compute_s - 7.0).abs() < 1e-9);
        // Stage markers are zero-width and billed nowhere; the Eq. 1
        // identity still closes.
        let total = r.compute_s + r.overhead_s() + r.idle_s;
        assert!((total - 2.0 * 12.0).abs() < 1e-9);
    }

    #[test]
    fn losing_attempts_bill_to_wasted_duplicate_work() {
        let meta = RunMeta {
            platform: "classic-sim-hedged".into(),
            cores: 2,
            tasks: 1,
            makespan_seconds: 10.0,
        };
        let spans = vec![
            Span::job(10.0),
            // Attempt 0 straggles: dequeued, downloaded, still executing
            // when attempt 1 acks. It never reaches a terminal span.
            Span::new(0, 0, 0, Phase::Dequeue, 0.0, 1.0),
            Span::new(0, 0, 0, Phase::Download, 1.0, 2.0),
            Span::new(0, 0, 0, Phase::Execute, 2.0, 9.0),
            Span::new(0, 0, 0, Phase::Attempt, 0.0, 9.0),
            // Attempt 1 is the hedge — it wins.
            Span::new(0, 1, 1, Phase::Dequeue, 4.0, 4.5),
            Span::new(0, 1, 1, Phase::Download, 4.5, 5.0),
            Span::new(0, 1, 1, Phase::Execute, 5.0, 8.0),
            Span::new(0, 1, 1, Phase::Upload, 8.0, 8.5),
            Span::new(0, 1, 1, Phase::Ack, 8.5, 9.0),
            Span::new(0, 1, 1, Phase::Attempt, 4.0, 9.0),
        ];
        let r = OverheadReport::from_trace(&Trace::new(meta, spans, Vec::new()));
        let wasted = r
            .categories
            .iter()
            .find(|c| c.name == WASTED_DUPLICATE_WORK)
            .unwrap();
        // All of attempt 0's non-structural time: 1 + 1 + 7.
        assert!((wasted.seconds - 9.0).abs() < 1e-9);
        // The loser's execute time is wasted, not compute.
        assert!((r.compute_s - 3.0).abs() < 1e-9);
        // The identity still holds: compute + overheads + idle = cores x horizon.
        let total = r.compute_s + r.overhead_s() + r.idle_s;
        assert!((total - 2.0 * 10.0).abs() < 1e-9);
    }
}
