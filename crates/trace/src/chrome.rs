//! Chrome-trace (`chrome://tracing` / Perfetto "trace event") JSON export.
//!
//! Timestamps are integer microseconds so the output is byte-stable across
//! platforms — the golden test pins the exact string for a small trace.
//! Workers map to Chrome threads (`pid` 0); client-side spans (enqueue, the
//! job root) live on `pid` 1; fleet events become global instant events.

use crate::span::{Phase, Span, TraceEvent, NO_WORKER};
use crate::store::Trace;
use ppc_core::json::Json;

fn micros(s: f64) -> Json {
    Json::Int((s * 1e6).round() as i128)
}

fn span_event(s: &Span) -> Json {
    let (pid, tid) = if s.worker == NO_WORKER {
        (1u64, 0u64)
    } else {
        (0u64, s.worker as u64)
    };
    let cat = if s.phase.is_structural() {
        "structural"
    } else {
        "phase"
    };
    let mut args = vec![("attempt".to_string(), Json::from(s.attempt as u64))];
    if s.phase != Phase::Job {
        args.insert(0, ("task".to_string(), Json::from(s.task)));
    }
    Json::Obj(vec![
        ("name".to_string(), Json::from(s.phase.name())),
        ("cat".to_string(), Json::from(cat)),
        ("ph".to_string(), Json::from("X")),
        ("ts".to_string(), micros(s.start_s)),
        ("dur".to_string(), micros(s.duration_s())),
        ("pid".to_string(), Json::from(pid)),
        ("tid".to_string(), Json::from(tid)),
        ("args".to_string(), Json::Obj(args)),
    ])
}

fn instant_event(e: &TraceEvent) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::from(e.kind.name())),
        ("cat".to_string(), Json::from("fleet")),
        ("ph".to_string(), Json::from("i")),
        ("ts".to_string(), micros(e.at_s)),
        ("pid".to_string(), Json::from(0u64)),
        ("tid".to_string(), Json::from(e.worker as u64)),
        ("s".to_string(), Json::from("g")),
    ])
}

/// Serialise a trace to Chrome's trace-event JSON format. Load the result
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let meta = trace.meta();
    let mut events: Vec<Json> = trace.spans().iter().map(span_event).collect();
    events.extend(trace.events().iter().map(instant_event));
    let doc = Json::Obj(vec![
        ("displayTimeUnit".to_string(), Json::from("ms")),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("platform".to_string(), Json::from(meta.platform.clone())),
                ("cores".to_string(), Json::from(meta.cores)),
                ("tasks".to_string(), Json::from(meta.tasks)),
                (
                    "makespan_seconds".to_string(),
                    Json::from(meta.makespan_seconds),
                ),
            ]),
        ),
        ("traceEvents".to_string(), Json::Arr(events)),
    ]);
    doc.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{EventKind, RunMeta};

    fn tiny_trace() -> Trace {
        let meta = RunMeta {
            platform: "classic-sim-test".into(),
            cores: 1,
            tasks: 1,
            makespan_seconds: 2.5,
        };
        let spans = vec![
            Span::job(2.5),
            Span::new(0, 0, NO_WORKER, Phase::Enqueue, 0.0, 0.001),
            Span::new(0, 0, 3, Phase::Dequeue, 0.5, 0.625),
            Span::new(0, 0, 3, Phase::Execute, 0.625, 2.0),
            Span::new(0, 0, 3, Phase::Ack, 2.0, 2.25),
            Span::new(0, 0, 3, Phase::Attempt, 0.5, 2.25),
        ];
        let events = vec![TraceEvent {
            at_s: 1.5,
            worker: 7,
            kind: EventKind::Death,
        }];
        Trace::new(meta, spans, events)
    }

    /// Golden test: the Chrome-trace schema is pinned byte-for-byte. If this
    /// fails, downstream tooling that parses our trace files may break —
    /// change it deliberately.
    #[test]
    fn chrome_trace_json_schema_is_pinned() {
        let got = chrome_trace_json(&tiny_trace());
        let want = concat!(
            "{\"displayTimeUnit\":\"ms\",",
            "\"otherData\":{\"platform\":\"classic-sim-test\",\"cores\":1,\"tasks\":1,\"makespan_seconds\":2.5},",
            "\"traceEvents\":[",
            "{\"name\":\"job\",\"cat\":\"structural\",\"ph\":\"X\",\"ts\":0,\"dur\":2500000,\"pid\":1,\"tid\":0,\"args\":{\"attempt\":0}},",
            "{\"name\":\"enqueue\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":0,\"dur\":1000,\"pid\":1,\"tid\":0,\"args\":{\"task\":0,\"attempt\":0}},",
            "{\"name\":\"dequeue\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":500000,\"dur\":125000,\"pid\":0,\"tid\":3,\"args\":{\"task\":0,\"attempt\":0}},",
            "{\"name\":\"execute\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":625000,\"dur\":1375000,\"pid\":0,\"tid\":3,\"args\":{\"task\":0,\"attempt\":0}},",
            "{\"name\":\"ack\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":2000000,\"dur\":250000,\"pid\":0,\"tid\":3,\"args\":{\"task\":0,\"attempt\":0}},",
            "{\"name\":\"attempt\",\"cat\":\"structural\",\"ph\":\"X\",\"ts\":500000,\"dur\":1750000,\"pid\":0,\"tid\":3,\"args\":{\"task\":0,\"attempt\":0}},",
            "{\"name\":\"death\",\"cat\":\"fleet\",\"ph\":\"i\",\"ts\":1500000,\"pid\":0,\"tid\":7,\"s\":\"g\"}",
            "]}"
        );
        assert_eq!(got, want);
    }

    #[test]
    fn output_round_trips_through_the_json_parser() {
        let got = chrome_trace_json(&tiny_trace());
        let doc = Json::parse(&got).unwrap();
        let events = doc.field("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 7);
        assert_eq!(
            doc.field("otherData")
                .unwrap()
                .field("platform")
                .unwrap()
                .as_str()
                .unwrap(),
            "classic-sim-test"
        );
    }
}
