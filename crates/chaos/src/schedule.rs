//! The event-based fault schedule and its deterministic query API.

use ppc_core::rng::{Pcg32, SplitMix64};
use ppc_core::{PpcError, Result};
use std::time::Instant;

/// One scheduled infrastructure fault.
///
/// Workers are identified by a flat index; each engine maps its own
/// notion of a worker (fleet slot, node×slot, Dryad node) onto these
/// indices deterministically. Times are seconds since the start of the
/// run — wall clock for the native engines, virtual for the simulators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Kill worker `worker`'s process at time `at_s`. The engine's own
    /// fault-tolerance story (visibility timeout, attempt retry, vertex
    /// re-run, autoscaler replacement) must recover the in-flight work.
    KillAt { worker: u32, at_s: f64 },
    /// Kill worker `worker` in the middle of executing its `task_seq`-th
    /// task (0-based, counted per worker): the task's input was read and
    /// user code ran, but the worker dies during the output upload,
    /// leaving a torn (partial) object behind.
    KillMidExecute { worker: u32, task_seq: u32 },
    /// Gray failure: worker `worker` stays alive but runs slower by
    /// `factor` (≥ 1.0) over `[from_s, to_s)`.
    Degrade {
        worker: u32,
        factor: f64,
        from_s: f64,
        to_s: f64,
    },
    /// The storage service misbehaves over `[from_s, to_s)`.
    StorageOutage {
        fault: StorageFault,
        from_s: f64,
        to_s: f64,
    },
    /// Worker `worker`'s `task_seq`-th output upload is torn: only a
    /// prefix of the bytes lands, and the worker treats the upload as
    /// failed (the message is redelivered and the object overwritten).
    TornUpload { worker: u32, task_seq: u32 },
}

/// How the storage service fails during a [`FaultEvent::StorageOutage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Brownout: requests fail with a retryable transient error (clients
    /// with backoff ride it out).
    Brownout,
    /// Partition: the service is unreachable; requests fail transiently
    /// for the whole window, however often they are retried.
    Partition,
}

/// A deterministic, seedable schedule of infrastructure faults.
///
/// Two layers compose:
///
/// * **events** — the list above, queried by worker/time/sequence;
/// * **i.i.d. death probabilities** — the Classic Cloud pipeline-point
///   dice (`die_before_execute`, `die_mid_execute`, `die_before_delete`),
///   rolled as a pure hash of `(seed, roll kind, worker, task_seq)` so
///   the outcome does not depend on thread interleaving.
///
/// Every query is `&self` and pure; the schedule can be shared across
/// worker threads behind an `Arc` with no locking.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    events: Vec<FaultEvent>,
    /// i.i.d. probability a worker dies after receiving a message but
    /// before executing it.
    pub die_before_execute: f64,
    /// i.i.d. probability a worker dies mid-execution, tearing its
    /// output upload.
    pub die_mid_execute: f64,
    /// i.i.d. probability a worker dies after uploading its output but
    /// before deleting the queue message (duplicate-delivery exercise).
    pub die_before_delete: f64,
}

const ROLL_BEFORE_EXECUTE: u64 = 0x9e37_79b9_0000_0001;
const ROLL_MID_EXECUTE: u64 = 0x9e37_79b9_0000_0002;
const ROLL_BEFORE_DELETE: u64 = 0x9e37_79b9_0000_0003;

impl FaultSchedule {
    /// An empty schedule: nothing ever fails.
    pub fn none() -> FaultSchedule {
        FaultSchedule {
            seed: 0,
            events: Vec::new(),
            die_before_execute: 0.0,
            die_mid_execute: 0.0,
            die_before_delete: 0.0,
        }
    }

    /// An empty schedule with a seed, ready for builder calls.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            ..FaultSchedule::none()
        }
    }

    /// The canonical hostile schedule the conformance suite runs on every
    /// engine: two timed kills, a mid-execution kill with a torn upload,
    /// one gray-degraded worker, one storage brownout window, plus mild
    /// i.i.d. death dice at every pipeline point.
    pub fn hostile(seed: u64) -> FaultSchedule {
        FaultSchedule::new(seed)
            .kill_at(0, 0.004)
            .kill_at(3, 0.012)
            .kill_mid_execute(1, 1)
            .torn_upload(2, 2)
            .degrade(2, 2.5, 0.0, 0.050)
            .brownout(0.002, 0.020)
            .with_death_probabilities(0.04, 0.04, 0.04)
    }

    // ---- builder -----------------------------------------------------

    pub fn kill_at(mut self, worker: u32, at_s: f64) -> FaultSchedule {
        self.events.push(FaultEvent::KillAt { worker, at_s });
        self
    }

    pub fn kill_mid_execute(mut self, worker: u32, task_seq: u32) -> FaultSchedule {
        self.events
            .push(FaultEvent::KillMidExecute { worker, task_seq });
        self
    }

    pub fn degrade(mut self, worker: u32, factor: f64, from_s: f64, to_s: f64) -> FaultSchedule {
        self.events.push(FaultEvent::Degrade {
            worker,
            factor,
            from_s,
            to_s,
        });
        self
    }

    pub fn brownout(mut self, from_s: f64, to_s: f64) -> FaultSchedule {
        self.events.push(FaultEvent::StorageOutage {
            fault: StorageFault::Brownout,
            from_s,
            to_s,
        });
        self
    }

    pub fn partition(mut self, from_s: f64, to_s: f64) -> FaultSchedule {
        self.events.push(FaultEvent::StorageOutage {
            fault: StorageFault::Partition,
            from_s,
            to_s,
        });
        self
    }

    pub fn torn_upload(mut self, worker: u32, task_seq: u32) -> FaultSchedule {
        self.events
            .push(FaultEvent::TornUpload { worker, task_seq });
        self
    }

    pub fn with_death_probabilities(
        mut self,
        before_execute: f64,
        mid_execute: f64,
        before_delete: f64,
    ) -> FaultSchedule {
        self.die_before_execute = before_execute;
        self.die_mid_execute = mid_execute;
        self.die_before_delete = before_delete;
        self
    }

    // ---- introspection ----------------------------------------------

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the schedule injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
            && self.die_before_execute == 0.0
            && self.die_mid_execute == 0.0
            && self.die_before_delete == 0.0
    }

    /// Reject malformed schedules: probabilities outside `[0, 1]`,
    /// slowdown factors below 1, inverted or non-finite windows.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("die_before_execute", self.die_before_execute),
            ("die_mid_execute", self.die_mid_execute),
            ("die_before_delete", self.die_before_delete),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(PpcError::InvalidArgument(format!(
                    "fault schedule: {name} = {p} is not a probability in [0, 1]"
                )));
            }
        }
        for ev in &self.events {
            match *ev {
                FaultEvent::KillAt { at_s, .. } => {
                    if !at_s.is_finite() || at_s < 0.0 {
                        return Err(PpcError::InvalidArgument(format!(
                            "fault schedule: kill time {at_s} must be finite and >= 0"
                        )));
                    }
                }
                FaultEvent::Degrade {
                    factor,
                    from_s,
                    to_s,
                    ..
                } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(PpcError::InvalidArgument(format!(
                            "fault schedule: slowdown factor {factor} must be >= 1"
                        )));
                    }
                    if !(from_s.is_finite() && to_s.is_finite()) || from_s > to_s || from_s < 0.0 {
                        return Err(PpcError::InvalidArgument(format!(
                            "fault schedule: degrade window [{from_s}, {to_s}) is invalid"
                        )));
                    }
                }
                FaultEvent::StorageOutage { from_s, to_s, .. } => {
                    if !(from_s.is_finite() && to_s.is_finite()) || from_s > to_s || from_s < 0.0 {
                        return Err(PpcError::InvalidArgument(format!(
                            "fault schedule: storage outage window [{from_s}, {to_s}) is invalid"
                        )));
                    }
                }
                FaultEvent::KillMidExecute { .. } | FaultEvent::TornUpload { .. } => {}
            }
        }
        Ok(())
    }

    // ---- queries -----------------------------------------------------

    /// Any timed kill for `worker` in the half-open interval
    /// `(from_s, to_s]`? Engines track the last time they checked, so
    /// each kill event fires exactly once.
    pub fn kills_in(&self, worker: u32, from_s: f64, to_s: f64) -> bool {
        self.events.iter().any(|ev| {
            matches!(ev, FaultEvent::KillAt { worker: w, at_s }
                if *w == worker && *at_s > from_s && *at_s <= to_s)
        })
    }

    /// Should `worker` die after receiving its `task_seq`-th task but
    /// before executing it?
    pub fn die_before_execute(&self, worker: u32, task_seq: u32) -> bool {
        self.roll(
            ROLL_BEFORE_EXECUTE,
            worker,
            task_seq,
            self.die_before_execute,
        )
    }

    /// Should `worker` die mid-execution of its `task_seq`-th task
    /// (tearing the output upload)? Scheduled events and the i.i.d.
    /// probability both apply.
    pub fn die_mid_execute(&self, worker: u32, task_seq: u32) -> bool {
        let scheduled = self.events.iter().any(|ev| {
            matches!(ev, FaultEvent::KillMidExecute { worker: w, task_seq: s }
                if *w == worker && *s == task_seq)
        });
        scheduled || self.roll(ROLL_MID_EXECUTE, worker, task_seq, self.die_mid_execute)
    }

    /// Should `worker` die after uploading its `task_seq`-th output but
    /// before deleting the queue message?
    pub fn die_before_delete(&self, worker: u32, task_seq: u32) -> bool {
        self.roll(ROLL_BEFORE_DELETE, worker, task_seq, self.die_before_delete)
    }

    /// Is `worker`'s `task_seq`-th upload scheduled to be torn (without
    /// the worker itself dying)?
    pub fn is_torn_upload(&self, worker: u32, task_seq: u32) -> bool {
        self.events.iter().any(|ev| {
            matches!(ev, FaultEvent::TornUpload { worker: w, task_seq: s }
                if *w == worker && *s == task_seq)
        })
    }

    /// The gray-failure slowdown factor for `worker` at `now_s` — 1.0
    /// when healthy; overlapping degradations multiply.
    pub fn slowdown(&self, worker: u32, now_s: f64) -> f64 {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::Degrade {
                    worker: w,
                    factor,
                    from_s,
                    to_s,
                } if w == worker && now_s >= from_s && now_s < to_s => Some(factor),
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// The storage fault in effect at `now_s`, if any. A partition wins
    /// over a simultaneous brownout.
    pub fn storage_fault(&self, now_s: f64) -> Option<StorageFault> {
        let mut found = None;
        for ev in &self.events {
            if let FaultEvent::StorageOutage {
                fault,
                from_s,
                to_s,
            } = *ev
            {
                if now_s >= from_s && now_s < to_s {
                    if fault == StorageFault::Partition {
                        return Some(StorageFault::Partition);
                    }
                    found = Some(fault);
                }
            }
        }
        found
    }

    /// When does the storage outage in effect at `now_s` end? `None` when
    /// storage is healthy. Simulators use this to stall a modeled fetch
    /// (its retries ride out the window) until the outage closes.
    pub fn storage_outage_until(&self, now_s: f64) -> Option<f64> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::StorageOutage { from_s, to_s, .. }
                    if now_s >= from_s && now_s < to_s =>
                {
                    Some(to_s)
                }
                _ => None,
            })
            .fold(None, |acc, t| Some(acc.map_or(t, |m: f64| m.max(t))))
    }

    /// Deterministic i.i.d. roll: a pure hash of
    /// `(seed, kind, worker, task_seq)` — independent of call order and
    /// thread interleaving. `kind` is spread by a large odd multiplier
    /// before mixing: added directly, the consecutive kind constants would
    /// alias with consecutive `task_seq` values (`kind + 1` at `seq` equals
    /// `kind` at `seq + 1`), making one bad roll cascade across the
    /// adjacent kinds' rolls on the next few attempts instead of staying
    /// independent.
    fn roll(&self, kind: u64, worker: u32, task_seq: u32, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let key = self
            .seed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(kind.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(((worker as u64) << 32) | task_seq as u64);
        Pcg32::new(SplitMix64::new(key).next_u64()).chance(p)
    }
}

/// Wall-clock seconds since a fixed start — the native engines' view of
/// schedule time. (Simulators pass their virtual clock instead.)
#[derive(Debug, Clone, Copy)]
pub struct RunClock {
    start: Instant,
}

impl RunClock {
    pub fn start() -> RunClock {
        RunClock {
            start: Instant::now(),
        }
    }

    pub fn now_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Default for RunClock {
    fn default() -> Self {
        RunClock::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn death_dice_are_independent_across_kinds_and_seqs() {
        // Regression: the roll key once mixed `kind` additively, so the
        // consecutive kind constants aliased with consecutive task_seq
        // values — `die_before_execute(w, s + 1)` always agreed with
        // `die_mid_execute(w, s)`, and one bad roll cascaded into a
        // multi-attempt death run that exhausted retry budgets.
        let s = FaultSchedule::new(4242).with_death_probabilities(0.5, 0.5, 0.5);
        let n = 256;
        let mut agree_be_mid = 0;
        let mut agree_mid_del = 0;
        for seq in 0..n {
            if s.die_before_execute(7, seq + 1) == s.die_mid_execute(7, seq) {
                agree_be_mid += 1;
            }
            if s.die_mid_execute(7, seq + 1) == s.die_before_delete(7, seq) {
                agree_mid_del += 1;
            }
        }
        // Independent fair coins agree ~half the time; the aliasing bug
        // made them agree always.
        for agreements in [agree_be_mid, agree_mid_del] {
            assert!(
                (64..192).contains(&agreements),
                "rolls correlated: {agreements}/{n} agreements"
            );
        }
    }

    #[test]
    fn quiet_schedule_injects_nothing() {
        let s = FaultSchedule::none();
        assert!(s.is_quiet());
        assert!(s.validate().is_ok());
        assert!(!s.kills_in(0, 0.0, 1e9));
        assert!(!s.die_before_execute(0, 0));
        assert!(!s.die_mid_execute(0, 0));
        assert!(!s.die_before_delete(0, 0));
        assert_eq!(s.slowdown(0, 1.0), 1.0);
        assert_eq!(s.storage_fault(1.0), None);
    }

    #[test]
    fn kill_events_fire_once_per_interval() {
        let s = FaultSchedule::new(1).kill_at(2, 5.0);
        assert!(!s.kills_in(2, 0.0, 4.9));
        assert!(s.kills_in(2, 4.9, 5.0), "interval is (from, to]");
        assert!(!s.kills_in(2, 5.0, 10.0), "already fired");
        assert!(!s.kills_in(1, 0.0, 10.0), "other worker unaffected");
    }

    #[test]
    fn mid_execute_and_torn_upload_match_exact_sequence() {
        let s = FaultSchedule::new(1)
            .kill_mid_execute(0, 3)
            .torn_upload(1, 2);
        assert!(s.die_mid_execute(0, 3));
        assert!(!s.die_mid_execute(0, 2));
        assert!(!s.die_mid_execute(1, 3));
        assert!(s.is_torn_upload(1, 2));
        assert!(!s.is_torn_upload(1, 1));
    }

    #[test]
    fn slowdown_applies_within_window_and_compounds() {
        let s = FaultSchedule::new(1)
            .degrade(4, 2.0, 1.0, 3.0)
            .degrade(4, 1.5, 2.0, 4.0);
        assert_eq!(s.slowdown(4, 0.5), 1.0);
        assert_eq!(s.slowdown(4, 1.5), 2.0);
        assert_eq!(s.slowdown(4, 2.5), 3.0, "overlap multiplies");
        assert_eq!(s.slowdown(4, 3.5), 1.5);
        assert_eq!(s.slowdown(4, 4.0), 1.0, "window is half-open");
        assert_eq!(s.slowdown(0, 2.5), 1.0, "other workers healthy");
    }

    #[test]
    fn storage_partition_wins_over_brownout() {
        let s = FaultSchedule::new(1)
            .brownout(0.0, 10.0)
            .partition(5.0, 6.0);
        assert_eq!(s.storage_fault(1.0), Some(StorageFault::Brownout));
        assert_eq!(s.storage_fault(5.5), Some(StorageFault::Partition));
        assert_eq!(s.storage_fault(20.0), None);
    }

    #[test]
    fn iid_rolls_are_deterministic_and_seed_sensitive() {
        let a = FaultSchedule::new(7).with_death_probabilities(0.5, 0.5, 0.5);
        let b = FaultSchedule::new(7).with_death_probabilities(0.5, 0.5, 0.5);
        let c = FaultSchedule::new(8).with_death_probabilities(0.5, 0.5, 0.5);
        let roll = |s: &FaultSchedule| (0..64).map(|i| s.die_mid_execute(3, i)).collect::<Vec<_>>();
        assert_eq!(roll(&a), roll(&b), "same seed, same outcome");
        assert_ne!(roll(&a), roll(&c), "different seed, different dice");
        // The three pipeline points roll independently.
        let hits = |f: &dyn Fn(u32) -> bool| (0..256).filter(|&i| f(i)).count();
        let before = hits(&|i| a.die_before_execute(0, i));
        let mid = hits(&|i| a.die_mid_execute(0, i));
        assert!(before > 64 && before < 192, "p=0.5 roughly half: {before}");
        assert!(mid > 64 && mid < 192, "p=0.5 roughly half: {mid}");
    }

    #[test]
    fn validate_rejects_out_of_range() {
        assert!(FaultSchedule::new(1)
            .with_death_probabilities(1.2, 0.0, 0.0)
            .validate()
            .is_err());
        assert!(FaultSchedule::new(1)
            .with_death_probabilities(0.0, -0.1, 0.0)
            .validate()
            .is_err());
        assert!(FaultSchedule::new(1).kill_at(0, -1.0).validate().is_err());
        assert!(FaultSchedule::new(1)
            .degrade(0, 0.5, 0.0, 1.0)
            .validate()
            .is_err());
        assert!(FaultSchedule::new(1).brownout(5.0, 1.0).validate().is_err());
        assert!(FaultSchedule::hostile(3).validate().is_ok());
    }
}
