//! # ppc-chaos — deterministic fault scheduling for every engine
//!
//! The paper's fault-tolerance claim is that all three paradigms converge
//! to the correct output under worker loss: Classic Cloud via queue
//! visibility timeouts, Hadoop via attempt re-execution, Dryad via vertex
//! re-run. Exercising that claim well needs more than i.i.d. dice — real
//! outages are *events*: instance 3 dies at t=2s, node 1 runs at half
//! speed for a window (a gray failure), the blob store browns out for
//! 300 ms, an upload is torn halfway through.
//!
//! [`FaultSchedule`] is that event list, plus an i.i.d. layer for the
//! classic per-pipeline-point death probabilities. Every query is a pure
//! function of `(seed, worker, time/sequence)`, so the same schedule
//! drives the threaded native runtimes (wall-clock seconds since run
//! start) and the discrete-event simulators (virtual seconds) and gives
//! bit-identical decisions on both.

pub mod schedule;

pub use schedule::{FaultEvent, FaultSchedule, RunClock, StorageFault};
