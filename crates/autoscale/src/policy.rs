//! Scaling policies: how many workers *should* the fleet have right now?
//!
//! Two families, mirroring what EC2 Auto Scaling offered:
//!
//! * **Target tracking** on backlog-per-worker — keep
//!   `outstanding_tasks / fleet_size` near a setpoint. The cloud-native
//!   choice for queue-driven task farming: the queue length *is* the
//!   demand signal.
//! * **Step scaling** on the age of the oldest waiting message — a latency
//!   SLO expressed directly: "if work has been waiting two minutes, add
//!   two workers; five minutes, add eight".
//!
//! Policies are pure: `desired(telemetry, current)` has no clock and no
//! side effects. Cooldowns, warm-up, billing windows, and min/max bounds
//! belong to the [`crate::Controller`] that evaluates the policy.

/// Queue-side demand signal, one atomic snapshot per evaluation tick
/// (see `ppc_queue::QueueMetricsSnapshot`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Telemetry {
    /// Messages waiting in the queue (visible, not leased).
    pub queued: usize,
    /// Messages leased to workers and not yet deleted.
    pub in_flight: usize,
    /// Age in seconds of the oldest *waiting* message; `None` when the
    /// queue is empty.
    pub oldest_age_s: Option<f64>,
}

impl Telemetry {
    /// Total outstanding work: waiting plus running.
    pub fn outstanding(&self) -> usize {
        self.queued + self.in_flight
    }
}

/// One step of a step-scaling policy: when the oldest waiting message is
/// at least `min_age_s` old, add `add` workers. The largest matching step
/// wins (steps are not cumulative), as in EC2 step scaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRule {
    pub min_age_s: f64,
    pub add: u32,
}

/// A scaling policy.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Track a target backlog per worker: desired fleet is
    /// `ceil(outstanding / per_worker)`.
    TargetBacklog { per_worker: f64 },
    /// Step scaling on oldest-message age: grow by the largest matching
    /// [`StepRule`]; shrink toward the in-flight count once the queue is
    /// empty (nothing is waiting, so idle workers can go).
    StepOnAge { rules: Vec<StepRule> },
}

impl Policy {
    /// The fleet size this policy wants, before the controller clamps it
    /// to `[min_workers, max_workers]` and applies cooldowns.
    pub fn desired(&self, t: &Telemetry, current: u32) -> u32 {
        match self {
            Policy::TargetBacklog { per_worker } => {
                assert!(*per_worker > 0.0, "per_worker target must be positive");
                (t.outstanding() as f64 / per_worker).ceil() as u32
            }
            Policy::StepOnAge { rules } => {
                if t.outstanding() == 0 {
                    return 0;
                }
                let age = t.oldest_age_s.unwrap_or(0.0);
                let add = rules
                    .iter()
                    .filter(|r| age >= r.min_age_s)
                    .map(|r| r.add)
                    .max()
                    .unwrap_or(0);
                if add > 0 {
                    current.saturating_add(add)
                } else if t.queued == 0 {
                    // Nothing waiting: idle capacity beyond the running
                    // tasks is pure cost.
                    t.in_flight as u32
                } else {
                    current
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telem(queued: usize, in_flight: usize, age: Option<f64>) -> Telemetry {
        Telemetry {
            queued,
            in_flight,
            oldest_age_s: age,
        }
    }

    #[test]
    fn target_backlog_tracks_outstanding() {
        let p = Policy::TargetBacklog { per_worker: 4.0 };
        assert_eq!(p.desired(&telem(0, 0, None), 5), 0);
        assert_eq!(p.desired(&telem(3, 0, Some(1.0)), 5), 1);
        assert_eq!(p.desired(&telem(4, 0, Some(1.0)), 5), 1);
        assert_eq!(p.desired(&telem(5, 0, Some(1.0)), 5), 2);
        assert_eq!(p.desired(&telem(30, 10, Some(1.0)), 5), 10);
    }

    #[test]
    fn step_on_age_largest_step_wins() {
        let p = Policy::StepOnAge {
            rules: vec![
                StepRule {
                    min_age_s: 60.0,
                    add: 2,
                },
                StepRule {
                    min_age_s: 300.0,
                    add: 8,
                },
            ],
        };
        // Fresh queue: hold.
        assert_eq!(p.desired(&telem(10, 2, Some(5.0)), 4), 4);
        // Past the first step.
        assert_eq!(p.desired(&telem(10, 2, Some(90.0)), 4), 6);
        // Past both steps: the larger one, not the sum.
        assert_eq!(p.desired(&telem(10, 2, Some(400.0)), 4), 12);
    }

    #[test]
    fn step_on_age_shrinks_when_queue_drains() {
        let p = Policy::StepOnAge {
            rules: vec![StepRule {
                min_age_s: 60.0,
                add: 2,
            }],
        };
        // Queue empty, 3 tasks still running: keep 3.
        assert_eq!(p.desired(&telem(0, 3, None), 8), 3);
        // Everything done: want zero (controller clamps to min).
        assert_eq!(p.desired(&telem(0, 0, None), 8), 0);
    }

    #[test]
    fn outstanding_sums_both_sides() {
        assert_eq!(telem(7, 5, None).outstanding(), 12);
    }
}
