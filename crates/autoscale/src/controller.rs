//! The autoscaling controller: a pure, deterministic state machine.
//!
//! Every `interval_s` seconds the driving runtime (native threads or the
//! discrete-event simulator) takes one queue-metrics snapshot and calls
//! [`Controller::decide`]. The controller answers with a [`Decision`]:
//! launch N instances, start draining specific instances, or do nothing.
//! The runtime owns the mechanics (spawning threads / scheduling events)
//! and reports back via [`Controller::confirm_retired`] once a draining
//! worker has finished its in-hand task and exited.
//!
//! Because the controller is pure in `(time, telemetry)`, the native and
//! simulated engines driven with the same snapshots produce bit-identical
//! decision sequences — the property the cross-engine tests pin down.
//!
//! ## Scale-in is *draining*, never preemption
//!
//! A victim worker keeps its current lease: it is told to stop receiving
//! new messages and retire after completing (and deleting) the message it
//! holds. A leased message is therefore never orphaned by scale-in; the
//! visibility-timeout machinery stays the fault-tolerance path for real
//! failures only.
//!
//! ## Billing-aware scale-in
//!
//! With hourly billing, an instance's cost is `ceil(uptime / hour)` — so
//! the cheapest moment to retire is just *before* the next whole-hour
//! boundary. With `billing_aware` on, a worker is only eligible as a
//! drain victim inside the final `billing_window_s` of its current billed
//! hour; otherwise the controller holds it (it is paid for anyway, and
//! may still absorb a burst).

use crate::policy::{Policy, Telemetry};

/// Tuning for the [`Controller`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    pub policy: Policy,
    /// Fleet never shrinks below this (>= 1 keeps the job live).
    pub min_workers: u32,
    /// Fleet never grows above this (the account's instance quota).
    pub max_workers: u32,
    /// Seconds between controller evaluations.
    pub interval_s: f64,
    /// Minimum seconds between consecutive scale-*up* actions.
    pub scale_up_cooldown_s: f64,
    /// Minimum seconds between consecutive scale-*down* actions.
    pub scale_down_cooldown_s: f64,
    /// Seconds a fresh instance needs before it starts taking work
    /// (boot + application download + staging, §4 of the paper). Warming
    /// instances count toward capacity so the controller does not
    /// over-launch while instances boot.
    pub warmup_s: f64,
    /// Retire instances only near their hourly billing boundary.
    pub billing_aware: bool,
    /// Width of the end-of-hour eligibility window, seconds.
    pub billing_window_s: f64,
    /// Billed-hour length in seconds: 3600 on EC2/Azure of the paper's
    /// era; tests compress it so "hours" pass in milliseconds.
    pub billing_hour_s: f64,
}

impl AutoscaleConfig {
    /// Target-tracking defaults: 4 outstanding tasks per worker, hourly
    /// billing awareness on.
    pub fn target_tracking(min_workers: u32, max_workers: u32, per_worker: f64) -> AutoscaleConfig {
        AutoscaleConfig {
            policy: Policy::TargetBacklog { per_worker },
            min_workers,
            max_workers,
            interval_s: 15.0,
            scale_up_cooldown_s: 60.0,
            scale_down_cooldown_s: 120.0,
            warmup_s: 90.0,
            billing_aware: true,
            billing_window_s: 300.0,
            billing_hour_s: 3600.0,
        }
    }
}

/// Lifecycle of one autoscaled instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Launched, still booting; not yet taking work.
    Warming,
    /// Serving the task queue.
    Active,
    /// Told to retire; finishing its in-hand task, taking nothing new.
    Draining,
    /// Gone; `retired_at` is final and billing stops accruing.
    Retired,
}

/// One instance the controller has launched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    pub id: u32,
    pub launched_at: f64,
    /// Set once the runtime confirms the worker exited.
    pub retired_at: Option<f64>,
    pub state: SlotState,
}

impl Slot {
    /// Seconds into the current billed hour at `now`.
    fn hour_phase(&self, now: f64, hour_s: f64) -> f64 {
        (now - self.launched_at).max(0.0) % hour_s
    }
}

/// What the runtime must do after one evaluation tick.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Steady state: no action.
    Hold,
    /// Provision instances with these fresh slot ids.
    Launch { ids: Vec<u32> },
    /// Tell these workers to finish their current task and exit.
    Drain { ids: Vec<u32> },
}

impl Decision {
    pub fn is_hold(&self) -> bool {
        matches!(self, Decision::Hold)
    }
}

/// One entry in the fleet's audit log — the raw material for the
/// fleet-size timeline in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEvent {
    pub at_s: f64,
    pub kind: FleetEventKind,
    pub slot: u32,
    /// Billed fleet size (launched, not yet retired) after this event.
    pub fleet_after: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEventKind {
    Launch,
    Drain,
    Retire,
    /// The instance died (detected by the runtime, e.g. via a chaos
    /// schedule or a missed heartbeat) rather than retiring cleanly.
    Died,
}

/// The autoscaling state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: AutoscaleConfig,
    slots: Vec<Slot>,
    next_id: u32,
    last_scale_up: Option<f64>,
    last_scale_down: Option<f64>,
    events: Vec<FleetEvent>,
}

impl Controller {
    /// A controller whose initial fleet of `cfg.min_workers` instances was
    /// launched (already warm) at time zero.
    pub fn new(cfg: AutoscaleConfig) -> Controller {
        assert!(cfg.min_workers >= 1, "min_workers must be at least 1");
        assert!(
            cfg.max_workers >= cfg.min_workers,
            "max_workers < min_workers"
        );
        assert!(cfg.billing_hour_s > 0.0, "billing_hour_s must be positive");
        let mut c = Controller {
            cfg,
            slots: Vec::new(),
            next_id: 0,
            last_scale_up: None,
            last_scale_down: None,
            events: Vec::new(),
        };
        for _ in 0..c.cfg.min_workers {
            let id = c.alloc_slot(0.0, SlotState::Active);
            c.push_event(0.0, FleetEventKind::Launch, id);
        }
        c
    }

    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// All slots ever launched (including retired ones), for billing.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// The fleet audit log.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// Instances currently billed: launched and not yet retired.
    pub fn billed_fleet(&self) -> u32 {
        self.slots
            .iter()
            .filter(|s| s.state != SlotState::Retired)
            .count() as u32
    }

    /// Instances that count toward serving capacity (warming + active;
    /// draining workers are on their way out).
    pub fn capacity(&self) -> u32 {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Warming | SlotState::Active))
            .count() as u32
    }

    /// One evaluation tick. `now` is seconds since job start and must be
    /// non-decreasing across calls.
    pub fn decide(&mut self, now: f64, telemetry: &Telemetry) -> Decision {
        // Promote instances that have finished warming.
        for s in &mut self.slots {
            if s.state == SlotState::Warming && now - s.launched_at >= self.cfg.warmup_s {
                s.state = SlotState::Active;
            }
        }

        let capacity = self.capacity();
        let desired = self
            .cfg
            .policy
            .desired(telemetry, capacity)
            .clamp(self.cfg.min_workers, self.cfg.max_workers);

        if desired > capacity {
            if !self.cooldown_over(self.last_scale_up, now, self.cfg.scale_up_cooldown_s) {
                return Decision::Hold;
            }
            let state = if self.cfg.warmup_s > 0.0 {
                SlotState::Warming
            } else {
                SlotState::Active
            };
            let ids: Vec<u32> = (0..desired - capacity)
                .map(|_| {
                    let id = self.alloc_slot(now, state);
                    self.push_event(now, FleetEventKind::Launch, id);
                    id
                })
                .collect();
            self.last_scale_up = Some(now);
            return Decision::Launch { ids };
        }

        if desired < capacity {
            if !self.cooldown_over(self.last_scale_down, now, self.cfg.scale_down_cooldown_s) {
                return Decision::Hold;
            }
            let ids = self.pick_victims(now, capacity - desired);
            if ids.is_empty() {
                // Billing-aware hold: nobody is near their hour boundary.
                return Decision::Hold;
            }
            for &id in &ids {
                self.slots[id as usize].state = SlotState::Draining;
                self.push_event(now, FleetEventKind::Drain, id);
            }
            self.last_scale_down = Some(now);
            return Decision::Drain { ids };
        }

        Decision::Hold
    }

    /// The runtime confirms a draining worker has finished its in-hand
    /// task and exited; billing for the slot stops here.
    pub fn confirm_retired(&mut self, id: u32, now: f64) {
        let slot = &mut self.slots[id as usize];
        assert!(
            slot.state == SlotState::Draining,
            "retiring slot {id} that was not draining (state {:?})",
            slot.state
        );
        slot.state = SlotState::Retired;
        slot.retired_at = Some(now);
        self.push_event(now, FleetEventKind::Retire, id);
    }

    /// The runtime reports that an instance *died* (chaos kill, hardware
    /// loss) rather than draining cleanly. The slot retires immediately —
    /// billing stops at the detection time — and any in-flight lease is
    /// left to the visibility-timeout machinery. Returns `false` if the
    /// slot was already retired (a duplicate detection is harmless).
    ///
    /// Unlike scale-down, a death frees the scale-*up* cooldown: replacing
    /// lost capacity is failure recovery, not load-driven oscillation, so
    /// the next [`Controller::decide`] may launch a replacement at once.
    pub fn mark_dead(&mut self, id: u32, now: f64) -> bool {
        let slot = &mut self.slots[id as usize];
        if slot.state == SlotState::Retired {
            return false;
        }
        slot.state = SlotState::Retired;
        slot.retired_at = Some(now);
        self.push_event(now, FleetEventKind::Died, id);
        self.last_scale_up = None;
        true
    }

    /// Scale-in victims, newest launch first (the slot that has used the
    /// least of its current billed hour usually has the most to waste by
    /// staying — but eligibility is what the billing window decides).
    fn pick_victims(&self, now: f64, want: u32) -> Vec<u32> {
        let mut active: Vec<&Slot> = self
            .slots
            .iter()
            .filter(|s| s.state == SlotState::Active)
            .filter(|s| {
                if !self.cfg.billing_aware {
                    return true;
                }
                let phase = s.hour_phase(now, self.cfg.billing_hour_s);
                self.cfg.billing_hour_s - phase <= self.cfg.billing_window_s
            })
            .collect();
        active.sort_by(|a, b| {
            b.launched_at
                .partial_cmp(&a.launched_at)
                .unwrap()
                .then(b.id.cmp(&a.id))
        });
        active.iter().take(want as usize).map(|s| s.id).collect()
    }

    fn cooldown_over(&self, last: Option<f64>, now: f64, cooldown_s: f64) -> bool {
        match last {
            None => true,
            Some(t) => now - t >= cooldown_s,
        }
    }

    fn alloc_slot(&mut self, now: f64, state: SlotState) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        debug_assert_eq!(id as usize, self.slots.len());
        self.slots.push(Slot {
            id,
            launched_at: now,
            retired_at: None,
            state,
        });
        id
    }

    fn push_event(&mut self, at_s: f64, kind: FleetEventKind, slot: u32) {
        let fleet_after = self.billed_fleet();
        self.events.push(FleetEvent {
            at_s,
            kind,
            slot,
            fleet_after,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StepRule;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            policy: Policy::TargetBacklog { per_worker: 4.0 },
            min_workers: 2,
            max_workers: 8,
            interval_s: 10.0,
            scale_up_cooldown_s: 30.0,
            scale_down_cooldown_s: 60.0,
            warmup_s: 0.0,
            billing_aware: false,
            billing_window_s: 300.0,
            billing_hour_s: 3600.0,
        }
    }

    fn telem(queued: usize, in_flight: usize, age: Option<f64>) -> Telemetry {
        Telemetry {
            queued,
            in_flight,
            oldest_age_s: age,
        }
    }

    #[test]
    fn starts_at_min_fleet() {
        let c = Controller::new(cfg());
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.billed_fleet(), 2);
        assert_eq!(c.events().len(), 2);
    }

    #[test]
    fn scales_up_to_meet_backlog_and_respects_max() {
        let mut c = Controller::new(cfg());
        // 100 outstanding / 4 per worker = 25, clamped to max 8.
        let d = c.decide(0.0, &telem(100, 0, Some(5.0)));
        match d {
            Decision::Launch { ids } => assert_eq!(ids.len(), 6),
            other => panic!("expected launch, got {other:?}"),
        }
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn scale_up_cooldown_holds() {
        let mut c = Controller::new(cfg());
        assert!(!c.decide(0.0, &telem(12, 0, Some(1.0))).is_hold());
        // Backlog still high 10 s later, but cooldown is 30 s.
        assert!(c.decide(10.0, &telem(40, 0, Some(1.0))).is_hold());
        assert!(!c.decide(30.0, &telem(40, 0, Some(1.0))).is_hold());
    }

    #[test]
    fn scales_down_to_min_when_idle() {
        let mut c = Controller::new(cfg());
        c.decide(0.0, &telem(32, 0, Some(1.0))); // grow to 8
        let d = c.decide(100.0, &telem(0, 0, None));
        match d {
            Decision::Drain { ids } => assert_eq!(ids.len(), 6),
            other => panic!("expected drain, got {other:?}"),
        }
        // Draining workers no longer count toward capacity...
        assert_eq!(c.capacity(), 2);
        // ...but are billed until the runtime confirms retirement.
        assert_eq!(c.billed_fleet(), 8);
    }

    #[test]
    fn fleet_stays_within_bounds_under_random_load() {
        use ppc_core::rng::Pcg32;
        let mut rng = Pcg32::new(0xF1EE7);
        for seed in 0..30 {
            let mut c = Controller::new(cfg());
            let mut now = 0.0;
            for _ in 0..200 {
                now += 10.0;
                let queued = rng.next_below(200) as usize;
                let in_flight = rng.next_below(8) as usize;
                let age = if queued > 0 {
                    Some(rng.uniform(0.0, 600.0))
                } else {
                    None
                };
                if let Decision::Drain { ids } = c.decide(now, &telem(queued, in_flight, age)) {
                    // Runtime drains instantly in this model.
                    for id in ids {
                        c.confirm_retired(id, now);
                    }
                }
                let cap = c.capacity();
                assert!(
                    (2..=8).contains(&cap),
                    "seed {seed}: capacity {cap} out of [2, 8]"
                );
            }
        }
    }

    #[test]
    fn cooldowns_are_monotone() {
        // Consecutive scale actions in the same direction are separated by
        // at least the direction's cooldown.
        use ppc_core::rng::Pcg32;
        let mut rng = Pcg32::new(0xC00);
        let mut c = Controller::new(cfg());
        let mut ups = Vec::new();
        let mut downs = Vec::new();
        let mut now = 0.0;
        for _ in 0..500 {
            now += 5.0;
            let queued = rng.next_below(60) as usize;
            match c.decide(now, &telem(queued, 0, Some(1.0))) {
                Decision::Launch { .. } => ups.push(now),
                Decision::Drain { ids } => {
                    downs.push(now);
                    for id in ids {
                        c.confirm_retired(id, now);
                    }
                }
                Decision::Hold => {}
            }
        }
        for pair in ups.windows(2) {
            assert!(pair[1] - pair[0] >= 30.0, "up cooldown violated: {pair:?}");
        }
        for pair in downs.windows(2) {
            assert!(
                pair[1] - pair[0] >= 60.0,
                "down cooldown violated: {pair:?}"
            );
        }
        assert!(!ups.is_empty() && !downs.is_empty(), "exercise both paths");
    }

    #[test]
    fn billing_aware_waits_for_hour_boundary() {
        let mut c = Controller::new(AutoscaleConfig {
            billing_aware: true,
            billing_window_s: 300.0,
            ..cfg()
        });
        c.decide(0.0, &telem(32, 0, Some(1.0))); // grow to 8 at t=0
                                                 // Mid-hour: idle, but nobody is near their boundary -> hold.
        assert!(c.decide(1800.0, &telem(0, 0, None)).is_hold());
        assert_eq!(c.billed_fleet(), 8);
        // Inside the last 5 minutes of the billed hour: drain.
        match c.decide(3400.0, &telem(0, 0, None)) {
            Decision::Drain { ids } => assert_eq!(ids.len(), 6),
            other => panic!("expected drain, got {other:?}"),
        }
    }

    #[test]
    fn warming_instances_count_toward_capacity() {
        let mut c = Controller::new(AutoscaleConfig {
            warmup_s: 120.0,
            ..cfg()
        });
        c.decide(0.0, &telem(32, 0, Some(1.0))); // +6 warming
        assert_eq!(c.capacity(), 8);
        // Same backlog during warm-up: no double-launch.
        assert!(c.decide(40.0, &telem(32, 0, Some(40.0))).is_hold());
        // After warm-up the new slots are active.
        c.decide(120.0, &telem(32, 0, Some(1.0)));
        assert!(c
            .slots()
            .iter()
            .all(|s| s.state == SlotState::Active || s.state == SlotState::Retired));
    }

    #[test]
    fn step_policy_drives_controller() {
        let mut c = Controller::new(AutoscaleConfig {
            policy: Policy::StepOnAge {
                rules: vec![
                    StepRule {
                        min_age_s: 60.0,
                        add: 2,
                    },
                    StepRule {
                        min_age_s: 300.0,
                        add: 4,
                    },
                ],
            },
            ..cfg()
        });
        assert!(c.decide(0.0, &telem(10, 0, Some(5.0))).is_hold());
        match c.decide(100.0, &telem(10, 0, Some(90.0))) {
            Decision::Launch { ids } => assert_eq!(ids.len(), 2),
            other => panic!("expected launch, got {other:?}"),
        }
    }

    #[test]
    fn retire_requires_drain_first() {
        let mut c = Controller::new(cfg());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.confirm_retired(0, 10.0);
        }));
        assert!(result.is_err(), "retiring an active slot must panic");
    }

    #[test]
    fn events_record_fleet_trajectory() {
        let mut c = Controller::new(cfg());
        c.decide(0.0, &telem(16, 0, Some(1.0))); // 2 -> 4
        if let Decision::Drain { ids } = c.decide(100.0, &telem(0, 0, None)) {
            for id in ids {
                c.confirm_retired(id, 110.0);
            }
        }
        let sizes: Vec<u32> = c.events().iter().map(|e| e.fleet_after).collect();
        assert_eq!(sizes, vec![1, 2, 3, 4, 4, 4, 3, 2]);
        let last = c.events().last().unwrap();
        assert_eq!(last.kind, FleetEventKind::Retire);
        assert_eq!(c.billed_fleet(), 2);
    }

    #[test]
    fn dead_instance_is_retired_and_replaced_without_cooldown() {
        let mut c = Controller::new(cfg());
        // Scale to 4 under load; the scale-up cooldown (30 s) is now armed.
        c.decide(0.0, &telem(16, 0, Some(1.0)));
        assert_eq!(c.capacity(), 4);
        // Instance 1 dies 5 s later: capacity and billed fleet drop at once.
        assert!(c.mark_dead(1, 5.0));
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.billed_fleet(), 3);
        assert_eq!(c.slots()[1].state, SlotState::Retired);
        assert_eq!(c.slots()[1].retired_at, Some(5.0));
        let last = c.events().last().unwrap();
        assert_eq!(last.kind, FleetEventKind::Died);
        assert_eq!(last.slot, 1);
        // Same backlog on the very next tick — still inside the scale-up
        // cooldown window, but a death waives it: replacement launches.
        match c.decide(10.0, &telem(16, 0, Some(10.0))) {
            Decision::Launch { ids } => assert_eq!(ids.len(), 1),
            other => panic!("expected replacement launch, got {other:?}"),
        }
        assert_eq!(c.capacity(), 4);
        // A duplicate detection is a harmless no-op.
        assert!(!c.mark_dead(1, 12.0));
    }

    #[test]
    fn dead_draining_instance_needs_no_retirement_confirmation() {
        let mut c = Controller::new(cfg());
        c.decide(0.0, &telem(16, 0, Some(1.0))); // grow to 4
        if let Decision::Drain { ids } = c.decide(100.0, &telem(0, 0, None)) {
            // The draining victim dies before it can exit cleanly.
            let victim = ids[0];
            assert!(c.mark_dead(victim, 101.0));
            assert_eq!(c.slots()[victim as usize].state, SlotState::Retired);
        } else {
            panic!("expected a drain decision");
        }
    }

    #[test]
    fn deterministic_decision_sequence() {
        let drive = || {
            let mut c = Controller::new(cfg());
            let mut log = Vec::new();
            for i in 0..50u64 {
                let t = i as f64 * 10.0;
                let queued = ((i * 37) % 50) as usize;
                let d = c.decide(t, &telem(queued, 2, Some(1.0 + i as f64)));
                if let Decision::Drain { ids } = &d {
                    for &id in ids {
                        c.confirm_retired(id, t);
                    }
                }
                log.push(format!("{d:?}"));
            }
            log
        };
        assert_eq!(drive(), drive());
    }
}
