//! # ppc-autoscale — elastic worker fleets for Classic Cloud
//!
//! The paper's Classic Cloud runs fix the fleet size for the whole job.
//! This crate adds what the underlying IaaS platforms actually sell:
//! *elasticity*. A [`Controller`] watches queue telemetry (backlog, in-
//! flight count, age of the oldest waiting message) and decides when to
//! grow or shrink the worker fleet, subject to billing reality — clouds of
//! the paper's era billed by the wall-clock *hour*, so retiring an
//! instance ten minutes into its billed hour throws money away.
//!
//! The controller is a **pure state machine**: `decide(time, telemetry)`
//! consumes a snapshot and returns a [`Decision`]. Nothing here spawns
//! threads or schedules events — the native runtime
//! (`ppc_classic::runtime`) and the discrete-event simulator
//! (`ppc_classic::sim`) both drive the same controller, which is what
//! makes their scaling decisions comparable run-for-run.

pub mod controller;
pub mod policy;

pub use controller::{
    AutoscaleConfig, Controller, Decision, FleetEvent, FleetEventKind, Slot, SlotState,
};
pub use policy::{Policy, StepRule, Telemetry};
