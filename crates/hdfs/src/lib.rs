//! # ppc-hdfs — a mini distributed filesystem with data locality
//!
//! Stands in for HDFS as the paper uses it (§2.2): *"Apache Hadoop MapReduce
//! uses HDFS distributed parallel file system for data storage, which stores
//! the data across the local disks of the compute nodes while presenting a
//! single file system view through the HDFS API. HDFS ... achieves
//! reliability through replication of data across nodes. Hadoop optimizes
//! the data communication of MapReduce jobs by scheduling computations near
//! the data using the data locality information provided by the HDFS file
//! system."*
//!
//! What `ppc-mapreduce` needs from its filesystem, and what this crate
//! provides:
//!
//! * a namespace of files split into fixed-size **blocks** ([`block`]),
//! * **replica placement** across datanodes with rack awareness
//!   ([`placement`]),
//! * **locality metadata** — which datanodes hold which block — consumed by
//!   the locality-aware scheduler,
//! * **failure handling** — datanode loss, re-replication from surviving
//!   replicas, reads routed around dead nodes ([`fs`]).

pub mod block;
pub mod fs;
pub mod placement;

pub use block::{BlockId, BlockInfo, DataNodeId, FileStatus};
pub use fs::MiniHdfs;
pub use placement::PlacementPolicy;
