//! Replica placement with rack awareness.
//!
//! Implements HDFS's classic default policy: first replica on the writer's
//! node (or a random node for remote writers), second replica on a node in a
//! *different* rack, third replica on a different node in the *same* rack as
//! the second. Further replicas go to random distinct nodes.

use crate::block::DataNodeId;
use ppc_core::rng::Pcg32;

/// Cluster topology and replication settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementPolicy {
    pub n_nodes: usize,
    /// Nodes per rack; `node / nodes_per_rack` is the rack id.
    pub nodes_per_rack: usize,
    pub replication: usize,
}

impl PlacementPolicy {
    pub fn new(n_nodes: usize, nodes_per_rack: usize, replication: usize) -> PlacementPolicy {
        assert!(n_nodes > 0 && nodes_per_rack > 0 && replication > 0);
        PlacementPolicy {
            n_nodes,
            nodes_per_rack,
            replication,
        }
    }

    /// Rack of a node.
    pub fn rack_of(&self, node: DataNodeId) -> usize {
        node.0 / self.nodes_per_rack
    }

    /// Effective replication: can't exceed the cluster size.
    pub fn effective_replication(&self) -> usize {
        self.replication.min(self.n_nodes)
    }

    /// Choose replica nodes for one block.
    pub fn place(&self, writer: Option<DataNodeId>, rng: &mut Pcg32) -> Vec<DataNodeId> {
        let want = self.effective_replication();
        let mut chosen: Vec<DataNodeId> = Vec::with_capacity(want);

        // 1st: writer-local, else random.
        let first = writer.unwrap_or(DataNodeId(rng.next_below(self.n_nodes as u32) as usize));
        chosen.push(first);

        // 2nd: different rack from the first, if the cluster has one.
        if chosen.len() < want {
            if let Some(n) = self.pick(rng, &chosen, |c| self.rack_of(c) != self.rack_of(first)) {
                chosen.push(n);
            } else if let Some(n) = self.pick(rng, &chosen, |_| true) {
                chosen.push(n);
            }
        }

        // 3rd: same rack as the second, different node.
        if chosen.len() < want {
            let second = chosen[1];
            if let Some(n) = self.pick(rng, &chosen, |c| self.rack_of(c) == self.rack_of(second)) {
                chosen.push(n);
            } else if let Some(n) = self.pick(rng, &chosen, |_| true) {
                chosen.push(n);
            }
        }

        // Rest: anywhere distinct.
        while chosen.len() < want {
            match self.pick(rng, &chosen, |_| true) {
                Some(n) => chosen.push(n),
                None => break,
            }
        }
        chosen
    }

    /// Pick a node not yet chosen that satisfies `pred`, uniformly at random.
    fn pick(
        &self,
        rng: &mut Pcg32,
        taken: &[DataNodeId],
        pred: impl Fn(DataNodeId) -> bool,
    ) -> Option<DataNodeId> {
        let candidates: Vec<DataNodeId> = (0..self.n_nodes)
            .map(DataNodeId)
            .filter(|n| !taken.contains(n) && pred(*n))
            .collect();
        rng.choose(&candidates).copied()
    }

    /// Pick replacement targets when a block is under-replicated: any nodes
    /// that do not already hold a replica.
    pub fn re_replicate_targets(&self, current: &[DataNodeId], rng: &mut Pcg32) -> Vec<DataNodeId> {
        let want = self.effective_replication().saturating_sub(current.len());
        let mut taken: Vec<DataNodeId> = current.to_vec();
        let mut out = Vec::with_capacity(want);
        for _ in 0..want {
            match self.pick(rng, &taken, |_| true) {
                Some(n) => {
                    taken.push(n);
                    out.push(n);
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct() {
        let p = PlacementPolicy::new(8, 4, 3);
        let mut rng = Pcg32::new(1);
        for _ in 0..200 {
            let r = p.place(None, &mut rng);
            assert_eq!(r.len(), 3);
            let mut d = r.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 3, "replicas distinct: {r:?}");
        }
    }

    #[test]
    fn writer_gets_first_replica() {
        let p = PlacementPolicy::new(8, 4, 3);
        let mut rng = Pcg32::new(2);
        let r = p.place(Some(DataNodeId(5)), &mut rng);
        assert_eq!(r[0], DataNodeId(5));
    }

    #[test]
    fn rack_policy_one_off_rack_two_on_rack() {
        let p = PlacementPolicy::new(8, 4, 3);
        let mut rng = Pcg32::new(3);
        for _ in 0..100 {
            let r = p.place(Some(DataNodeId(0)), &mut rng);
            let racks: Vec<usize> = r.iter().map(|n| p.rack_of(*n)).collect();
            assert_ne!(racks[0], racks[1], "second replica off-rack: {r:?}");
            assert_eq!(racks[1], racks[2], "third replica on second's rack: {r:?}");
        }
    }

    #[test]
    fn replication_clamped_to_cluster() {
        let p = PlacementPolicy::new(2, 2, 3);
        let mut rng = Pcg32::new(4);
        let r = p.place(None, &mut rng);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn re_replication_avoids_existing_holders() {
        let p = PlacementPolicy::new(6, 3, 3);
        let mut rng = Pcg32::new(5);
        let current = vec![DataNodeId(0)];
        let targets = p.re_replicate_targets(&current, &mut rng);
        assert_eq!(targets.len(), 2);
        assert!(!targets.contains(&DataNodeId(0)));
    }

    #[test]
    fn single_node_cluster_works() {
        let p = PlacementPolicy::new(1, 1, 3);
        let mut rng = Pcg32::new(6);
        assert_eq!(p.place(None, &mut rng), vec![DataNodeId(0)]);
    }
}
