//! Block and datanode identities, file metadata.

use std::fmt;

/// Identifies one datanode (one compute node's local disks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataNodeId(pub usize);

impl fmt::Display for DataNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dn{}", self.0)
    }
}

/// Identifies one block in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// Where one block of a file lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    pub id: BlockId,
    /// Byte offset of this block within the file.
    pub offset: u64,
    /// Block length (== block size except possibly the last block).
    pub len: u64,
    /// Datanodes holding a replica, in placement order.
    pub replicas: Vec<DataNodeId>,
}

/// Status of a file as reported by the namenode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    pub path: String,
    pub len: u64,
    pub blocks: Vec<BlockInfo>,
}

impl FileStatus {
    /// All datanodes holding any part of this file — the locality hint set
    /// handed to the MapReduce scheduler.
    pub fn hosts(&self) -> Vec<DataNodeId> {
        let mut hosts: Vec<DataNodeId> = self
            .blocks
            .iter()
            .flat_map(|b| b.replicas.iter().copied())
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }

    /// Lowest replica count over the file's blocks (0 if any block lost all
    /// replicas — the file is then partially unreadable).
    pub fn min_replication(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.replicas.len())
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(DataNodeId(3).to_string(), "dn3");
        assert_eq!(BlockId(12).to_string(), "blk_12");
    }

    #[test]
    fn hosts_dedup_and_sort() {
        let st = FileStatus {
            path: "/f".into(),
            len: 10,
            blocks: vec![
                BlockInfo {
                    id: BlockId(0),
                    offset: 0,
                    len: 5,
                    replicas: vec![DataNodeId(2), DataNodeId(0)],
                },
                BlockInfo {
                    id: BlockId(1),
                    offset: 5,
                    len: 5,
                    replicas: vec![DataNodeId(0), DataNodeId(1)],
                },
            ],
        };
        assert_eq!(
            st.hosts(),
            vec![DataNodeId(0), DataNodeId(1), DataNodeId(2)]
        );
        assert_eq!(st.min_replication(), 2);
    }

    #[test]
    fn empty_file_has_zero_replication() {
        let st = FileStatus {
            path: "/e".into(),
            len: 0,
            blocks: vec![],
        };
        assert_eq!(st.min_replication(), 0);
        assert!(st.hosts().is_empty());
    }
}
