//! The filesystem: namenode + datanodes in one thread-safe object.
//!
//! Real HDFS separates the namenode process from datanode daemons; here
//! they are one [`MiniHdfs`] value because the frameworks only ever see the
//! client API. The essential behaviours — block splitting, replica
//! placement, locality metadata, datanode failure, re-replication — are all
//! faithfully modeled.

use crate::block::{BlockId, BlockInfo, DataNodeId, FileStatus};
use crate::placement::PlacementPolicy;
use ppc_core::rng::Pcg32;
use ppc_core::sync::RwLock;
use ppc_core::{PpcError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct BlockRecord {
    data: Arc<Vec<u8>>,
    replicas: Vec<DataNodeId>,
}

struct FileMeta {
    blocks: Vec<BlockId>,
    len: u64,
}

struct Inner {
    files: HashMap<String, FileMeta>,
    blocks: HashMap<BlockId, BlockRecord>,
    alive: Vec<bool>,
    next_block: u64,
    rng: Pcg32,
}

/// A miniature HDFS cluster.
///
/// ```
/// use ppc_hdfs::fs::MiniHdfs;
/// use ppc_hdfs::block::DataNodeId;
/// let fs = MiniHdfs::new(4, 64 << 20, 3, 42);
/// fs.create("/in/reads.fa", b">r1\nACGT\n", None).unwrap();
/// // Replicated on three datanodes; survives losing one.
/// fs.kill_datanode(DataNodeId(0)).unwrap();
/// assert_eq!(fs.read("/in/reads.fa").unwrap(), b">r1\nACGT\n");
/// ```
pub struct MiniHdfs {
    inner: RwLock<Inner>,
    policy: PlacementPolicy,
    block_size: u64,
    /// Block reads served by a replica on the reader's own node.
    local_reads: AtomicU64,
    /// Block reads that had to cross the network.
    remote_reads: AtomicU64,
}

impl MiniHdfs {
    /// Create a cluster of `n_nodes` datanodes.
    pub fn new(n_nodes: usize, block_size: u64, replication: usize, seed: u64) -> Arc<MiniHdfs> {
        assert!(block_size > 0, "block size must be positive");
        // Default rack width 8, HDFS-ish.
        let nodes_per_rack = 8.min(n_nodes.max(1));
        Arc::new(MiniHdfs {
            inner: RwLock::new(Inner {
                files: HashMap::new(),
                blocks: HashMap::new(),
                alive: vec![true; n_nodes],
                next_block: 0,
                rng: Pcg32::new(seed),
            }),
            policy: PlacementPolicy::new(n_nodes, nodes_per_rack, replication),
            block_size,
            local_reads: AtomicU64::new(0),
            remote_reads: AtomicU64::new(0),
        })
    }

    /// A cluster with HDFS-classic defaults: 64 MB blocks, 3 replicas.
    pub fn with_defaults(n_nodes: usize) -> Arc<MiniHdfs> {
        MiniHdfs::new(n_nodes, 64 << 20, 3, 0x4d5f)
    }

    pub fn n_nodes(&self) -> usize {
        self.policy.n_nodes
    }

    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// (local, remote) block-read counters.
    pub fn read_stats(&self) -> (u64, u64) {
        (
            self.local_reads.load(Ordering::Relaxed),
            self.remote_reads.load(Ordering::Relaxed),
        )
    }

    /// Write a file, splitting into blocks and placing replicas. `writer`
    /// pins the first replica of every block to that node (HDFS semantics
    /// for datanode-local writers).
    pub fn create(
        &self,
        path: &str,
        data: &[u8],
        writer: Option<DataNodeId>,
    ) -> Result<FileStatus> {
        if path.is_empty() {
            return Err(PpcError::InvalidArgument("empty path".into()));
        }
        let mut inner = self.inner.write();
        if inner.files.contains_key(path) {
            return Err(PpcError::AlreadyExists(format!("file '{path}'")));
        }
        if let Some(w) = writer {
            if w.0 >= self.policy.n_nodes || !inner.alive[w.0] {
                return Err(PpcError::InvalidArgument(format!(
                    "writer {w} is not an alive datanode"
                )));
            }
        }
        let mut block_ids = Vec::new();
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[][..]] // an empty file still gets one (empty) block
        } else {
            data.chunks(self.block_size as usize).collect()
        };
        for chunk in chunks {
            let id = BlockId(inner.next_block);
            inner.next_block += 1;
            // Placement may only use alive nodes: filter post-hoc by retry.
            let replicas = loop {
                let r = self.policy.place(writer, &mut inner.rng);
                if r.iter().all(|n| inner.alive[n.0]) {
                    break r;
                }
                // If too few nodes are alive to satisfy the filter, fall back
                // to any alive subset.
                let alive: Vec<DataNodeId> = (0..self.policy.n_nodes)
                    .filter(|i| inner.alive[*i])
                    .map(DataNodeId)
                    .collect();
                if alive.len() <= self.policy.effective_replication() {
                    break alive;
                }
            };
            if replicas.is_empty() {
                return Err(PpcError::CapacityExceeded("no alive datanodes".into()));
            }
            inner.blocks.insert(
                id,
                BlockRecord {
                    data: Arc::new(chunk.to_vec()),
                    replicas,
                },
            );
            block_ids.push(id);
        }
        let len = data.len() as u64;
        inner.files.insert(
            path.to_string(),
            FileMeta {
                blocks: block_ids,
                len,
            },
        );
        drop(inner);
        self.status(path)
    }

    /// Namenode metadata for a file; replica lists only include alive nodes.
    pub fn status(&self, path: &str) -> Result<FileStatus> {
        let inner = self.inner.read();
        let meta = inner
            .files
            .get(path)
            .ok_or_else(|| PpcError::NotFound(format!("file '{path}'")))?;
        let mut blocks = Vec::with_capacity(meta.blocks.len());
        let mut offset = 0;
        for id in &meta.blocks {
            let rec = &inner.blocks[id];
            let live: Vec<DataNodeId> = rec
                .replicas
                .iter()
                .copied()
                .filter(|n| inner.alive[n.0])
                .collect();
            let len = rec.data.len() as u64;
            blocks.push(BlockInfo {
                id: *id,
                offset,
                len,
                replicas: live,
            });
            offset += len;
        }
        Ok(FileStatus {
            path: path.to_string(),
            len: meta.len,
            blocks,
        })
    }

    /// Read a whole file from anywhere (client outside the cluster).
    pub fn read(&self, path: &str) -> Result<Vec<u8>> {
        self.read_from(path, None).map(|(d, _)| d)
    }

    /// Read a whole file from the perspective of datanode `reader`.
    /// Returns the data and whether *every* block was served node-locally —
    /// the signal the MapReduce scheduler's locality accounting uses.
    pub fn read_from(&self, path: &str, reader: Option<DataNodeId>) -> Result<(Vec<u8>, bool)> {
        let inner = self.inner.read();
        let meta = inner
            .files
            .get(path)
            .ok_or_else(|| PpcError::NotFound(format!("file '{path}'")))?;
        let mut out = Vec::with_capacity(meta.len as usize);
        let mut all_local = true;
        for id in &meta.blocks {
            let rec = &inner.blocks[id];
            let live: Vec<DataNodeId> = rec
                .replicas
                .iter()
                .copied()
                .filter(|n| inner.alive[n.0])
                .collect();
            if live.is_empty() {
                return Err(PpcError::NotFound(format!(
                    "file '{path}': {id} lost all replicas"
                )));
            }
            let local = reader.map(|r| live.contains(&r)).unwrap_or(false);
            if local {
                self.local_reads.fetch_add(1, Ordering::Relaxed);
            } else {
                self.remote_reads.fetch_add(1, Ordering::Relaxed);
                all_local = false;
            }
            out.extend_from_slice(&rec.data);
        }
        Ok((out, all_local))
    }

    /// Delete a file and free its blocks.
    pub fn delete(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let meta = inner
            .files
            .remove(path)
            .ok_or_else(|| PpcError::NotFound(format!("file '{path}'")))?;
        for id in meta.blocks {
            inner.blocks.remove(&id);
        }
        Ok(())
    }

    /// List paths with a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.read();
        let mut v: Vec<String> = inner
            .files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort_unstable();
        v
    }

    /// Mark a datanode dead; its replicas become unavailable.
    pub fn kill_datanode(&self, node: DataNodeId) -> Result<()> {
        let mut inner = self.inner.write();
        if node.0 >= inner.alive.len() {
            return Err(PpcError::NotFound(format!("datanode {node}")));
        }
        inner.alive[node.0] = false;
        Ok(())
    }

    /// Bring a datanode back (empty — its old replicas are gone, matching a
    /// reformatted machine).
    pub fn revive_datanode(&self, node: DataNodeId) -> Result<()> {
        let mut inner = self.inner.write();
        if node.0 >= inner.alive.len() {
            return Err(PpcError::NotFound(format!("datanode {node}")));
        }
        // Purge stale replica records pointing at the reborn node.
        for rec in inner.blocks.values_mut() {
            rec.replicas.retain(|r| *r != node);
        }
        inner.alive[node.0] = true;
        Ok(())
    }

    /// Blocks currently below the replication target (counting only alive
    /// replicas), as the namenode's replication monitor would see them.
    pub fn under_replicated(&self) -> Vec<BlockId> {
        let inner = self.inner.read();
        let want = self
            .policy
            .effective_replication()
            .min(inner.alive.iter().filter(|a| **a).count());
        let mut v: Vec<BlockId> = inner
            .blocks
            .iter()
            .filter(|(_, rec)| rec.replicas.iter().filter(|n| inner.alive[n.0]).count() < want)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// Restore replication for all under-replicated blocks from surviving
    /// replicas. Returns the number of new replicas created. Blocks with no
    /// surviving replica are lost and skipped (real HDFS reports these as
    /// corrupt files).
    pub fn re_replicate(&self) -> usize {
        let mut inner = self.inner.write();
        let alive_count = inner.alive.iter().filter(|a| **a).count();
        let want = self.policy.effective_replication().min(alive_count);
        let ids: Vec<BlockId> = inner.blocks.keys().copied().collect();
        let mut created = 0;
        for id in ids {
            let (live, lost_all): (Vec<DataNodeId>, bool) = {
                let rec = &inner.blocks[&id];
                let live: Vec<DataNodeId> = rec
                    .replicas
                    .iter()
                    .copied()
                    .filter(|n| inner.alive[n.0])
                    .collect();
                let lost = live.is_empty();
                (live, lost)
            };
            if lost_all || live.len() >= want {
                continue;
            }
            // Choose targets among alive nodes not already holding it.
            let mut targets = Vec::new();
            {
                let alive: Vec<DataNodeId> = (0..self.policy.n_nodes)
                    .filter(|i| inner.alive[*i])
                    .map(DataNodeId)
                    .filter(|n| !live.contains(n))
                    .collect();
                let need = want - live.len();
                let mut pool = alive;
                for _ in 0..need {
                    if pool.is_empty() {
                        break;
                    }
                    let idx = inner.rng.next_below(pool.len() as u32) as usize;
                    targets.push(pool.swap_remove(idx));
                }
            }
            let rec = inner.blocks.get_mut(&id).expect("block exists");
            rec.replicas.retain(|n| live.contains(n)); // drop dead replicas
            for t in targets {
                rec.replicas.push(t);
                created += 1;
            }
        }
        created
    }

    /// Total bytes of file data (not counting replication).
    pub fn used_bytes(&self) -> u64 {
        self.inner.read().files.values().map(|f| f.len).sum()
    }

    /// Per-datanode stored bytes including replication — `hdfs dfsadmin
    /// -report`'s per-node usage view.
    pub fn node_usage(&self) -> Vec<u64> {
        let inner = self.inner.read();
        let mut usage = vec![0u64; self.policy.n_nodes];
        for rec in inner.blocks.values() {
            for r in &rec.replicas {
                usage[r.0] += rec.data.len() as u64;
            }
        }
        usage
    }

    /// Imbalance ratio: most-loaded node over mean (1.0 = perfectly even).
    pub fn balance_ratio(&self) -> f64 {
        let usage = self.node_usage();
        let total: u64 = usage.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / usage.len() as f64;
        usage.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    /// The HDFS balancer: move replicas from over-loaded to under-loaded
    /// alive datanodes until every node is within `threshold` (fraction,
    /// e.g. 0.1 = 10%) of the mean, or no legal move remains (a move is
    /// legal when the target holds no replica of the block). Returns the
    /// number of replicas moved.
    pub fn balance(&self, threshold: f64) -> usize {
        assert!(threshold >= 0.0);
        let mut moved = 0;
        // Bounded iterations: each move strictly reduces the max-loaded
        // node's usage, but cap for safety.
        for _ in 0..10_000 {
            let usage = self.node_usage();
            let inner_check = self.inner.read();
            let alive: Vec<usize> = (0..usage.len()).filter(|&i| inner_check.alive[i]).collect();
            drop(inner_check);
            if alive.len() < 2 {
                break;
            }
            let total: u64 = alive.iter().map(|&i| usage[i]).sum();
            let mean = total as f64 / alive.len() as f64;
            let hi = *alive.iter().max_by_key(|&&i| usage[i]).expect("non-empty");
            let lo = *alive.iter().min_by_key(|&&i| usage[i]).expect("non-empty");
            if usage[hi] as f64 <= mean * (1.0 + threshold) {
                break; // balanced enough
            }
            // Move one block replica from hi to lo (any block on hi whose
            // replicas do not already include lo).
            let mut inner = self.inner.write();
            let candidate = inner
                .blocks
                .iter()
                .filter(|(_, rec)| {
                    rec.replicas.contains(&DataNodeId(hi))
                        && !rec.replicas.contains(&DataNodeId(lo))
                })
                .map(|(id, _)| *id)
                .next();
            match candidate {
                Some(id) => {
                    let rec = inner.blocks.get_mut(&id).expect("block exists");
                    for r in rec.replicas.iter_mut() {
                        if *r == DataNodeId(hi) {
                            *r = DataNodeId(lo);
                            break;
                        }
                    }
                    moved += 1;
                }
                None => break, // no legal move
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_round_trip() {
        let fs = MiniHdfs::new(4, 16, 2, 1);
        let data: Vec<u8> = (0..100u8).collect();
        let st = fs.create("/data/f1", &data, None).unwrap();
        assert_eq!(st.len, 100);
        assert_eq!(st.blocks.len(), 7, "100 bytes / 16-byte blocks = 7 blocks");
        assert_eq!(fs.read("/data/f1").unwrap(), data);
    }

    #[test]
    fn duplicate_create_rejected() {
        let fs = MiniHdfs::new(2, 16, 2, 1);
        fs.create("/f", b"x", None).unwrap();
        assert_eq!(
            fs.create("/f", b"y", None).unwrap_err().code(),
            "AlreadyExists"
        );
    }

    #[test]
    fn replication_level_respected() {
        let fs = MiniHdfs::new(6, 1 << 20, 3, 2);
        let st = fs.create("/f", &[1; 100], None).unwrap();
        assert_eq!(st.min_replication(), 3);
    }

    #[test]
    fn writer_local_first_replica() {
        let fs = MiniHdfs::new(6, 1 << 20, 3, 3);
        let st = fs.create("/f", &[1; 10], Some(DataNodeId(4))).unwrap();
        assert_eq!(st.blocks[0].replicas[0], DataNodeId(4));
    }

    #[test]
    fn local_vs_remote_reads() {
        let fs = MiniHdfs::new(4, 1 << 20, 1, 4);
        let st = fs.create("/f", &[7; 10], Some(DataNodeId(2))).unwrap();
        assert_eq!(st.blocks[0].replicas, vec![DataNodeId(2)]);
        let (_, local) = fs.read_from("/f", Some(DataNodeId(2))).unwrap();
        assert!(local);
        let (_, local) = fs.read_from("/f", Some(DataNodeId(0))).unwrap();
        assert!(!local);
        assert_eq!(fs.read_stats(), (1, 1));
    }

    #[test]
    fn survives_datanode_loss_with_replicas() {
        let fs = MiniHdfs::new(5, 8, 3, 5);
        let data = vec![9u8; 64];
        fs.create("/f", &data, None).unwrap();
        // Kill two nodes; with 3 replicas data must survive.
        fs.kill_datanode(DataNodeId(0)).unwrap();
        fs.kill_datanode(DataNodeId(1)).unwrap();
        assert_eq!(fs.read("/f").unwrap(), data);
    }

    #[test]
    fn loses_data_when_all_replicas_die() {
        let fs = MiniHdfs::new(3, 1 << 20, 1, 6);
        fs.create("/f", &[1; 4], Some(DataNodeId(1))).unwrap();
        fs.kill_datanode(DataNodeId(1)).unwrap();
        let err = fs.read("/f").unwrap_err();
        assert_eq!(err.code(), "NotFound");
    }

    #[test]
    fn re_replication_restores_target() {
        let fs = MiniHdfs::new(6, 8, 3, 7);
        fs.create("/f", &[5u8; 64], None).unwrap();
        fs.kill_datanode(DataNodeId(0)).unwrap();
        fs.kill_datanode(DataNodeId(1)).unwrap();
        let under = fs.under_replicated();
        let created = fs.re_replicate();
        if !under.is_empty() {
            assert!(created > 0);
        }
        assert!(
            fs.under_replicated().is_empty(),
            "all blocks back at target"
        );
        assert_eq!(fs.read("/f").unwrap(), vec![5u8; 64]);
    }

    #[test]
    fn revive_forgets_old_replicas() {
        let fs = MiniHdfs::new(2, 1 << 20, 2, 8);
        fs.create("/f", &[1; 4], None).unwrap();
        fs.kill_datanode(DataNodeId(0)).unwrap();
        fs.revive_datanode(DataNodeId(0)).unwrap();
        // The revived node holds nothing; file served by the other replica.
        let st = fs.status("/f").unwrap();
        assert_eq!(st.blocks[0].replicas, vec![DataNodeId(1)]);
        assert!(fs.read("/f").is_ok());
    }

    #[test]
    fn list_and_delete() {
        let fs = MiniHdfs::new(2, 1 << 20, 1, 9);
        fs.create("/in/a", b"1", None).unwrap();
        fs.create("/in/b", b"2", None).unwrap();
        fs.create("/out/c", b"3", None).unwrap();
        assert_eq!(fs.list("/in/"), vec!["/in/a", "/in/b"]);
        fs.delete("/in/a").unwrap();
        assert_eq!(fs.list("/in/"), vec!["/in/b"]);
        assert_eq!(fs.delete("/in/a").unwrap_err().code(), "NotFound");
    }

    #[test]
    fn empty_file_round_trip() {
        let fs = MiniHdfs::new(2, 16, 2, 10);
        let st = fs.create("/empty", b"", None).unwrap();
        assert_eq!(st.len, 0);
        assert_eq!(fs.read("/empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn balancer_levels_skewed_replicas() {
        // Pin every write to node 0: maximal imbalance.
        let fs = MiniHdfs::new(4, 64, 1, 77);
        for i in 0..32 {
            fs.create(&format!("/f{i}"), &[i as u8; 64], Some(DataNodeId(0)))
                .unwrap();
        }
        assert!(fs.balance_ratio() > 3.0, "skewed: {}", fs.balance_ratio());
        let moved = fs.balance(0.1);
        assert!(moved > 0);
        assert!(fs.balance_ratio() < 1.2, "balanced: {}", fs.balance_ratio());
        // Data still fully readable after the moves.
        for i in 0..32 {
            assert_eq!(fs.read(&format!("/f{i}")).unwrap(), vec![i as u8; 64]);
        }
        // Usage spread across all four nodes now.
        let usage = fs.node_usage();
        assert!(usage.iter().all(|&u| u > 0), "{usage:?}");
    }

    #[test]
    fn balancer_noop_when_already_balanced() {
        let fs = MiniHdfs::new(4, 64, 2, 78);
        for i in 0..16 {
            fs.create(&format!("/f{i}"), &[0u8; 64], None).unwrap();
        }
        let before = fs.balance_ratio();
        let moved = fs.balance(0.5);
        if before <= 1.5 {
            assert_eq!(moved, 0, "already within threshold");
        }
        assert!(fs.balance_ratio() <= before + 1e-9);
    }

    #[test]
    fn concurrent_creates() {
        let fs = MiniHdfs::with_defaults(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let fs = fs.clone();
                s.spawn(move || {
                    for i in 0..20 {
                        fs.create(&format!("/t{t}/f{i}"), &[t as u8; 100], None)
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(fs.list("/").len(), 160);
        assert_eq!(fs.used_bytes(), 16_000);
    }
}
