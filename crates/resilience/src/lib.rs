//! # ppc-resilience — straggler & gray-failure defense, shared by every paradigm
//!
//! The paper's fault-tolerance story is "re-execute failed tasks", but the
//! failures that dominate real cloud tails are the ones re-execution alone
//! never fixes: *gray* workers that don't die, they just run 10× slow. This
//! crate is the one defense layer all three paradigms (Classic Cloud,
//! MapReduce, Dryad) adopt, native and simulated:
//!
//! * [`HedgePolicy`] — launch a duplicate attempt once a task has run past
//!   a quantile-derived delay (Hadoop's speculative execution generalized:
//!   classic queue re-dispatch, Dryad backup vertices), first result wins,
//!   with a hedge budget so duplicates can't stampede.
//! * [`HealthTracker`] — score workers by EWMA completion latency and
//!   failure streaks, bench gray workers off the assignment path, and
//!   release them through a probation window.
//! * [`DeadlineConfig`] — per-task deadlines with cancel-and-requeue.
//!
//! The knobs travel as one [`ResiliencePolicy`] value on
//! `ppc_exec::RunContext`; `None` everywhere means "legacy behavior,
//! bit-identical" — the policy is strictly additive.

use ppc_core::{PpcError, Result};

/// When to launch a duplicate (hedged) attempt for a running task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Latency quantile of observed completions that anchors the hedge
    /// delay (0.95 = hedge tasks slower than the p95 so far).
    pub quantile: f64,
    /// Multiplier on the quantile latency: delay = quantile_latency × factor.
    pub factor: f64,
    /// Completions observed before the quantile trigger arms; until then
    /// only `min_delay_s` gates hedging.
    pub min_observations: usize,
    /// Floor on the hedge delay (also the whole delay before the quantile
    /// trigger arms), seconds.
    pub min_delay_s: f64,
    /// Hedge budget as a fraction of the job's task count;
    /// `f64::INFINITY` = uncapped (the legacy Hadoop behavior).
    pub budget_fraction: f64,
    /// Maximum simultaneously live attempts per task (2 = one backup).
    pub max_live_attempts: u32,
}

impl HedgeConfig {
    /// Hadoop's classic speculation, verbatim: duplicate the oldest
    /// running task whenever a worker would otherwise idle — no delay
    /// threshold, no budget, at most one live duplicate. The shared
    /// scheduler under this config is bit-identical to the old
    /// `speculative: bool` path (pinned in `tests/shim_equivalence.rs`).
    pub fn legacy_speculation() -> HedgeConfig {
        HedgeConfig {
            quantile: 0.0,
            factor: 0.0,
            min_observations: 0,
            min_delay_s: 0.0,
            budget_fraction: f64::INFINITY,
            max_live_attempts: 2,
        }
    }

    /// A tail-focused default: hedge past 1.5× the observed p75 (armed
    /// after 3 completions), budget 50% of the task count, one backup.
    pub fn quantile(min_delay_s: f64) -> HedgeConfig {
        HedgeConfig {
            quantile: 0.75,
            factor: 1.5,
            min_observations: 3,
            min_delay_s,
            budget_fraction: 0.5,
            max_live_attempts: 2,
        }
    }

    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.quantile) {
            return Err(PpcError::InvalidArgument(format!(
                "hedge config: quantile = {} is not in [0, 1]",
                self.quantile
            )));
        }
        if !self.factor.is_finite() || self.factor < 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "hedge config: factor = {} must be finite and >= 0",
                self.factor
            )));
        }
        if !self.min_delay_s.is_finite() || self.min_delay_s < 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "hedge config: min_delay_s = {} must be finite and >= 0",
                self.min_delay_s
            )));
        }
        if self.budget_fraction.is_nan() || self.budget_fraction < 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "hedge config: budget_fraction = {} must be >= 0",
                self.budget_fraction
            )));
        }
        if self.max_live_attempts < 2 {
            return Err(PpcError::InvalidArgument(
                "hedge config: max_live_attempts must be at least 2 (the primary plus one backup)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Runtime state of the hedging decision: observed completion latencies
/// feeding the quantile trigger, plus the hedge budget counter. One per
/// job, shared by whatever dispatches attempts in that paradigm.
#[derive(Debug, Clone)]
pub struct HedgePolicy {
    cfg: HedgeConfig,
    /// First-attempt completion latencies observed so far, seconds.
    latencies: Vec<f64>,
    hedges_launched: usize,
}

impl HedgePolicy {
    pub fn new(cfg: HedgeConfig) -> HedgePolicy {
        HedgePolicy {
            cfg,
            latencies: Vec::new(),
            hedges_launched: 0,
        }
    }

    pub fn config(&self) -> &HedgeConfig {
        &self.cfg
    }

    /// Feed one completed attempt's latency into the quantile estimate.
    pub fn observe(&mut self, latency_s: f64) {
        if latency_s.is_finite() && latency_s >= 0.0 {
            self.latencies.push(latency_s);
        }
    }

    /// The delay past which a running task becomes a hedge candidate:
    /// `max(min_delay_s, quantile_latency × factor)` once
    /// `min_observations` completions are in, `min_delay_s` before that.
    pub fn hedge_delay(&self) -> f64 {
        if self.latencies.len() < self.cfg.min_observations || self.latencies.is_empty() {
            return self.cfg.min_delay_s;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx =
            ((self.cfg.quantile * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        (sorted[idx] * self.cfg.factor).max(self.cfg.min_delay_s)
    }

    /// Whether a task that has been running `age_s` with `live_attempts`
    /// copies in flight should get a backup, given the budget over a job
    /// of `n_tasks`.
    pub fn should_hedge(&self, age_s: f64, live_attempts: u32, n_tasks: usize) -> bool {
        live_attempts < self.cfg.max_live_attempts
            && self.budget_remaining(n_tasks)
            && age_s >= self.hedge_delay()
    }

    fn budget_remaining(&self, n_tasks: usize) -> bool {
        if self.cfg.budget_fraction.is_infinite() {
            return true;
        }
        let cap = (self.cfg.budget_fraction * n_tasks as f64).ceil() as usize;
        self.hedges_launched < cap
    }

    /// Record that a hedge was launched (counts against the budget).
    pub fn record_hedge(&mut self) {
        self.hedges_launched += 1;
    }

    pub fn hedges_launched(&self) -> usize {
        self.hedges_launched
    }
}

/// When a worker is scored gray and benched off the assignment path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineConfig {
    /// EWMA weight of the newest latency sample (0 < α ≤ 1).
    pub ewma_alpha: f64,
    /// Quarantine a worker whose EWMA latency exceeds this multiple of the
    /// fleet's median EWMA.
    pub slow_factor: f64,
    /// Consecutive failures that quarantine a worker outright.
    pub failure_threshold: u32,
    /// Latency samples required per worker before the slowness score
    /// applies (failure streaks apply from the first failure).
    pub min_samples: u32,
    /// How long a quarantined worker stays benched, seconds.
    pub quarantine_s: f64,
    /// Probation: successes required after release before the worker is
    /// fully healthy again (a failure on probation re-quarantines).
    pub probation_tasks: u32,
    /// Never bench more than this fraction of the fleet at once — a
    /// defense against quarantining everyone when the whole fleet is slow.
    pub max_quarantined_fraction: f64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            ewma_alpha: 0.3,
            slow_factor: 3.0,
            failure_threshold: 3,
            min_samples: 3,
            quarantine_s: 30.0,
            probation_tasks: 2,
            max_quarantined_fraction: 0.5,
        }
    }
}

impl QuarantineConfig {
    pub fn validate(&self) -> Result<()> {
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(PpcError::InvalidArgument(format!(
                "quarantine config: ewma_alpha = {} must be in (0, 1]",
                self.ewma_alpha
            )));
        }
        if !self.slow_factor.is_finite() || self.slow_factor <= 1.0 {
            return Err(PpcError::InvalidArgument(format!(
                "quarantine config: slow_factor = {} must be finite and > 1",
                self.slow_factor
            )));
        }
        if !self.quarantine_s.is_finite() || self.quarantine_s <= 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "quarantine config: quarantine_s = {} must be finite and > 0",
                self.quarantine_s
            )));
        }
        if !(0.0..=1.0).contains(&self.max_quarantined_fraction) {
            return Err(PpcError::InvalidArgument(format!(
                "quarantine config: max_quarantined_fraction = {} is not in [0, 1]",
                self.max_quarantined_fraction
            )));
        }
        Ok(())
    }
}

/// Where one worker sits in the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Health {
    Healthy,
    /// Benched until the stated time.
    Quarantined {
        until_s: f64,
    },
    /// Released, with this many probation successes still owed.
    Probation {
        remaining: u32,
    },
}

#[derive(Debug, Clone)]
struct WorkerScore {
    ewma_s: Option<f64>,
    samples: u32,
    consecutive_failures: u32,
    health: Health,
}

impl WorkerScore {
    fn new() -> WorkerScore {
        WorkerScore {
            ewma_s: None,
            samples: 0,
            consecutive_failures: 0,
            health: Health::Healthy,
        }
    }
}

/// Scores workers by EWMA completion latency and failure streaks and runs
/// the quarantine state machine: Healthy → Quarantined (timed bench) →
/// Probation (earn your way back) → Healthy. Callers ask
/// [`HealthTracker::allow`] before handing a worker new work.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    cfg: QuarantineConfig,
    workers: Vec<WorkerScore>,
    quarantines: usize,
    releases: usize,
}

impl HealthTracker {
    pub fn new(cfg: QuarantineConfig) -> HealthTracker {
        HealthTracker {
            cfg,
            workers: Vec::new(),
            quarantines: 0,
            releases: 0,
        }
    }

    fn score(&mut self, worker: u32) -> &mut WorkerScore {
        let i = worker as usize;
        while self.workers.len() <= i {
            self.workers.push(WorkerScore::new());
        }
        &mut self.workers[i]
    }

    /// Median EWMA latency across workers with enough samples.
    fn fleet_median(&self) -> Option<f64> {
        let mut ewmas: Vec<f64> = self
            .workers
            .iter()
            .filter(|w| w.samples >= self.cfg.min_samples)
            .filter_map(|w| w.ewma_s)
            .collect();
        if ewmas.len() < 2 {
            return None; // one worker has no peers to be slow relative to
        }
        ewmas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(ewmas[ewmas.len() / 2])
    }

    fn benched(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| matches!(w.health, Health::Quarantined { .. }))
            .count()
    }

    /// Whether benching one more worker stays under the fleet-fraction cap.
    fn can_bench(&self) -> bool {
        let fleet = self.workers.len().max(1);
        ((self.benched() + 1) as f64) <= self.cfg.max_quarantined_fraction * fleet as f64
    }

    fn bench(&mut self, worker: u32, now_s: f64) {
        let until_s = now_s + self.cfg.quarantine_s;
        self.quarantines += 1;
        self.score(worker).health = Health::Quarantined { until_s };
        self.score(worker).consecutive_failures = 0;
    }

    /// Record a successful completion with its observed latency.
    pub fn record_success(&mut self, worker: u32, latency_s: f64, now_s: f64) {
        let alpha = self.cfg.ewma_alpha;
        let s = self.score(worker);
        s.consecutive_failures = 0;
        s.samples += 1;
        s.ewma_s = Some(match s.ewma_s {
            Some(e) => alpha * latency_s + (1.0 - alpha) * e,
            None => latency_s,
        });
        if let Health::Probation { remaining } = s.health {
            s.health = if remaining <= 1 {
                Health::Healthy
            } else {
                Health::Probation {
                    remaining: remaining - 1,
                }
            };
        }
        // Gray check: slow relative to the fleet, with enough evidence.
        let slow = {
            let s = &self.workers[worker as usize];
            s.health == Health::Healthy
                && s.samples >= self.cfg.min_samples
                && match (s.ewma_s, self.fleet_median()) {
                    (Some(e), Some(m)) => e > self.cfg.slow_factor * m,
                    _ => false,
                }
        };
        if slow && self.can_bench() {
            self.bench(worker, now_s);
        }
    }

    /// Record a failed attempt on this worker.
    pub fn record_failure(&mut self, worker: u32, now_s: f64) {
        let threshold = self.cfg.failure_threshold;
        let s = self.score(worker);
        s.consecutive_failures += 1;
        let on_probation = matches!(s.health, Health::Probation { .. });
        let tripped = s.consecutive_failures >= threshold;
        let healthy = s.health == Health::Healthy;
        if (on_probation || (healthy && tripped)) && self.can_bench() {
            self.bench(worker, now_s);
        }
    }

    /// Gate before assignment: `true` while the worker is benched. A
    /// quarantine whose bench time has elapsed is released to probation
    /// here (and the release is counted).
    pub fn allow(&mut self, worker: u32, now_s: f64) -> bool {
        let probation_tasks = self.cfg.probation_tasks;
        let s = self.score(worker);
        match s.health {
            Health::Quarantined { until_s } if now_s >= until_s => {
                s.health = if probation_tasks == 0 {
                    Health::Healthy
                } else {
                    Health::Probation {
                        remaining: probation_tasks,
                    }
                };
                // The bench was the penalty; probation re-scores from a
                // clean slate so stale gray-era latency can't re-bench a
                // recovered worker on its first task back.
                s.ewma_s = None;
                s.samples = 0;
                self.releases += 1;
                true
            }
            Health::Quarantined { .. } => false,
            _ => true,
        }
    }

    /// Current state of one worker (observers; assignment goes via `allow`).
    pub fn health(&self, worker: u32) -> Health {
        self.workers
            .get(worker as usize)
            .map(|w| w.health)
            .unwrap_or(Health::Healthy)
    }

    /// Total quarantines imposed over the run.
    pub fn quarantines(&self) -> usize {
        self.quarantines
    }

    /// Total releases back to probation over the run.
    pub fn releases(&self) -> usize {
        self.releases
    }
}

/// Per-task deadline: attempts older than `timeout_s` are cancelled and
/// the task requeued (counting against its attempt budget, so a task that
/// can never meet the deadline still terminates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineConfig {
    pub timeout_s: f64,
}

impl DeadlineConfig {
    pub fn validate(&self) -> Result<()> {
        if !self.timeout_s.is_finite() || self.timeout_s <= 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "deadline config: timeout_s = {} must be finite and > 0",
                self.timeout_s
            )));
        }
        Ok(())
    }
}

/// The one resilience knob a [`ppc_exec::RunContext`] carries: each part is
/// optional and `ResiliencePolicy::default()` (all `None`) reproduces the
/// legacy behavior of every paradigm bit-for-bit.
///
/// [`ppc_exec::RunContext`]: https://docs.rs/ppc-exec
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResiliencePolicy {
    pub hedge: Option<HedgeConfig>,
    pub quarantine: Option<QuarantineConfig>,
    pub deadline: Option<DeadlineConfig>,
}

impl ResiliencePolicy {
    /// Hedging only, with the given config.
    pub fn hedged(cfg: HedgeConfig) -> ResiliencePolicy {
        ResiliencePolicy {
            hedge: Some(cfg),
            ..ResiliencePolicy::default()
        }
    }

    /// The old Hadoop `speculative: true` behavior expressed as a policy
    /// (what the deprecated `MapReduceJob::with_speculative` shim maps to).
    pub fn legacy_speculation() -> ResiliencePolicy {
        ResiliencePolicy::hedged(HedgeConfig::legacy_speculation())
    }

    pub fn with_quarantine(mut self, cfg: QuarantineConfig) -> ResiliencePolicy {
        self.quarantine = Some(cfg);
        self
    }

    pub fn with_deadline(mut self, timeout_s: f64) -> ResiliencePolicy {
        self.deadline = Some(DeadlineConfig { timeout_s });
        self
    }

    pub fn validate(&self) -> Result<()> {
        if let Some(h) = &self.hedge {
            h.validate()?;
        }
        if let Some(q) = &self.quarantine {
            q.validate()?;
        }
        if let Some(d) = &self.deadline {
            d.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_hedge_fires_immediately_and_never_exhausts() {
        let mut p = HedgePolicy::new(HedgeConfig::legacy_speculation());
        assert_eq!(p.hedge_delay(), 0.0);
        assert!(p.should_hedge(0.0, 1, 1));
        assert!(!p.should_hedge(0.0, 2, 1), "one live backup is the cap");
        for _ in 0..1000 {
            p.record_hedge();
        }
        assert!(p.should_hedge(0.0, 1, 1), "legacy budget is unbounded");
    }

    #[test]
    fn quantile_delay_arms_after_min_observations() {
        let cfg = HedgeConfig {
            quantile: 0.5,
            factor: 2.0,
            min_observations: 3,
            min_delay_s: 1.0,
            budget_fraction: 1.0,
            max_live_attempts: 2,
        };
        let mut p = HedgePolicy::new(cfg);
        assert_eq!(p.hedge_delay(), 1.0, "floor applies before arming");
        p.observe(10.0);
        p.observe(10.0);
        assert_eq!(p.hedge_delay(), 1.0, "two of three observations");
        p.observe(20.0);
        // p50 of [10, 10, 20] = 10; delay = 10 × 2 = 20.
        assert_eq!(p.hedge_delay(), 20.0);
        assert!(!p.should_hedge(19.0, 1, 10));
        assert!(p.should_hedge(20.0, 1, 10));
    }

    #[test]
    fn hedge_budget_caps_duplicates() {
        let cfg = HedgeConfig {
            budget_fraction: 0.25,
            ..HedgeConfig::legacy_speculation()
        };
        let mut p = HedgePolicy::new(cfg);
        // 10 tasks × 0.25 → budget of ceil(2.5) = 3 hedges.
        for _ in 0..3 {
            assert!(p.should_hedge(0.0, 1, 10));
            p.record_hedge();
        }
        assert!(!p.should_hedge(0.0, 1, 10), "budget exhausted");
        assert_eq!(p.hedges_launched(), 3);
    }

    #[test]
    fn gray_worker_is_quarantined_and_released_through_probation() {
        let cfg = QuarantineConfig {
            min_samples: 2,
            quarantine_s: 10.0,
            probation_tasks: 2,
            ..QuarantineConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        // Two healthy peers at ~1 s, one gray worker at ~10 s.
        for _ in 0..3 {
            t.record_success(0, 1.0, 0.0);
            t.record_success(1, 1.0, 0.0);
        }
        t.record_success(2, 10.0, 0.0);
        assert!(t.allow(2, 0.0), "one sample is not yet evidence");
        t.record_success(2, 10.0, 1.0);
        assert!(!t.allow(2, 1.0), "gray worker benched");
        assert_eq!(t.quarantines(), 1);
        assert!(t.allow(0, 1.0) && t.allow(1, 1.0), "peers unaffected");
        // Bench expires → probation → healthy after two successes.
        assert!(t.allow(2, 12.0), "released after quarantine_s");
        assert_eq!(t.health(2), Health::Probation { remaining: 2 });
        t.record_success(2, 1.0, 12.0);
        t.record_success(2, 1.0, 13.0);
        assert_eq!(t.health(2), Health::Healthy);
        assert_eq!(t.releases(), 1);
    }

    #[test]
    fn failure_streak_quarantines_and_probation_failure_rebenches() {
        let cfg = QuarantineConfig {
            failure_threshold: 2,
            quarantine_s: 5.0,
            probation_tasks: 1,
            ..QuarantineConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        t.record_success(0, 1.0, 0.0); // a peer, so the fleet isn't one worker
        t.record_failure(1, 0.0);
        assert!(t.allow(1, 0.0), "one failure is not a streak");
        t.record_failure(1, 0.0);
        assert!(!t.allow(1, 0.0), "streak hit the threshold");
        assert!(t.allow(1, 6.0), "released to probation");
        t.record_failure(1, 6.0);
        assert!(!t.allow(1, 6.0), "a probation failure re-benches at once");
        assert_eq!(t.quarantines(), 2);
    }

    #[test]
    fn quarantine_fraction_cap_protects_the_fleet() {
        let cfg = QuarantineConfig {
            failure_threshold: 1,
            max_quarantined_fraction: 0.5,
            ..QuarantineConfig::default()
        };
        let mut t = HealthTracker::new(cfg);
        // Touch 4 workers so the fleet size is known.
        for w in 0..4 {
            t.record_success(w, 1.0, 0.0);
        }
        t.record_failure(0, 0.0);
        t.record_failure(1, 0.0);
        assert!(!t.allow(0, 0.0) && !t.allow(1, 0.0));
        // Benching a third of four would exceed the 50% cap.
        t.record_failure(2, 0.0);
        assert!(t.allow(2, 0.0), "fraction cap held the bench");
        assert_eq!(t.quarantines(), 2);
    }

    #[test]
    fn policy_default_is_inert_and_validation_rejects_nonsense() {
        let p = ResiliencePolicy::default();
        assert!(p.hedge.is_none() && p.quarantine.is_none() && p.deadline.is_none());
        assert!(p.validate().is_ok());
        assert!(ResiliencePolicy::legacy_speculation().validate().is_ok());
        let bad = ResiliencePolicy::hedged(HedgeConfig {
            quantile: 1.5,
            ..HedgeConfig::legacy_speculation()
        });
        assert!(bad.validate().is_err());
        let bad = ResiliencePolicy::default().with_deadline(0.0);
        assert!(bad.validate().is_err());
        let bad = ResiliencePolicy::default().with_quarantine(QuarantineConfig {
            slow_factor: 0.5,
            ..QuarantineConfig::default()
        });
        assert!(bad.validate().is_err());
        let bad = ResiliencePolicy::hedged(HedgeConfig {
            max_live_attempts: 1,
            ..HedgeConfig::legacy_speculation()
        });
        assert!(bad.validate().is_err());
    }
}
