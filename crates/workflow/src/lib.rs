//! # ppc-workflow — staged DAG execution as a first-class layer
//!
//! The paper compares its three paradigms on map-only batches, yet its own
//! DryadLINQ numbers come from a staged DAG runtime, and real biomedical
//! pipelines chain those batches (assemble → annotate → interpolate). This
//! crate lifts the staged-execution structure out of its two private homes
//! — `ppc-dryad`'s vertex graph and `ppc-mapreduce`'s iterative driver —
//! into one shared model every engine can run:
//!
//! * [`Workflow`] / [`Stage`] — a DAG of pleasingly-parallel stages joined
//!   by data edges. Each stage is exactly the unit the existing engines
//!   already execute (a set of [`ppc_core::task::TaskSpec`]s plus an
//!   executor), so any
//!   paradigm runs any workflow stage-by-stage.
//! * [`DataPolicy`] — per-edge materialize-vs-pipeline choice. A
//!   `Materialize` edge pays a storage round-trip between stages (the
//!   "Data Sharing Options" cost that dominates multi-stage workflows on
//!   cloud object stores); a `Pipeline` edge hands bytes over in memory.
//! * [`StageAdapter`] — the deterministic glue mapping one stage's outputs
//!   to the next stage's inputs, canonicalized so every paradigm produces
//!   byte-identical pipeline outputs.
//! * [`iterate`] — the Twister-style fixed-point engine (map / reduce /
//!   combine to convergence over a static cached data set), rebased here
//!   from `ppc-mapreduce::iterative` so loops are a workflow-layer
//!   concept, not a MapReduce private.
//!
//! The drivers live in `ppc-exec` (`Engine::run_workflow` /
//! `Engine::simulate_workflow`); this crate is the pure model: topology,
//! validation, scheduling order, and the materialization cost model.

pub mod iterate;
pub mod model;

pub use iterate::{
    run_fixed_point, Combiner, FixedPointJob, FixedPointReport, IterMapper, IterReducer,
};
pub use model::{
    DataPolicy, FnAdapter, MaterializeModel, Stage, StageAdapter, StageEdge, Workflow,
};
