//! The workflow model: stages, data edges, topology, and the
//! materialization cost model.

use ppc_core::exec::Executor;
use ppc_core::task::TaskSpec;
use ppc_core::{PpcError, Result};
use ppc_resilience::ResiliencePolicy;
use std::sync::Arc;

/// How a data edge moves bytes between two stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPolicy {
    /// Round-trip through shared storage: the upstream stage's outputs are
    /// written out and the downstream stage reads them back. Durable and
    /// restartable, but the barrier pays [`MaterializeModel::transfer_s`]
    /// of extra latency — the dominant cost of multi-stage workflows on
    /// cloud object stores.
    #[default]
    Materialize,
    /// In-memory handoff on the driver: no storage round-trip, no extra
    /// latency, but the intermediate exists only for the duration of the
    /// run.
    Pipeline,
}

impl DataPolicy {
    pub fn name(self) -> &'static str {
        match self {
            DataPolicy::Materialize => "materialize",
            DataPolicy::Pipeline => "pipeline",
        }
    }
}

/// Cost model for a [`DataPolicy::Materialize`] edge: one storage
/// round-trip of the upstream stage's output bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaterializeModel {
    /// Effective write-then-read bandwidth through the shared store.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed per-barrier latency (request round-trips, commit visibility).
    pub latency_s: f64,
}

impl Default for MaterializeModel {
    fn default() -> Self {
        // Calibrated loosely to the paper's storage path: tens of MB/s of
        // effective blob throughput plus a fixed commit round-trip.
        MaterializeModel {
            bandwidth_bytes_per_s: 80e6,
            latency_s: 0.25,
        }
    }
}

impl MaterializeModel {
    /// Seconds one materialization barrier adds for `bytes` of
    /// intermediate data.
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s.max(1.0)
    }
}

/// Maps one stage's outputs into the next stage's input payloads.
///
/// Implementations must be deterministic in the *set* of upstream outputs
/// (the engines deliver them in completion order, which differs across
/// paradigms and runs); canonicalize before transforming. [`FnAdapter`]
/// does this by sorting on the trailing file name of each output key, the
/// one component all three paradigms preserve.
pub trait StageAdapter: Send + Sync {
    /// Produce one payload per downstream task, aligned with
    /// `downstream` order.
    fn adapt(
        &self,
        upstream: &[(String, Vec<u8>)],
        downstream: &[TaskSpec],
    ) -> Result<Vec<Vec<u8>>>;

    fn name(&self) -> &str {
        "adapter"
    }
}

/// The trailing file-name component of an output key — the part of the
/// namespace every paradigm preserves (Classic keeps full output keys,
/// Hadoop and Dryad re-root them under their own directories).
pub fn key_basename(key: &str) -> &str {
    key.rsplit('/').next().unwrap_or(key)
}

/// One-to-one adapter: upstream outputs are sorted by
/// [`key_basename`] and each is transformed independently into the
/// payload of the same-ranked downstream task.
pub struct FnAdapter {
    label: String,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&str, &[u8]) -> Result<Vec<u8>> + Send + Sync>,
}

impl FnAdapter {
    pub fn new(
        label: impl Into<String>,
        f: impl Fn(&str, &[u8]) -> Result<Vec<u8>> + Send + Sync + 'static,
    ) -> Arc<FnAdapter> {
        Arc::new(FnAdapter {
            label: label.into(),
            f: Arc::new(f),
        })
    }

    /// The identity adapter: stage N's outputs become stage N+1's inputs
    /// byte-for-byte (e.g. contig FASTA flowing straight into annotation).
    pub fn identity() -> Arc<FnAdapter> {
        FnAdapter::new("identity", |_k, bytes| Ok(bytes.to_vec()))
    }
}

impl StageAdapter for FnAdapter {
    fn adapt(
        &self,
        upstream: &[(String, Vec<u8>)],
        downstream: &[TaskSpec],
    ) -> Result<Vec<Vec<u8>>> {
        if upstream.len() != downstream.len() {
            return Err(PpcError::InvalidState(format!(
                "adapter '{}': {} upstream outputs for {} downstream tasks",
                self.label,
                upstream.len(),
                downstream.len()
            )));
        }
        let mut ordered: Vec<&(String, Vec<u8>)> = upstream.iter().collect();
        ordered.sort_by_key(|(k, _)| key_basename(k));
        ordered
            .iter()
            .map(|(k, bytes)| (self.f)(key_basename(k), bytes))
            .collect()
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// One pleasingly-parallel stage: the unit every engine already executes.
#[derive(Clone)]
pub struct Stage {
    pub name: String,
    /// The stage's tasks (what the simulators consume; one per partition).
    pub specs: Vec<TaskSpec>,
    /// Executor for native runs; sim-only workflows may omit it.
    pub executor: Option<Arc<dyn Executor>>,
    /// Seed payloads for *source* stages, aligned with `specs`. Stages fed
    /// by a data edge must leave this empty.
    pub inputs: Vec<Vec<u8>>,
    /// Attempt budget per task, mapped onto each paradigm's own
    /// fault-tolerance mechanism.
    pub max_attempts: u32,
    /// Per-stage straggler defense override. A long-tailed stage can hedge
    /// aggressively while cheap stages keep the run context's policy — the
    /// straggler-aware piece of stage scheduling, composed from
    /// `ppc-resilience`.
    pub resilience: Option<ResiliencePolicy>,
    /// Message-redelivery timeout for queue-based engines (the Classic
    /// Cloud visibility timeout). `None` keeps each engine's own default,
    /// which is deliberately generous; stages with short tasks running
    /// under fault injection should set something close to their task
    /// duration so a killed worker's message redelivers promptly. Engines
    /// without a redelivery queue ignore it.
    pub visibility_timeout: Option<std::time::Duration>,
}

impl Stage {
    pub fn new(name: impl Into<String>, specs: Vec<TaskSpec>) -> Stage {
        Stage {
            name: name.into(),
            specs,
            executor: None,
            inputs: Vec::new(),
            max_attempts: 4,
            resilience: None,
            visibility_timeout: None,
        }
    }

    pub fn with_executor(mut self, executor: Arc<dyn Executor>) -> Stage {
        self.executor = Some(executor);
        self
    }

    pub fn with_inputs(mut self, inputs: Vec<Vec<u8>>) -> Stage {
        self.inputs = inputs;
        self
    }

    pub fn with_max_attempts(mut self, n: u32) -> Stage {
        self.max_attempts = n;
        self
    }

    pub fn with_visibility_timeout(mut self, t: std::time::Duration) -> Stage {
        self.visibility_timeout = Some(t);
        self
    }

    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Stage {
        self.resilience = Some(policy);
        self
    }

    /// Total output bytes this stage's task profiles promise — what a
    /// materialize edge out of this stage must move.
    pub fn output_bytes(&self) -> u64 {
        self.specs.iter().map(|t| t.profile.output_bytes).sum()
    }
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("name", &self.name)
            .field("tasks", &self.specs.len())
            .field("max_attempts", &self.max_attempts)
            .finish()
    }
}

/// A directed edge between stages. An edge with an adapter carries data;
/// one without is a pure ordering (barrier) dependency.
#[derive(Clone)]
pub struct StageEdge {
    pub from: usize,
    pub to: usize,
    pub policy: DataPolicy,
    pub adapter: Option<Arc<dyn StageAdapter>>,
}

impl std::fmt::Debug for StageEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageEdge")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("policy", &self.policy.name())
            .field("data", &self.adapter.is_some())
            .finish()
    }
}

/// A DAG of stages with data dependencies — the shared structure behind
/// Dryad's vertex graph, the iterative driver's loop body, and (as the
/// degenerate single-stage case) every map-only [`Workload`] the engines
/// already run.
///
/// [`Workload`]: https://docs.rs/ppc-exec
#[derive(Clone, Debug)]
pub struct Workflow {
    pub name: String,
    pub stages: Vec<Stage>,
    pub edges: Vec<StageEdge>,
    /// Cost model for materialize edges (simulated runs).
    pub materialize: MaterializeModel,
}

impl Workflow {
    pub fn new(name: impl Into<String>) -> Workflow {
        Workflow {
            name: name.into(),
            stages: Vec::new(),
            edges: Vec::new(),
            materialize: MaterializeModel::default(),
        }
    }

    /// Add a stage; returns its index.
    pub fn add_stage(&mut self, stage: Stage) -> usize {
        self.stages.push(stage);
        self.stages.len() - 1
    }

    /// Connect `from` → `to` with a data adapter.
    pub fn connect(
        &mut self,
        from: usize,
        to: usize,
        policy: DataPolicy,
        adapter: Arc<dyn StageAdapter>,
    ) -> &mut Workflow {
        self.edges.push(StageEdge {
            from,
            to,
            policy,
            adapter: Some(adapter),
        });
        self
    }

    /// Connect `from` → `to` as an ordering/cost dependency without a data
    /// adapter (sim-only workflows, or control barriers).
    pub fn connect_ordering(
        &mut self,
        from: usize,
        to: usize,
        policy: DataPolicy,
    ) -> &mut Workflow {
        self.edges.push(StageEdge {
            from,
            to,
            policy,
            adapter: None,
        });
        self
    }

    pub fn with_materialize_model(mut self, model: MaterializeModel) -> Workflow {
        self.materialize = model;
        self
    }

    /// Edges feeding into stage `to`.
    pub fn in_edges(&self, to: usize) -> impl Iterator<Item = &StageEdge> {
        self.edges.iter().filter(move |e| e.to == to)
    }

    /// The single data edge feeding stage `to`, if any.
    pub fn data_in_edge(&self, to: usize) -> Option<&StageEdge> {
        self.edges
            .iter()
            .find(|e| e.to == to && e.adapter.is_some())
    }

    /// Sink stages (no outgoing edges): their outputs are the workflow's
    /// final outputs.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.stages.len())
            .filter(|&s| !self.edges.iter().any(|e| e.from == s))
            .collect()
    }

    /// Structural validation shared by native and simulated drivers.
    pub fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(PpcError::InvalidArgument("workflow has no stages".into()));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.specs.is_empty() {
                return Err(PpcError::InvalidArgument(format!(
                    "stage {} ({:?}) has no tasks",
                    i, s.name
                )));
            }
            if s.max_attempts == 0 {
                return Err(PpcError::InvalidArgument(format!(
                    "stage {:?} needs at least one attempt",
                    s.name
                )));
            }
        }
        for e in &self.edges {
            if e.from >= self.stages.len() || e.to >= self.stages.len() {
                return Err(PpcError::InvalidArgument(
                    "edge references unknown stage".into(),
                ));
            }
            if e.from == e.to {
                return Err(PpcError::InvalidArgument(
                    "self-loop is not a DAG edge".into(),
                ));
            }
        }
        for (i, s) in self.stages.iter().enumerate() {
            let data_in = self
                .edges
                .iter()
                .filter(|e| e.to == i && e.adapter.is_some());
            if data_in.count() > 1 {
                return Err(PpcError::InvalidArgument(format!(
                    "stage {:?} has more than one data in-edge",
                    s.name
                )));
            }
            if self.data_in_edge(i).is_some() && !s.inputs.is_empty() {
                return Err(PpcError::InvalidArgument(format!(
                    "stage {:?} is fed by a data edge but also carries seed inputs",
                    s.name
                )));
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Additional constraints for native execution: every stage needs an
    /// executor, and every source stage needs one payload per task.
    pub fn validate_native(&self) -> Result<()> {
        self.validate()?;
        for (i, s) in self.stages.iter().enumerate() {
            if s.executor.is_none() {
                return Err(PpcError::InvalidArgument(format!(
                    "stage {:?} has no executor (sim-only workflow?)",
                    s.name
                )));
            }
            if self.data_in_edge(i).is_none() && s.inputs.len() != s.specs.len() {
                return Err(PpcError::InvalidArgument(format!(
                    "source stage {:?} has {} payloads for {} tasks",
                    s.name,
                    s.inputs.len(),
                    s.specs.len()
                )));
            }
        }
        Ok(())
    }

    /// Kahn's algorithm with a deterministic tie-break (smallest stage
    /// index first): topological order, or an error if a cycle exists.
    pub fn topo_order(&self) -> Result<Vec<usize>> {
        let n = self.stages.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            if e.to < n {
                indegree[e.to] += 1;
            }
        }
        let mut ready: std::collections::BTreeSet<usize> =
            (0..n).filter(|&s| indegree[s] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&s) = ready.iter().next() {
            ready.remove(&s);
            order.push(s);
            for e in &self.edges {
                if e.from == s {
                    indegree[e.to] -= 1;
                    if indegree[e.to] == 0 {
                        ready.insert(e.to);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(PpcError::InvalidState("workflow contains a cycle".into()));
        }
        Ok(order)
    }

    /// Group stages into dependency levels (level = longest path from a
    /// source) — the wave structure a barrier scheduler executes, and the
    /// stage indices a Dryad vertex graph inherits.
    pub fn levels(&self) -> Result<Vec<Vec<usize>>> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.stages.len()];
        for &s in &order {
            for e in self.in_edges(s) {
                level[s] = level[s].max(level[e.from] + 1);
            }
        }
        let n_levels = level.iter().max().map(|m| m + 1).unwrap_or(0);
        let mut out = vec![Vec::new(); n_levels];
        for (s, &l) in level.iter().enumerate() {
            out[l].push(s);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::task::ResourceProfile;

    fn specs(stage: &str, n: usize) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                let mut p = ResourceProfile::cpu_bound(1.0);
                p.output_bytes = 1000;
                TaskSpec::new(i as u64, "t", format!("{stage}/f{i}"), p)
            })
            .collect()
    }

    fn diamond() -> Workflow {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3 (edge into 3 from 2 is ordering-only).
        let mut wf = Workflow::new("diamond");
        for name in ["a", "b", "c", "d"] {
            wf.add_stage(Stage::new(name, specs(name, 2)));
        }
        wf.connect(0, 1, DataPolicy::Materialize, FnAdapter::identity());
        wf.connect(0, 2, DataPolicy::Pipeline, FnAdapter::identity());
        wf.connect(1, 3, DataPolicy::Materialize, FnAdapter::identity());
        wf.connect_ordering(2, 3, DataPolicy::Pipeline);
        wf
    }

    #[test]
    fn topo_order_is_deterministic_and_respects_edges() {
        let wf = diamond();
        wf.validate().unwrap();
        let order = wf.topo_order().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        for e in &wf.edges {
            assert!(pos(e.from) < pos(e.to));
        }
    }

    #[test]
    fn levels_group_by_longest_path() {
        let wf = diamond();
        assert_eq!(wf.levels().unwrap(), vec![vec![0], vec![1, 2], vec![3]]);
        assert_eq!(wf.sinks(), vec![3]);
    }

    #[test]
    fn cycle_and_self_loop_rejected() {
        let mut wf = diamond();
        wf.connect_ordering(3, 0, DataPolicy::Pipeline);
        assert_eq!(wf.topo_order().unwrap_err().code(), "InvalidState");
        assert!(wf.validate().is_err());

        let mut wf = Workflow::new("loop");
        wf.add_stage(Stage::new("a", specs("a", 1)));
        wf.connect_ordering(0, 0, DataPolicy::Pipeline);
        assert!(wf.validate().is_err());
    }

    #[test]
    fn validation_rejects_malformed_workflows() {
        assert!(Workflow::new("empty").validate().is_err());

        let mut wf = Workflow::new("no-tasks");
        wf.add_stage(Stage::new("a", vec![]));
        assert!(wf.validate().is_err());

        // Two data in-edges into one stage.
        let mut wf = Workflow::new("fan-in");
        wf.add_stage(Stage::new("a", specs("a", 1)));
        wf.add_stage(Stage::new("b", specs("b", 1)));
        wf.add_stage(Stage::new("c", specs("c", 1)));
        wf.connect(0, 2, DataPolicy::Materialize, FnAdapter::identity());
        wf.connect(1, 2, DataPolicy::Materialize, FnAdapter::identity());
        assert!(wf.validate().is_err());

        // Derived stage carrying seed inputs.
        let mut wf = Workflow::new("double-fed");
        wf.add_stage(Stage::new("a", specs("a", 1)));
        wf.add_stage(Stage::new("b", specs("b", 1)).with_inputs(vec![vec![1]]));
        wf.connect(0, 1, DataPolicy::Materialize, FnAdapter::identity());
        assert!(wf.validate().is_err());

        // Edge out of range.
        let mut wf = Workflow::new("bad-edge");
        wf.add_stage(Stage::new("a", specs("a", 1)));
        wf.connect_ordering(0, 9, DataPolicy::Pipeline);
        assert!(wf.validate().is_err());
    }

    #[test]
    fn native_validation_needs_executors_and_payloads() {
        let wf = diamond();
        // Sim-only (no executors) passes validate but not validate_native.
        assert!(wf.validate().is_ok());
        assert!(wf.validate_native().is_err());
    }

    #[test]
    fn fn_adapter_canonicalizes_on_basename() {
        let adapter = FnAdapter::new("upper", |_k, b| Ok(b.to_ascii_uppercase()));
        // Upstream arrives in completion order with paradigm-specific
        // prefixes; adaptation must not depend on either.
        let upstream = vec![
            ("rep0/x/f1.out".to_string(), b"bb".to_vec()),
            ("other-prefix/f0.out".to_string(), b"aa".to_vec()),
        ];
        let down = specs("d", 2);
        let got = adapter.adapt(&upstream, &down).unwrap();
        assert_eq!(got, vec![b"AA".to_vec(), b"BB".to_vec()]);
        assert!(adapter.adapt(&upstream, &specs("d", 3)).is_err());
    }

    #[test]
    fn materialize_model_costs_latency_plus_bandwidth() {
        let m = MaterializeModel {
            bandwidth_bytes_per_s: 100.0,
            latency_s: 2.0,
        };
        assert!((m.transfer_s(1000) - 12.0).abs() < 1e-12);
        let wf = diamond();
        assert_eq!(wf.stages[0].output_bytes(), 2000);
    }
}
