//! The fixed-point iteration engine — Twister-style loops as a
//! workflow-layer concept.
//!
//! Rebased here from `ppc-mapreduce::iterative`: the loop body (broadcast →
//! parallel map over a static cached data set → deterministic shuffle →
//! reduce → combine/converge) has nothing MapReduce-specific in it, so it
//! now lives beside the DAG model and `ppc-mapreduce` keeps only thin
//! deprecated shims plus the HDFS cache bootstrap.

use ppc_core::{PpcError, Result};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Map function with a read-only broadcast value.
pub trait IterMapper<B>: Send + Sync {
    fn map(&self, key: &str, value: &[u8], broadcast: &B) -> Result<Vec<(String, Vec<u8>)>>;
}

/// Reduce function: all values for one key.
pub trait IterReducer: Send + Sync {
    fn reduce(&self, key: &str, values: &[Vec<u8>]) -> Result<Vec<u8>>;
}

/// Folds the reduce outputs into the next broadcast value and decides
/// whether the computation has converged.
pub trait Combiner<B>: Send + Sync {
    fn combine(&self, reduced: &[(String, Vec<u8>)], previous: &B) -> Result<(B, bool)>;
}

/// A fixed-point job description. The static data itself is passed to
/// [`run_fixed_point`] as an already-cached split list — how it got cached
/// (HDFS read, blob download, in-memory) is the caller's concern.
#[derive(Debug, Clone)]
pub struct FixedPointJob {
    pub name: String,
    /// Hard iteration cap (convergence may stop earlier).
    pub max_iterations: usize,
    /// Map parallelism (worker threads).
    pub parallelism: usize,
}

impl FixedPointJob {
    pub fn new(name: impl Into<String>) -> FixedPointJob {
        FixedPointJob {
            name: name.into(),
            max_iterations: 50,
            parallelism: 4,
        }
    }

    pub fn with_max_iterations(mut self, n: usize) -> FixedPointJob {
        self.max_iterations = n;
        self
    }

    pub fn with_parallelism(mut self, n: usize) -> FixedPointJob {
        self.parallelism = n;
        self
    }
}

/// Outcome of a fixed-point run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedPointReport {
    pub iterations: usize,
    pub converged: bool,
    /// Input splits served from the in-memory cache instead of storage —
    /// everything after the first pass.
    pub cache_hits: usize,
}

/// Run a map/reduce/combine loop to convergence over a static cached data
/// set (Twister's defining optimization: the splits are read once, ever).
pub fn run_fixed_point<B: Clone + Send + Sync>(
    cache: &[(String, Vec<u8>)],
    job: &FixedPointJob,
    mapper: &dyn IterMapper<B>,
    reducer: &dyn IterReducer,
    combiner: &dyn Combiner<B>,
    initial: B,
) -> Result<(B, FixedPointReport)> {
    if cache.is_empty() {
        return Err(PpcError::InvalidArgument(
            "iterative job has no inputs".into(),
        ));
    }
    if job.max_iterations == 0 {
        return Err(PpcError::InvalidArgument(
            "need at least one iteration".into(),
        ));
    }

    let mut broadcast = initial;
    let mut iterations = 0;
    let mut converged = false;
    let mut cache_hits = 0;

    while iterations < job.max_iterations {
        iterations += 1;
        if iterations > 1 {
            cache_hits += cache.len();
        }

        // Map phase over the cached splits, in parallel chunks.
        let emitted: Mutex<Vec<(String, Vec<u8>)>> = Mutex::new(Vec::new());
        let error: Mutex<Option<PpcError>> = Mutex::new(None);
        let chunk = cache.len().div_ceil(job.parallelism.max(1));
        std::thread::scope(|scope| {
            for part in cache.chunks(chunk.max(1)) {
                let emitted = &emitted;
                let error = &error;
                let broadcast = &broadcast;
                scope.spawn(move || {
                    for (key, value) in part {
                        match mapper.map(key, value, broadcast) {
                            Ok(mut out) => emitted.lock().unwrap().append(&mut out),
                            Err(e) => {
                                let mut slot = error.lock().unwrap();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = error.into_inner().unwrap() {
            return Err(e);
        }

        // Shuffle + reduce (deterministic key order).
        let mut grouped: BTreeMap<String, Vec<Vec<u8>>> = BTreeMap::new();
        for (k, v) in emitted.into_inner().unwrap() {
            grouped.entry(k).or_default().push(v);
        }
        let reduced: Vec<(String, Vec<u8>)> = grouped
            .into_iter()
            .map(|(k, vs)| reducer.reduce(&k, &vs).map(|r| (k, r)))
            .collect::<Result<_>>()?;

        // Combine into the next broadcast.
        let (next, done) = combiner.combine(&reduced, &broadcast)?;
        broadcast = next;
        if done {
            converged = true;
            break;
        }
    }

    Ok((
        broadcast,
        FixedPointReport {
            iterations,
            converged,
            cache_hits,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy fixed point: broadcast x, map emits value + x per split, reduce
    /// sums, combine averages toward a target. Converges when the update
    /// stops moving.
    struct AddMapper;
    impl IterMapper<f64> for AddMapper {
        fn map(&self, key: &str, value: &[u8], b: &f64) -> Result<Vec<(String, Vec<u8>)>> {
            let v = value[0] as f64 + b;
            Ok(vec![(key.to_string(), v.to_le_bytes().to_vec())])
        }
    }
    struct SumReducer;
    impl IterReducer for SumReducer {
        fn reduce(&self, _k: &str, values: &[Vec<u8>]) -> Result<Vec<u8>> {
            let s: f64 = values
                .iter()
                .map(|v| f64::from_le_bytes(v.as_slice().try_into().unwrap()))
                .sum();
            Ok(s.to_le_bytes().to_vec())
        }
    }
    struct Halver;
    impl Combiner<f64> for Halver {
        fn combine(&self, reduced: &[(String, Vec<u8>)], prev: &f64) -> Result<(f64, bool)> {
            let total: f64 = reduced
                .iter()
                .map(|(_, v)| f64::from_le_bytes(v.as_slice().try_into().unwrap()))
                .sum();
            let next = total / 100.0;
            Ok((next, (next - prev).abs() < 1e-12))
        }
    }

    fn splits(n: usize) -> Vec<(String, Vec<u8>)> {
        (0..n).map(|i| (format!("s{i}"), vec![i as u8])).collect()
    }

    #[test]
    fn converges_and_counts_cache_hits() {
        let cache = splits(4);
        let job = FixedPointJob::new("toy").with_max_iterations(30);
        let (x, report) =
            run_fixed_point(&cache, &job, &AddMapper, &SumReducer, &Halver, 0.0).unwrap();
        assert!(report.converged);
        assert!(report.iterations > 1);
        assert_eq!(report.cache_hits, (report.iterations - 1) * cache.len());
        // Fixed point of x = (6 + 4x)/100 is 1/16.
        assert!((x - 0.0625).abs() < 1e-9);
    }

    #[test]
    fn iteration_cap_bounds_nonconverging_runs() {
        struct Never;
        impl Combiner<f64> for Never {
            fn combine(&self, _r: &[(String, Vec<u8>)], p: &f64) -> Result<(f64, bool)> {
                Ok((*p + 1.0, false))
            }
        }
        let (_, report) = run_fixed_point(
            &splits(2),
            &FixedPointJob::new("cap").with_max_iterations(3),
            &AddMapper,
            &SumReducer,
            &Never,
            0.0,
        )
        .unwrap();
        assert_eq!(report.iterations, 3);
        assert!(!report.converged);
    }

    #[test]
    fn validation_errors() {
        let job = FixedPointJob::new("x");
        assert!(run_fixed_point(&[], &job, &AddMapper, &SumReducer, &Halver, 0.0).is_err());
        let zero = FixedPointJob::new("x").with_max_iterations(0);
        assert!(run_fixed_point(&splits(1), &zero, &AddMapper, &SumReducer, &Halver, 0.0).is_err());
    }

    #[test]
    fn map_errors_propagate_first_wins() {
        struct Failing;
        impl IterMapper<f64> for Failing {
            fn map(&self, key: &str, _v: &[u8], _b: &f64) -> Result<Vec<(String, Vec<u8>)>> {
                Err(PpcError::InvalidState(format!("boom {key}")))
            }
        }
        let err = run_fixed_point(
            &splits(3),
            &FixedPointJob::new("fail"),
            &Failing,
            &SumReducer,
            &Halver,
            0.0,
        )
        .unwrap_err();
        assert!(err.to_string().contains("boom"));
    }
}
