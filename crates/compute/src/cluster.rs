//! Provisioned fleets: "N instances of type T with W workers per instance".
//!
//! The paper labels its EC2 configurations `HCXL – 2 × 8` ("two
//! High-CPU-Extra-Large instances with 8 workers per instance", §3); a
//! [`Cluster`] is exactly that triple, shared by the native runtimes (which
//! spawn a thread per worker slot) and the simulator (which models a FIFO
//! server per instance).

use crate::billing::{instance_cost, CostBreakdown};
use crate::instance::InstanceType;

/// One provisioned machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Index within the cluster, 0-based.
    pub id: usize,
    pub itype: InstanceType,
    /// Worker processes configured on this node.
    pub workers: usize,
}

/// A homogeneous fleet of instances.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    name: String,
    nodes: Vec<Node>,
}

impl Cluster {
    /// Provision `n` instances of `itype` with `workers_per_node` workers
    /// each — the paper's `TYPE – n × w` notation.
    pub fn provision(itype: InstanceType, n: usize, workers_per_node: usize) -> Cluster {
        assert!(n > 0, "need at least one instance");
        assert!(
            workers_per_node > 0,
            "need at least one worker per instance"
        );
        let nodes = (0..n)
            .map(|id| Node {
                id,
                itype,
                workers: workers_per_node,
            })
            .collect();
        Cluster {
            name: format!("{} - {} x {}", itype.name, n, workers_per_node),
            nodes,
        }
    }

    /// Provision with one worker per core, the default configuration.
    pub fn provision_per_core(itype: InstanceType, n: usize) -> Cluster {
        Cluster::provision(itype, n, itype.cores)
    }

    /// The `TYPE – n × w` label used on the paper's figure axes.
    pub fn label(&self) -> &str {
        &self.name
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Instance type (homogeneous by construction).
    pub fn itype(&self) -> InstanceType {
        self.nodes[0].itype
    }

    /// Total worker slots across the fleet.
    pub fn total_workers(&self) -> usize {
        self.nodes.iter().map(|n| n.workers).sum()
    }

    /// Total physical cores across the fleet. The paper's "16 cores" studies
    /// fix this number while varying the instance type.
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.itype.cores).sum()
    }

    /// Cost of holding the whole fleet for `seconds`.
    pub fn cost(&self, seconds: f64) -> CostBreakdown {
        instance_cost(&self.itype(), self.n_nodes(), seconds)
    }

    /// Iterate `(node_id, worker_slot)` pairs — what the native runtimes
    /// spawn a thread for.
    pub fn worker_slots(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.nodes
            .iter()
            .flat_map(|n| (0..n.workers).map(move |w| (n.id, w)))
    }

    /// Provision one more instance of the same type (elastic scale-out);
    /// returns the new node's id. The label keeps the *initial* shape —
    /// elastic fleets report their size over time via the fleet timeline.
    pub fn grow(&mut self, workers: usize) -> usize {
        assert!(workers > 0, "need at least one worker per instance");
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            itype: self.itype(),
            workers,
        });
        id
    }

    /// Release an instance (elastic scale-in). The node keeps its id slot
    /// so historical ids stay stable; it simply stops contributing slots.
    /// The last remaining instance cannot be retired.
    pub fn retire(&mut self, node_id: usize) -> Node {
        assert!(self.nodes.len() > 1, "cannot retire the last instance");
        let pos = self
            .nodes
            .iter()
            .position(|n| n.id == node_id)
            .unwrap_or_else(|| panic!("node {node_id} not in cluster"));
        self.nodes.remove(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{EC2_HCXL, EC2_LARGE};
    use ppc_core::money::Usd;

    #[test]
    fn paper_notation_label() {
        let c = Cluster::provision(EC2_HCXL, 2, 8);
        assert_eq!(c.label(), "HCXL - 2 x 8");
        assert_eq!(c.total_workers(), 16);
        assert_eq!(c.total_cores(), 16);
    }

    #[test]
    fn sixteen_core_configs_match_paper_figure_axes() {
        // Figure 3's axis: L-8x2, XL-4x4, HCXL-2x8, HM4XL-2x8 — all 16 cores.
        for (t, n) in [
            (EC2_LARGE, 8),
            (crate::instance::EC2_XLARGE, 4),
            (EC2_HCXL, 2),
            (crate::instance::EC2_HM4XL, 2),
        ] {
            let c = Cluster::provision_per_core(t, n);
            assert_eq!(c.total_cores(), 16, "{}", c.label());
        }
    }

    #[test]
    fn worker_slots_enumerate_all() {
        let c = Cluster::provision(EC2_HCXL, 2, 3);
        let slots: Vec<_> = c.worker_slots().collect();
        assert_eq!(slots, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn fleet_cost() {
        let c = Cluster::provision(EC2_HCXL, 16, 8);
        assert_eq!(c.cost(1800.0).compute_cost, Usd::cents(1088));
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_cluster_rejected() {
        Cluster::provision(EC2_HCXL, 0, 8);
    }

    #[test]
    fn grow_and_retire_track_slots() {
        let mut c = Cluster::provision(EC2_HCXL, 2, 8);
        assert_eq!(c.total_workers(), 16);
        let id = c.grow(8);
        assert_eq!(id, 2);
        assert_eq!(c.n_nodes(), 3);
        assert_eq!(c.total_workers(), 24);
        let gone = c.retire(0);
        assert_eq!(gone.id, 0);
        assert_eq!(c.total_workers(), 16);
        // Remaining ids are stable.
        let ids: Vec<usize> = c.nodes().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot retire the last instance")]
    fn retire_last_instance_rejected() {
        let mut c = Cluster::provision(EC2_HCXL, 1, 8);
        c.retire(0);
    }
}
