//! Billing: hourly cloud charges and owned-cluster TCO.
//!
//! The paper's §3 defines two cloud cost views, both reproduced here:
//!
//! * **Compute Cost (hour units)** — the computation owns every started
//!   hour of every instance: `ceil(runtime) × n × rate`.
//! * **Amortized Cost** — the instance does useful work for the rest of the
//!   hour, so the computation pays only its fraction: `runtime × n × rate`.
//!
//! Table 4 also compares against an *owned* cluster: purchase price
//! depreciated over 3 years plus yearly maintenance, divided across the
//! hours the cluster is actually utilized. [`OwnedClusterCost`] implements
//! that model.

use crate::instance::InstanceType;
use ppc_core::money::Usd;

/// Cost of running `n` instances of a type for a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Whole-hour billing (what the provider actually charges).
    pub compute_cost: Usd,
    /// Fraction-of-hour billing (the paper's "Amortized Cost").
    pub amortized_cost: Usd,
}

/// Cost of `n` instances held for `seconds`.
pub fn instance_cost(itype: &InstanceType, n: usize, seconds: f64) -> CostBreakdown {
    assert!(seconds >= 0.0, "negative runtime");
    let hours_exact = seconds / 3600.0;
    let hours_billed = hours_exact
        .ceil()
        .max(if seconds > 0.0 { 1.0 } else { 0.0 });
    let fleet_hourly = itype.cost_per_hour * n as i64;
    CostBreakdown {
        compute_cost: fleet_hourly.scale(hours_billed),
        amortized_cost: fleet_hourly.scale(hours_exact),
    }
}

/// Table 4's owned-cluster model: purchase cost depreciated linearly plus
/// yearly maintenance (power, cooling, administration), charged against the
/// fraction of cluster time the owner manages to keep busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnedClusterCost {
    pub purchase: Usd,
    pub depreciation_years: u32,
    pub yearly_maintenance: Usd,
}

impl OwnedClusterCost {
    /// The paper's internal cluster: ~$500,000 purchase over 3 years plus
    /// ~$150,000/year maintenance (§4.3).
    pub fn paper_internal_cluster() -> OwnedClusterCost {
        OwnedClusterCost {
            purchase: Usd::dollars(500_000),
            depreciation_years: 3,
            yearly_maintenance: Usd::dollars(150_000),
        }
    }

    /// Yearly cost of owning the cluster.
    pub fn yearly_cost(&self) -> Usd {
        self.purchase.scale(1.0 / self.depreciation_years as f64) + self.yearly_maintenance
    }

    /// Cost per wall-clock hour of cluster existence.
    pub fn hourly_rate(&self) -> Usd {
        self.yearly_cost().scale(1.0 / (365.0 * 24.0))
    }

    /// Cost attributable to a job occupying the whole cluster for
    /// `job_hours`, when the cluster achieves `utilization` (0–1] overall:
    /// idle time is overhead spread over the useful hours.
    pub fn job_cost(&self, job_hours: f64, utilization: f64) -> Usd {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization in (0,1]"
        );
        self.hourly_rate().scale(job_hours / utilization)
    }
}

/// Walker-style lease-or-buy analysis (the paper's §7 discussion of
/// Walker, "The Real Cost of a CPU Hour"): at what utilization does owning
/// the cluster beat leasing equivalent cloud capacity?
#[derive(Debug, Clone, Copy)]
pub struct LeaseOrBuy {
    /// TCO model of the candidate purchase.
    pub owned: OwnedClusterCost,
    /// Cloud fleet that matches the owned cluster's capacity.
    pub cloud_equivalent_hourly: Usd,
}

impl LeaseOrBuy {
    /// Cost of owning for a year at a given utilization, per *useful* hour.
    pub fn owned_cost_per_useful_hour(&self, utilization: f64) -> Usd {
        assert!(utilization > 0.0 && utilization <= 1.0);
        self.owned.hourly_rate().scale(1.0 / utilization)
    }

    /// Cloud cost per useful hour (you only lease when you have work).
    pub fn cloud_cost_per_useful_hour(&self) -> Usd {
        self.cloud_equivalent_hourly
    }

    /// Utilization above which owning is cheaper than leasing; `None` when
    /// owning never wins (cloud cheaper even at 100% utilization).
    pub fn breakeven_utilization(&self) -> Option<f64> {
        let owned = self.owned.hourly_rate().as_f64();
        let cloud = self.cloud_equivalent_hourly.as_f64();
        if cloud <= 0.0 {
            return None;
        }
        let u = owned / cloud;
        (u <= 1.0).then_some(u)
    }

    /// Decision at a given expected utilization.
    pub fn should_buy(&self, utilization: f64) -> bool {
        self.owned_cost_per_useful_hour(utilization) < self.cloud_cost_per_useful_hour()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{AZURE_SMALL, EC2_HCXL};

    #[test]
    fn compute_cost_bills_whole_hours() {
        // 16 HCXL for 35 minutes: billed a full hour each -> $10.88.
        let c = instance_cost(&EC2_HCXL, 16, 35.0 * 60.0);
        assert_eq!(c.compute_cost, Usd::cents(1088));
        // Amortized: 35/60 of that.
        assert_eq!(c.amortized_cost, Usd::cents(1088).scale(35.0 / 60.0));
    }

    #[test]
    fn paper_table4_compute_costs() {
        // Table 4: EC2 0.68$ × 16 HCXL = 10.88$, Azure 0.12$ × 128 Small = 15.36$
        // (both jobs fit within one billed hour).
        let ec2 = instance_cost(&EC2_HCXL, 16, 3000.0);
        assert_eq!(ec2.compute_cost, Usd::cents(1088));
        let azure = instance_cost(&AZURE_SMALL, 128, 3000.0);
        assert_eq!(azure.compute_cost, Usd::cents(1536));
    }

    #[test]
    fn second_hour_starts_a_new_block() {
        let one = instance_cost(&EC2_HCXL, 1, 3600.0);
        assert_eq!(one.compute_cost, Usd::cents(68));
        let over = instance_cost(&EC2_HCXL, 1, 3601.0);
        assert_eq!(over.compute_cost, Usd::cents(136));
    }

    #[test]
    fn zero_runtime_costs_nothing() {
        let c = instance_cost(&EC2_HCXL, 16, 0.0);
        assert_eq!(c.compute_cost, Usd::ZERO);
        assert_eq!(c.amortized_cost, Usd::ZERO);
    }

    #[test]
    fn owned_cluster_hourly_rate() {
        let c = OwnedClusterCost::paper_internal_cluster();
        // (500k/3 + 150k) / 8760 ≈ $36.15/h.
        let rate = c.hourly_rate().as_f64();
        assert!((rate - 36.15).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn utilization_raises_cost() {
        // Paper: $8.25 @80%, $9.43 @70%, $11.01 @60% for the same job.
        // The ratios follow 1/utilization exactly.
        let c = OwnedClusterCost::paper_internal_cluster();
        let h = 0.1826; // job hours tuned so 80% lands near the paper value
        let at80 = c.job_cost(h, 0.8).as_f64();
        let at70 = c.job_cost(h, 0.7).as_f64();
        let at60 = c.job_cost(h, 0.6).as_f64();
        assert!((at80 - 8.25).abs() < 0.05, "at80={at80}");
        // Ratios follow 1/utilization up to micro-dollar rounding.
        assert!((at70 / at80 - 0.8 / 0.7).abs() < 1e-5);
        assert!((at60 / at80 - 0.8 / 0.6).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "utilization in (0,1]")]
    fn zero_utilization_rejected() {
        OwnedClusterCost::paper_internal_cluster().job_cost(1.0, 0.0);
    }

    #[test]
    fn lease_or_buy_breakeven() {
        // The paper's internal cluster (~$36.15/h TCO) vs renting its
        // capacity on EC2: 32 nodes x 24 cores ≈ 96 HCXL instances ≈
        // $65.28/h. Owning wins above ~55% utilization.
        let analysis = LeaseOrBuy {
            owned: OwnedClusterCost::paper_internal_cluster(),
            cloud_equivalent_hourly: Usd::cents(68) * 96,
        };
        let breakeven = analysis.breakeven_utilization().expect("owning can win");
        assert!((0.5..0.62).contains(&breakeven), "breakeven {breakeven}");
        assert!(analysis.should_buy(0.8));
        assert!(!analysis.should_buy(0.3));
        // Wilkening et al's observation (paper §7): at 100% utilization the
        // local cluster is cheaper than the cloud.
        assert!(analysis.owned_cost_per_useful_hour(1.0) < analysis.cloud_cost_per_useful_hour());
    }

    #[test]
    fn lease_or_buy_cloud_always_wins_for_expensive_clusters() {
        let analysis = LeaseOrBuy {
            owned: OwnedClusterCost {
                purchase: Usd::dollars(10_000_000),
                depreciation_years: 3,
                yearly_maintenance: Usd::dollars(1_000_000),
            },
            cloud_equivalent_hourly: Usd::dollars(100),
        };
        assert!(analysis.breakeven_utilization().is_none());
        assert!(!analysis.should_buy(1.0));
    }
}
