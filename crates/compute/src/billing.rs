//! Billing: hourly cloud charges and owned-cluster TCO.
//!
//! The paper's §3 defines two cloud cost views, both reproduced here:
//!
//! * **Compute Cost (hour units)** — the computation owns every started
//!   hour of every instance: `ceil(runtime) × n × rate`.
//! * **Amortized Cost** — the instance does useful work for the rest of the
//!   hour, so the computation pays only its fraction: `runtime × n × rate`.
//!
//! Table 4 also compares against an *owned* cluster: purchase price
//! depreciated over 3 years plus yearly maintenance, divided across the
//! hours the cluster is actually utilized. [`OwnedClusterCost`] implements
//! that model.

use crate::instance::InstanceType;
use ppc_core::money::Usd;

/// Cost of running `n` instances of a type for a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBreakdown {
    /// Whole-hour billing (what the provider actually charges).
    pub compute_cost: Usd,
    /// Fraction-of-hour billing (the paper's "Amortized Cost").
    pub amortized_cost: Usd,
}

/// Cost of `n` instances held for `seconds`.
pub fn instance_cost(itype: &InstanceType, n: usize, seconds: f64) -> CostBreakdown {
    assert!(seconds >= 0.0, "negative runtime");
    let hours_exact = seconds / 3600.0;
    let hours_billed = hours_exact
        .ceil()
        .max(if seconds > 0.0 { 1.0 } else { 0.0 });
    let fleet_hourly = itype.cost_per_hour * n as i64;
    CostBreakdown {
        compute_cost: fleet_hourly.scale(hours_billed),
        amortized_cost: fleet_hourly.scale(hours_exact),
    }
}

/// Per-instance billing clocks for an *elastic* fleet, where instances
/// launch and retire at different moments and each one's billed hours tick
/// from its own launch time — the cost model autoscaling must answer to.
///
/// The `billing_hour_s` knob is 3600 in production; tests and compressed-
/// time examples shrink it so whole "hours" elapse in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLedger {
    itype: InstanceType,
    billing_hour_s: f64,
    /// `(launched_at_s, retired_at_s)`; `None` = still running.
    intervals: Vec<(f64, Option<f64>)>,
}

impl FleetLedger {
    pub fn new(itype: InstanceType, billing_hour_s: f64) -> FleetLedger {
        assert!(billing_hour_s > 0.0, "billing hour must be positive");
        FleetLedger {
            itype,
            billing_hour_s,
            intervals: Vec::new(),
        }
    }

    /// Record an instance launch; returns its ledger index.
    pub fn launch(&mut self, at_s: f64) -> usize {
        self.intervals.push((at_s, None));
        self.intervals.len() - 1
    }

    /// Record an instance retirement.
    pub fn retire(&mut self, idx: usize, at_s: f64) {
        let (start, end) = &mut self.intervals[idx];
        assert!(end.is_none(), "instance {idx} already retired");
        assert!(at_s >= *start, "retire before launch");
        *end = Some(at_s);
    }

    /// Number of instances ever launched.
    pub fn launched(&self) -> usize {
        self.intervals.len()
    }

    /// Exact instance-seconds used up to `end_s` (instances still running
    /// are charged through `end_s`).
    pub fn used_seconds(&self, end_s: f64) -> f64 {
        self.intervals
            .iter()
            .map(|(start, end)| (end.unwrap_or(end_s).min(end_s) - start).max(0.0))
            .sum()
    }

    /// Billed instance-hours up to `end_s`: each instance pays every
    /// *started* billing hour of its own clock.
    pub fn billed_hours(&self, end_s: f64) -> u64 {
        self.intervals
            .iter()
            .map(|(start, end)| {
                let used = (end.unwrap_or(end_s).min(end_s) - start).max(0.0);
                (used / self.billing_hour_s).ceil() as u64
            })
            .sum()
    }

    /// Billed-but-unused instance-hours: the money autoscaling wastes when
    /// it retires instances far from their hour boundary.
    pub fn wasted_hours(&self, end_s: f64) -> f64 {
        self.billed_hours(end_s) as f64 - self.used_seconds(end_s) / self.billing_hour_s
    }

    /// Fleet cost up to `end_s`. `compute_cost` bills whole per-instance
    /// hours; `amortized_cost` bills exact usage (the paper's two views,
    /// generalized to staggered lifetimes).
    pub fn cost(&self, end_s: f64) -> CostBreakdown {
        CostBreakdown {
            compute_cost: self
                .itype
                .cost_per_hour
                .scale(self.billed_hours(end_s) as f64),
            amortized_cost: self
                .itype
                .cost_per_hour
                .scale(self.used_seconds(end_s) / self.billing_hour_s),
        }
    }
}

/// Table 4's owned-cluster model: purchase cost depreciated linearly plus
/// yearly maintenance (power, cooling, administration), charged against the
/// fraction of cluster time the owner manages to keep busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnedClusterCost {
    pub purchase: Usd,
    pub depreciation_years: u32,
    pub yearly_maintenance: Usd,
}

impl OwnedClusterCost {
    /// The paper's internal cluster: ~$500,000 purchase over 3 years plus
    /// ~$150,000/year maintenance (§4.3).
    pub fn paper_internal_cluster() -> OwnedClusterCost {
        OwnedClusterCost {
            purchase: Usd::dollars(500_000),
            depreciation_years: 3,
            yearly_maintenance: Usd::dollars(150_000),
        }
    }

    /// Yearly cost of owning the cluster.
    pub fn yearly_cost(&self) -> Usd {
        self.purchase.scale(1.0 / self.depreciation_years as f64) + self.yearly_maintenance
    }

    /// Cost per wall-clock hour of cluster existence.
    pub fn hourly_rate(&self) -> Usd {
        self.yearly_cost().scale(1.0 / (365.0 * 24.0))
    }

    /// Cost attributable to a job occupying the whole cluster for
    /// `job_hours`, when the cluster achieves `utilization` (0–1] overall:
    /// idle time is overhead spread over the useful hours.
    pub fn job_cost(&self, job_hours: f64, utilization: f64) -> Usd {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization in (0,1]"
        );
        self.hourly_rate().scale(job_hours / utilization)
    }
}

/// Walker-style lease-or-buy analysis (the paper's §7 discussion of
/// Walker, "The Real Cost of a CPU Hour"): at what utilization does owning
/// the cluster beat leasing equivalent cloud capacity?
#[derive(Debug, Clone, Copy)]
pub struct LeaseOrBuy {
    /// TCO model of the candidate purchase.
    pub owned: OwnedClusterCost,
    /// Cloud fleet that matches the owned cluster's capacity.
    pub cloud_equivalent_hourly: Usd,
}

impl LeaseOrBuy {
    /// Cost of owning for a year at a given utilization, per *useful* hour.
    pub fn owned_cost_per_useful_hour(&self, utilization: f64) -> Usd {
        assert!(utilization > 0.0 && utilization <= 1.0);
        self.owned.hourly_rate().scale(1.0 / utilization)
    }

    /// Cloud cost per useful hour (you only lease when you have work).
    pub fn cloud_cost_per_useful_hour(&self) -> Usd {
        self.cloud_equivalent_hourly
    }

    /// Utilization above which owning is cheaper than leasing; `None` when
    /// owning never wins (cloud cheaper even at 100% utilization).
    pub fn breakeven_utilization(&self) -> Option<f64> {
        let owned = self.owned.hourly_rate().as_f64();
        let cloud = self.cloud_equivalent_hourly.as_f64();
        if cloud <= 0.0 {
            return None;
        }
        let u = owned / cloud;
        (u <= 1.0).then_some(u)
    }

    /// Decision at a given expected utilization.
    pub fn should_buy(&self, utilization: f64) -> bool {
        self.owned_cost_per_useful_hour(utilization) < self.cloud_cost_per_useful_hour()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{AZURE_SMALL, EC2_HCXL};

    #[test]
    fn compute_cost_bills_whole_hours() {
        // 16 HCXL for 35 minutes: billed a full hour each -> $10.88.
        let c = instance_cost(&EC2_HCXL, 16, 35.0 * 60.0);
        assert_eq!(c.compute_cost, Usd::cents(1088));
        // Amortized: 35/60 of that.
        assert_eq!(c.amortized_cost, Usd::cents(1088).scale(35.0 / 60.0));
    }

    #[test]
    fn paper_table4_compute_costs() {
        // Table 4: EC2 0.68$ × 16 HCXL = 10.88$, Azure 0.12$ × 128 Small = 15.36$
        // (both jobs fit within one billed hour).
        let ec2 = instance_cost(&EC2_HCXL, 16, 3000.0);
        assert_eq!(ec2.compute_cost, Usd::cents(1088));
        let azure = instance_cost(&AZURE_SMALL, 128, 3000.0);
        assert_eq!(azure.compute_cost, Usd::cents(1536));
    }

    #[test]
    fn second_hour_starts_a_new_block() {
        let one = instance_cost(&EC2_HCXL, 1, 3600.0);
        assert_eq!(one.compute_cost, Usd::cents(68));
        let over = instance_cost(&EC2_HCXL, 1, 3601.0);
        assert_eq!(over.compute_cost, Usd::cents(136));
    }

    #[test]
    fn zero_runtime_costs_nothing() {
        let c = instance_cost(&EC2_HCXL, 16, 0.0);
        assert_eq!(c.compute_cost, Usd::ZERO);
        assert_eq!(c.amortized_cost, Usd::ZERO);
    }

    #[test]
    fn fleet_ledger_staggered_lifetimes() {
        // Two instances: one runs 0..90 min (2 billed hours), one runs
        // 30..60 min (1 billed hour).
        let mut ledger = FleetLedger::new(EC2_HCXL, 3600.0);
        let a = ledger.launch(0.0);
        let b = ledger.launch(1800.0);
        ledger.retire(b, 3600.0);
        ledger.retire(a, 5400.0);
        assert_eq!(ledger.launched(), 2);
        assert_eq!(ledger.billed_hours(7200.0), 3);
        assert_eq!(ledger.used_seconds(7200.0), 5400.0 + 1800.0);
        let c = ledger.cost(7200.0);
        assert_eq!(c.compute_cost, Usd::cents(68) * 3);
        assert_eq!(c.amortized_cost, Usd::cents(68).scale(2.0));
        assert!((ledger.wasted_hours(7200.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fleet_ledger_open_instances_charged_to_horizon() {
        let mut ledger = FleetLedger::new(EC2_HCXL, 3600.0);
        ledger.launch(0.0);
        assert_eq!(ledger.billed_hours(10.0), 1);
        assert_eq!(ledger.billed_hours(3601.0), 2);
    }

    #[test]
    fn fleet_ledger_compressed_hours() {
        // A 60 s "hour" for test-compressed time.
        let mut ledger = FleetLedger::new(EC2_HCXL, 60.0);
        let a = ledger.launch(0.0);
        ledger.retire(a, 61.0);
        assert_eq!(ledger.billed_hours(100.0), 2);
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn fleet_ledger_double_retire_panics() {
        let mut ledger = FleetLedger::new(EC2_HCXL, 3600.0);
        let a = ledger.launch(0.0);
        ledger.retire(a, 10.0);
        ledger.retire(a, 20.0);
    }

    #[test]
    fn owned_cluster_hourly_rate() {
        let c = OwnedClusterCost::paper_internal_cluster();
        // (500k/3 + 150k) / 8760 ≈ $36.15/h.
        let rate = c.hourly_rate().as_f64();
        assert!((rate - 36.15).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn utilization_raises_cost() {
        // Paper: $8.25 @80%, $9.43 @70%, $11.01 @60% for the same job.
        // The ratios follow 1/utilization exactly.
        let c = OwnedClusterCost::paper_internal_cluster();
        let h = 0.1826; // job hours tuned so 80% lands near the paper value
        let at80 = c.job_cost(h, 0.8).as_f64();
        let at70 = c.job_cost(h, 0.7).as_f64();
        let at60 = c.job_cost(h, 0.6).as_f64();
        assert!((at80 - 8.25).abs() < 0.05, "at80={at80}");
        // Ratios follow 1/utilization up to micro-dollar rounding.
        assert!((at70 / at80 - 0.8 / 0.7).abs() < 1e-5);
        assert!((at60 / at80 - 0.8 / 0.6).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "utilization in (0,1]")]
    fn zero_utilization_rejected() {
        OwnedClusterCost::paper_internal_cluster().job_cost(1.0, 0.0);
    }

    #[test]
    fn lease_or_buy_breakeven() {
        // The paper's internal cluster (~$36.15/h TCO) vs renting its
        // capacity on EC2: 32 nodes x 24 cores ≈ 96 HCXL instances ≈
        // $65.28/h. Owning wins above ~55% utilization.
        let analysis = LeaseOrBuy {
            owned: OwnedClusterCost::paper_internal_cluster(),
            cloud_equivalent_hourly: Usd::cents(68) * 96,
        };
        let breakeven = analysis.breakeven_utilization().expect("owning can win");
        assert!((0.5..0.62).contains(&breakeven), "breakeven {breakeven}");
        assert!(analysis.should_buy(0.8));
        assert!(!analysis.should_buy(0.3));
        // Wilkening et al's observation (paper §7): at 100% utilization the
        // local cluster is cheaper than the cloud.
        assert!(analysis.owned_cost_per_useful_hour(1.0) < analysis.cloud_cost_per_useful_hour());
    }

    #[test]
    fn lease_or_buy_cloud_always_wins_for_expensive_clusters() {
        let analysis = LeaseOrBuy {
            owned: OwnedClusterCost {
                purchase: Usd::dollars(10_000_000),
                depreciation_years: 3,
                yearly_maintenance: Usd::dollars(1_000_000),
            },
            cloud_equivalent_hourly: Usd::dollars(100),
        };
        assert!(analysis.breakeven_utilization().is_none());
        assert!(!analysis.should_buy(1.0));
    }
}
