//! The instance-type catalog.
//!
//! Encodes the paper's Table 1 (EC2) and Table 2 (Azure), plus the
//! bare-metal nodes of the clusters used for the Hadoop and DryadLINQ
//! baselines. Memory bandwidth is not in the paper's tables — it reports
//! only that GTM is memory-bandwidth-bound and which platforms suffered —
//! so the per-type `mem_bandwidth_gbps` values here are plausible 2010
//! figures chosen to reproduce the *ordering* the paper observed (fewer
//! cores per memory controller ⇒ less contention ⇒ better GTM efficiency).

use ppc_core::money::Usd;

/// Who operates the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    Aws,
    Azure,
    /// Owned bare metal (the paper's internal clusters).
    BareMetal,
}

/// Guest operating system; the paper notes Cap3 runs ~12.5% faster on
/// Windows, so the calibrated models need to know which they are on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsPlatform {
    Linux,
    Windows,
}

/// One machine type a framework can lease (or own).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceType {
    /// Catalog name ("HCXL", "azure-small", "bare-32x8", ...).
    pub name: &'static str,
    pub provider: Provider,
    pub platform: OsPlatform,
    /// Physical CPU cores available to the guest.
    pub cores: usize,
    /// Core clock, GHz (the paper's approximations).
    pub clock_ghz: f64,
    /// EC2 compute units, informational (0 where not applicable).
    pub ecu: f64,
    /// Guest RAM, bytes.
    pub memory_bytes: u64,
    /// Aggregate memory bandwidth shared by all cores, bytes/second.
    pub mem_bandwidth_bytes_per_s: f64,
    /// Local/ephemeral disk, bytes.
    pub local_disk_bytes: u64,
    /// Hourly lease price (zero for owned hardware — its cost model is
    /// `billing::OwnedClusterCost`).
    pub cost_per_hour: Usd,
}

const GB: u64 = 1_000_000_000;
const GIB: u64 = 1 << 30;

// ---- Table 1: selected EC2 instance types -----------------------------------

/// EC2 Large: 7.5 GB, 4 ECU, 2 × ~2 GHz, $0.34/h.
pub const EC2_LARGE: InstanceType = InstanceType {
    name: "L",
    provider: Provider::Aws,
    platform: OsPlatform::Linux,
    cores: 2,
    clock_ghz: 2.0,
    ecu: 4.0,
    memory_bytes: 7_500 * GB / 1000,
    mem_bandwidth_bytes_per_s: 6.0e9,
    local_disk_bytes: 850 * GIB,
    cost_per_hour: Usd::cents(34),
};

/// EC2 Extra-Large: 15 GB, 8 ECU, 4 × ~2 GHz, $0.68/h.
pub const EC2_XLARGE: InstanceType = InstanceType {
    name: "XL",
    provider: Provider::Aws,
    platform: OsPlatform::Linux,
    cores: 4,
    clock_ghz: 2.0,
    ecu: 8.0,
    memory_bytes: 15 * GB,
    mem_bandwidth_bytes_per_s: 9.0e9,
    local_disk_bytes: 1_690 * GIB,
    cost_per_hour: Usd::cents(68),
};

/// EC2 High-CPU-Extra-Large: 7 GB, 20 ECU, 8 × ~2.5 GHz, $0.68/h — the
/// paper's repeated cost-effectiveness winner.
pub const EC2_HCXL: InstanceType = InstanceType {
    name: "HCXL",
    provider: Provider::Aws,
    platform: OsPlatform::Linux,
    cores: 8,
    clock_ghz: 2.5,
    ecu: 20.0,
    memory_bytes: 7 * GB,
    mem_bandwidth_bytes_per_s: 10.0e9,
    local_disk_bytes: 1_690 * GIB,
    cost_per_hour: Usd::cents(68),
};

/// EC2 High-Memory-Quadruple-Extra-Large: 68.4 GB, 26 ECU, 8 × ~3.25 GHz,
/// $2.00/h — fastest, rarely cheapest.
pub const EC2_HM4XL: InstanceType = InstanceType {
    name: "HM4XL",
    provider: Provider::Aws,
    platform: OsPlatform::Linux,
    cores: 8,
    clock_ghz: 3.25,
    ecu: 26.0,
    memory_bytes: 68_400 * GB / 1000,
    mem_bandwidth_bytes_per_s: 20.0e9,
    local_disk_bytes: 1_690 * GIB,
    cost_per_hour: Usd::dollars(2),
};

// ---- Table 2: Azure instance types ------------------------------------------
// Azure's per-core clock was speculated at 1.5–1.7 GHz, but the paper
// measured "8 Azure Small ≈ 1 HCXL (20 ECU)" on Cap3, so for modeling we
// give Azure cores HCXL-like effective throughput (2.5 GHz equivalent)
// before the Windows factor — this is the calibration §6 of DESIGN.md pins.

const AZURE_CLOCK_GHZ: f64 = 2.5;

/// Azure Small: 1 core, 1.7 GB, 250 GB disk, $0.12/h.
pub const AZURE_SMALL: InstanceType = InstanceType {
    name: "azure-small",
    provider: Provider::Azure,
    platform: OsPlatform::Windows,
    cores: 1,
    clock_ghz: AZURE_CLOCK_GHZ,
    ecu: 0.0,
    memory_bytes: 1_700 * GB / 1000,
    mem_bandwidth_bytes_per_s: 4.0e9,
    local_disk_bytes: 250 * GB,
    cost_per_hour: Usd::cents(12),
};

/// Azure Medium: 2 cores, 3.5 GB, 500 GB disk, $0.24/h.
pub const AZURE_MEDIUM: InstanceType = InstanceType {
    name: "azure-medium",
    provider: Provider::Azure,
    platform: OsPlatform::Windows,
    cores: 2,
    clock_ghz: AZURE_CLOCK_GHZ,
    ecu: 0.0,
    memory_bytes: 3_500 * GB / 1000,
    mem_bandwidth_bytes_per_s: 6.0e9,
    local_disk_bytes: 500 * GB,
    cost_per_hour: Usd::cents(24),
};

/// Azure Large: 4 cores, 7 GB, 1000 GB disk, $0.48/h.
pub const AZURE_LARGE: InstanceType = InstanceType {
    name: "azure-large",
    provider: Provider::Azure,
    platform: OsPlatform::Windows,
    cores: 4,
    clock_ghz: AZURE_CLOCK_GHZ,
    ecu: 0.0,
    memory_bytes: 7 * GB,
    mem_bandwidth_bytes_per_s: 9.0e9,
    local_disk_bytes: 1_000 * GB,
    cost_per_hour: Usd::cents(48),
};

/// Azure Extra-Large: 8 cores, 15 GB, 2000 GB disk, $0.96/h.
pub const AZURE_XLARGE: InstanceType = InstanceType {
    name: "azure-xlarge",
    provider: Provider::Azure,
    platform: OsPlatform::Windows,
    cores: 8,
    clock_ghz: AZURE_CLOCK_GHZ,
    ecu: 0.0,
    memory_bytes: 15 * GB,
    mem_bandwidth_bytes_per_s: 12.0e9,
    local_disk_bytes: 2_000 * GB,
    cost_per_hour: Usd::cents(96),
};

// ---- Bare-metal baseline nodes ----------------------------------------------

/// Cap3 baseline cluster node: 32 nodes × 8 cores (2.5 GHz), 16 GB (§4.2).
/// Used for both the Hadoop (Linux) and DryadLINQ (Windows) Cap3 runs; the
/// DryadLINQ variant is [`BARE_CAP3_WIN`].
pub const BARE_CAP3: InstanceType = InstanceType {
    name: "bare-8x2.5",
    provider: Provider::BareMetal,
    platform: OsPlatform::Linux,
    cores: 8,
    clock_ghz: 2.5,
    ecu: 0.0,
    memory_bytes: 16 * GIB,
    mem_bandwidth_bytes_per_s: 12.0e9,
    local_disk_bytes: 500 * GB,
    cost_per_hour: Usd::ZERO,
};

/// Windows twin of [`BARE_CAP3`] for the DryadLINQ baseline.
pub const BARE_CAP3_WIN: InstanceType = InstanceType {
    name: "bare-8x2.5-win",
    platform: OsPlatform::Windows,
    ..BARE_CAP3
};

/// iDataplex node for Hadoop-BLAST: 2 × 4-core Xeon E5410 2.33 GHz, 16 GB (§5.2).
pub const BARE_IDATAPLEX: InstanceType = InstanceType {
    name: "bare-idataplex",
    provider: Provider::BareMetal,
    platform: OsPlatform::Linux,
    cores: 8,
    clock_ghz: 2.33,
    ecu: 0.0,
    memory_bytes: 16 * GIB,
    mem_bandwidth_bytes_per_s: 12.0e9,
    local_disk_bytes: 500 * GB,
    cost_per_hour: Usd::ZERO,
};

/// Windows HPC node for DryadLINQ-BLAST / GTM: 16 × 2.3 GHz Opteron, 16 GB
/// (§5.2, §6.2) — many cores on one memory system, the paper's worst GTM
/// contention case.
pub const BARE_HPC16: InstanceType = InstanceType {
    name: "bare-hpc16",
    provider: Provider::BareMetal,
    platform: OsPlatform::Windows,
    cores: 16,
    clock_ghz: 2.3,
    ecu: 0.0,
    memory_bytes: 16 * GIB,
    mem_bandwidth_bytes_per_s: 12.0e9,
    local_disk_bytes: 500 * GB,
    cost_per_hour: Usd::ZERO,
};

/// Hadoop GTM node: 24 × 2.4 GHz Xeon, 48 GB, configured to use 8 cores (§6.2).
pub const BARE_XEON24: InstanceType = InstanceType {
    name: "bare-xeon24",
    provider: Provider::BareMetal,
    platform: OsPlatform::Linux,
    cores: 24,
    clock_ghz: 2.4,
    ecu: 0.0,
    memory_bytes: 48 * GIB,
    mem_bandwidth_bytes_per_s: 25.0e9,
    local_disk_bytes: 1_000 * GB,
    cost_per_hour: Usd::ZERO,
};

/// The EC2 types of Table 1, in the paper's order.
pub const EC2_TYPES: [InstanceType; 4] = [EC2_LARGE, EC2_XLARGE, EC2_HCXL, EC2_HM4XL];

/// The Azure types of Table 2, in the paper's order.
pub const AZURE_TYPES: [InstanceType; 4] = [AZURE_SMALL, AZURE_MEDIUM, AZURE_LARGE, AZURE_XLARGE];

impl InstanceType {
    /// Memory available per core, bytes — the quantity the paper keeps
    /// returning to when explaining BLAST behaviour.
    pub fn memory_per_core(&self) -> u64 {
        self.memory_bytes / self.cores as u64
    }

    /// Look up a type by catalog name.
    pub fn by_name(name: &str) -> Option<InstanceType> {
        EC2_TYPES
            .iter()
            .chain(AZURE_TYPES.iter())
            .chain(
                [
                    BARE_CAP3,
                    BARE_CAP3_WIN,
                    BARE_IDATAPLEX,
                    BARE_HPC16,
                    BARE_XEON24,
                ]
                .iter(),
            )
            .find(|t| t.name == name)
            .copied()
    }

    /// Dollars per core-hour — a first-order cost-effectiveness signal.
    pub fn cost_per_core_hour(&self) -> Usd {
        self.cost_per_hour.scale(1.0 / self.cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_prices() {
        assert_eq!(EC2_LARGE.cost_per_hour, Usd::cents(34));
        assert_eq!(EC2_XLARGE.cost_per_hour, Usd::cents(68));
        assert_eq!(EC2_HCXL.cost_per_hour, Usd::cents(68));
        assert_eq!(EC2_HM4XL.cost_per_hour, Usd::dollars(2));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the catalog under test
    fn table1_shapes() {
        // "HCXL costs the same as XL but offers greater CPU power and less
        // memory" (§2.1.1).
        assert_eq!(EC2_HCXL.cost_per_hour, EC2_XLARGE.cost_per_hour);
        assert!(EC2_HCXL.ecu > EC2_XLARGE.ecu);
        assert!(EC2_HCXL.memory_bytes < EC2_XLARGE.memory_bytes);
        assert_eq!(EC2_HCXL.cores, 8);
        assert_eq!(EC2_HM4XL.cores, 8);
        assert!(EC2_HM4XL.clock_ghz > EC2_HCXL.clock_ghz);
    }

    #[test]
    fn table2_linear_scaling() {
        // "Azure instance type configurations and the cost scales up
        // linearly from Small to Extra-Large" (§2.1.2).
        for (i, t) in AZURE_TYPES.iter().enumerate() {
            let mult = 1 << i;
            assert_eq!(t.cores, mult, "{}", t.name);
            assert_eq!(t.cost_per_hour, Usd::cents(12) * mult as i64, "{}", t.name);
        }
    }

    #[test]
    fn hcxl_has_least_memory_per_core() {
        // "<1 GB per core" vs "3.75 GB per core" for L/XL (§5.1).
        assert!(EC2_HCXL.memory_per_core() < 1 << 30);
        assert!(EC2_LARGE.memory_per_core() > 3 * (1 << 30));
        assert!(EC2_XLARGE.memory_per_core() > 3 * (1 << 30));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(InstanceType::by_name("HCXL").unwrap().cores, 8);
        assert_eq!(InstanceType::by_name("azure-small").unwrap().cores, 1);
        assert!(InstanceType::by_name("m5.24xlarge").is_none());
    }

    #[test]
    fn cost_per_core_hour_ranks_hcxl_cheapest_ec2() {
        let mut by_core_cost = EC2_TYPES;
        by_core_cost.sort_by_key(|a| a.cost_per_core_hour());
        assert_eq!(by_core_cost[0].name, "HCXL");
    }

    #[test]
    fn bandwidth_per_core_ordering_for_gtm() {
        // Azure Small (dedicated) > HM4XL > HCXL > bare-hpc16 (16-way shared):
        // the contention ordering behind the paper's GTM efficiency ranking.
        let per_core = |t: &InstanceType| t.mem_bandwidth_bytes_per_s / t.cores as f64;
        assert!(per_core(&AZURE_SMALL) > per_core(&EC2_HM4XL));
        assert!(per_core(&EC2_HM4XL) > per_core(&EC2_HCXL));
        assert!(per_core(&EC2_HCXL) > per_core(&BARE_HPC16));
    }
}
