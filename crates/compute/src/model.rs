//! Service-time model: how long one task takes on one instance type.
//!
//! The paper's instance-type studies hinge on three machine effects, all
//! modeled here (DESIGN.md §3):
//!
//! 1. **Clock scaling** — CPU-bound work (Cap3) runs at the ratio of clocks;
//!    HM4XL (3.25 GHz) beats HCXL (2.5 GHz) beats L/XL (2.0 GHz). The
//!    ~12.5% Windows speedup for Cap3 is an application property passed in
//!    via [`AppModel::windows_speedup`].
//! 2. **Memory-bandwidth contention** — GTM Interpolation streams large
//!    matrices; with `k` workers sharing a node, each sees `B/k` bandwidth,
//!    and the task takes `max(t_cpu, t_mem)`. Platforms with fewer cores
//!    per memory system win (Azure Small best, 16-core HPC nodes worst).
//! 3. **Memory-capacity pressure** — BLAST wants the whole NR database
//!    resident *per node* (it is shared read-only between workers). When
//!    private + shared working sets overflow the node, the overflow
//!    fraction is re-read from disk each pass, adding I/O time.

use crate::instance::{InstanceType, OsPlatform};
use ppc_core::task::{ResourceProfile, REFERENCE_CLOCK_GHZ};

/// Application-level knobs for the service-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppModel {
    /// Multiplier on CPU speed when running on Windows (Cap3: 1.125 —
    /// "the Cap3 program performs ~12.5% faster on Windows", §4.2).
    pub windows_speedup: f64,
    /// Local-disk bandwidth used to price memory-overflow re-reads, B/s.
    pub disk_bandwidth_bytes_per_s: f64,
    /// How many times the overflowed shared working set is effectively
    /// re-scanned per task (1.0 for a single-pass scan like BLAST).
    pub overflow_rescans: f64,
}

impl AppModel {
    /// CPU-bound defaults (no Windows advantage, 2010 SATA disk).
    pub const DEFAULT: AppModel = AppModel {
        windows_speedup: 1.0,
        disk_bandwidth_bytes_per_s: 80e6,
        overflow_rescans: 1.0,
    };

    /// Cap3's model: Windows speedup observed by the paper.
    pub fn cap3() -> AppModel {
        AppModel {
            windows_speedup: 1.125,
            ..AppModel::DEFAULT
        }
    }
}

impl Default for AppModel {
    fn default() -> Self {
        AppModel::DEFAULT
    }
}

/// Seconds for one task on `itype` while `active_workers` tasks run
/// concurrently on the node.
///
/// `active_workers` is the *configured* workers per node (the paper runs
/// fully loaded nodes; modeling instantaneous load would add noise without
/// changing any conclusion).
pub fn task_service_seconds(
    itype: &InstanceType,
    active_workers: usize,
    profile: &ResourceProfile,
    app: &AppModel,
) -> f64 {
    let active = active_workers.max(1);

    // 1. Clock scaling (+ OS factor).
    let os = match itype.platform {
        OsPlatform::Windows => app.windows_speedup,
        OsPlatform::Linux => 1.0,
    };
    // Oversubscription: more workers than cores time-share them.
    let oversub = (active as f64 / itype.cores as f64).max(1.0);
    let t_cpu = profile.cpu_seconds_ref * (REFERENCE_CLOCK_GHZ / itype.clock_ghz) / os * oversub;

    // 2. Memory-bandwidth contention.
    let share = itype.mem_bandwidth_bytes_per_s / active.min(itype.cores).max(1) as f64;
    let t_mem = profile.mem_traffic_bytes as f64 / share;

    // 3. Memory-capacity pressure: private sets per worker + one shared set
    // per node must fit in node memory; the overflow is paged from disk.
    let demand = profile
        .mem_bytes
        .saturating_mul(active as u64)
        .saturating_add(profile.shared_mem_bytes);
    let overflow = demand.saturating_sub(itype.memory_bytes);
    let t_page = if overflow > 0 {
        // Each worker re-reads its share of the overflow from local disk,
        // all workers contending for the same spindle.
        overflow as f64 / active as f64 * app.overflow_rescans
            / (app.disk_bandwidth_bytes_per_s / active as f64)
    } else {
        0.0
    };

    t_cpu.max(t_mem) + t_page
}

/// Sequential baseline (Equation 1's `T1`) for a set of tasks on one core of
/// `itype` with the rest of the machine idle — matching the paper's method
/// of measuring `T1` "in each of the different environments, having the
/// input files present in the local disks, avoiding the data transfers".
pub fn sequential_seconds(
    itype: &InstanceType,
    profiles: &[ResourceProfile],
    app: &AppModel,
) -> f64 {
    profiles
        .iter()
        .map(|p| task_service_seconds(itype, 1, p, app))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::*;

    fn cpu_task(secs: f64) -> ResourceProfile {
        ResourceProfile::cpu_bound(secs)
    }

    #[test]
    fn clock_scaling_orders_ec2_types_for_cpu_work() {
        let p = cpu_task(100.0);
        let t = |it: &InstanceType| task_service_seconds(it, it.cores, &p, &AppModel::DEFAULT);
        // HM4XL fastest, HCXL next, L/XL slowest (Figure 4's ordering).
        assert!(t(&EC2_HM4XL) < t(&EC2_HCXL));
        assert!(t(&EC2_HCXL) < t(&EC2_LARGE));
        assert!((t(&EC2_LARGE) - t(&EC2_XLARGE)).abs() < 1e-9, "same clock");
        // Reference: HCXL runs at the reference clock exactly.
        assert!((t(&EC2_HCXL) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn windows_speedup_for_cap3() {
        let p = cpu_task(112.5);
        let linux = task_service_seconds(&BARE_CAP3, 1, &p, &AppModel::cap3());
        let win = task_service_seconds(&BARE_CAP3_WIN, 1, &p, &AppModel::cap3());
        assert!(
            (linux / win - 1.125).abs() < 1e-9,
            "12.5% faster on Windows"
        );
    }

    #[test]
    fn memory_bandwidth_contention_caps_gtm() {
        // A task moving 50 GB of memory traffic with tiny CPU time.
        let p = ResourceProfile {
            cpu_seconds_ref: 1.0,
            mem_bytes: 1 << 30,
            shared_mem_bytes: 0,
            mem_traffic_bytes: 50_000_000_000,
            input_bytes: 0,
            output_bytes: 0,
        };
        // One worker on HM4XL: full 20 GB/s -> 2.5 s.
        let alone = task_service_seconds(&EC2_HM4XL, 1, &p, &AppModel::DEFAULT);
        assert!((alone - 2.5).abs() < 1e-9);
        // Eight workers: 2.5 GB/s each -> 20 s.
        let shared = task_service_seconds(&EC2_HM4XL, 8, &p, &AppModel::DEFAULT);
        assert!((shared - 20.0).abs() < 1e-9);
    }

    #[test]
    fn per_core_bandwidth_decides_efficiency_ordering() {
        // Azure Small (sole tenant) loses less efficiency than HCXL with 8
        // workers for the same memory-bound task — the paper's Figure 14.
        let p = ResourceProfile {
            cpu_seconds_ref: 4.0,
            mem_bytes: 1 << 28,
            shared_mem_bytes: 0,
            mem_traffic_bytes: 8_000_000_000,
            input_bytes: 0,
            output_bytes: 0,
        };
        let app = AppModel::DEFAULT;
        let eff = |it: &InstanceType| {
            let seq = task_service_seconds(it, 1, &p, &app);
            let par = task_service_seconds(it, it.cores, &p, &app);
            seq / par // per-task efficiency proxy
        };
        assert!(eff(&AZURE_SMALL) > eff(&EC2_HCXL));
        assert!(eff(&EC2_HCXL) > eff(&BARE_HPC16));
    }

    #[test]
    fn blast_database_overflow_penalizes_small_memory() {
        // 8.7 GB shared DB + modest private sets.
        let p = ResourceProfile {
            cpu_seconds_ref: 60.0,
            mem_bytes: 256 << 20,
            shared_mem_bytes: 8_700_000_000,
            mem_traffic_bytes: 0,
            input_bytes: 0,
            output_bytes: 0,
        };
        let app = AppModel::DEFAULT;
        // Azure Small (1.7 GB): massive overflow, big penalty.
        let small = task_service_seconds(&AZURE_SMALL, 1, &p, &app);
        // Azure XL (15 GB): fits fully.
        let xl = task_service_seconds(&AZURE_XLARGE, 8, &p, &app);
        assert!(small > 2.0 * xl, "small={small}, xl={xl}");
        // HM4XL (68 GB) has no penalty; HCXL (7 GB) has a mild one (Fig. 8).
        let hm = task_service_seconds(&EC2_HM4XL, 8, &p, &app);
        let hc = task_service_seconds(&EC2_HCXL, 8, &p, &app);
        assert!(hc > hm);
        assert!(
            hc < 3.0 * hm,
            "penalty is a slowdown, not a cliff: hc={hc}, hm={hm}"
        );
    }

    #[test]
    fn oversubscription_slows_linearly() {
        let p = cpu_task(10.0);
        let loaded = task_service_seconds(&EC2_HCXL, 16, &p, &AppModel::DEFAULT);
        assert!(
            (loaded - 20.0).abs() < 1e-9,
            "16 workers on 8 cores double the time"
        );
    }

    #[test]
    fn sequential_baseline_sums() {
        let ps = vec![cpu_task(2.0); 5];
        let t1 = sequential_seconds(&EC2_HCXL, &ps, &AppModel::DEFAULT);
        assert!((t1 - 10.0).abs() < 1e-9);
    }
}
