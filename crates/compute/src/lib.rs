//! # ppc-compute — the compute substrate
//!
//! Models what EC2, Azure Compute, and the paper's bare-metal clusters give
//! the frameworks: *machines with cores, clocks, memory, and a price*.
//!
//! * [`instance`] — the instance-type catalog. Reproduces the paper's
//!   Table 1 (EC2: Large, Extra-Large, High-CPU-XL, High-Memory-4XL) and
//!   Table 2 (Azure: Small..Extra-Large), plus the bare-metal nodes used for
//!   the Hadoop and DryadLINQ baselines.
//! * [`billing`] — hourly cloud billing ("Compute Cost" bills whole hours,
//!   "Amortized Cost" bills the used fraction — §3 of the paper) and the
//!   owned-cluster TCO model behind Table 4's 60/70/80%-utilization rows.
//! * [`cluster`] — a provisioned fleet: N instances of a type, W workers
//!   per instance, as the experiments configure them (e.g. "HCXL – 2 × 8").

pub mod billing;
pub mod cluster;
pub mod instance;
pub mod model;

pub use billing::{CostBreakdown, FleetLedger, LeaseOrBuy, OwnedClusterCost};
pub use cluster::{Cluster, Node};
pub use instance::{InstanceType, OsPlatform, Provider};
pub use model::{task_service_seconds, AppModel};
