//! Message identity and receipt handles.

use std::fmt;

/// Stable identity of a message, assigned at send time. The same id is seen
/// by every receiver of every redelivery of the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg-{}", self.0)
    }
}

/// A single-use token proving a particular *receive* of a message. Deletion
/// and visibility changes require the receipt of the most recent receive —
/// once the visibility timeout lapses and the message reappears, old receipts
/// are dead, exactly as with SQS receipt handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReceiptHandle(pub u64);

impl fmt::Display for ReceiptHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rcpt-{}", self.0)
    }
}

/// A received message as handed to a consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    pub id: MessageId,
    /// Opaque body; the Classic Cloud framework stores a serialized
    /// `TaskSpec` here ("every message in the queue describes a single task").
    pub body: String,
    /// Receipt for this receive; required to delete or extend visibility.
    pub receipt: ReceiptHandle,
    /// How many times this message has been received, including this one.
    /// First delivery is 1; anything higher means a redelivery (a prior
    /// consumer died, stalled past the timeout, or chaos duplicated it).
    pub receive_count: u32,
}

impl Message {
    /// True when this is a repeat delivery.
    pub fn is_redelivery(&self) -> bool {
        self.receive_count > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(MessageId(4).to_string(), "msg-4");
        assert_eq!(ReceiptHandle(9).to_string(), "rcpt-9");
    }

    #[test]
    fn redelivery_flag() {
        let m = Message {
            id: MessageId(1),
            body: String::new(),
            receipt: ReceiptHandle(1),
            receive_count: 1,
        };
        assert!(!m.is_redelivery());
        let m2 = Message {
            receive_count: 3,
            ..m
        };
        assert!(m2.is_redelivery());
    }
}
