//! Long polling and batch operations.
//!
//! SQS clients avoid hammering the endpoint with empty receives by using
//! *long polling* (`WaitTimeSeconds`) and cut request counts (and bills —
//! SQS charges per request) with *batch* send/delete. Both are implemented
//! here as extensions on [`Queue`].

use crate::message::{Message, MessageId, ReceiptHandle};
use crate::queue::Queue;
use ppc_core::retry::{Deadline, RetryPolicy};
use ppc_core::rng::Pcg32;
use ppc_core::{PpcError, Result};
use std::time::Duration;

/// Maximum entries per batch call (SQS's limit).
pub const MAX_BATCH: usize = 10;

impl Queue {
    /// Receive with long polling: blocks up to `wait` for a message to
    /// become available (arrival or visibility-timeout reappearance),
    /// returning `Ok(None)` only after the full wait elapses empty.
    ///
    /// Implementation note: the native queue has no push notification
    /// channel (real SQS long polling is also server-side polling), so this
    /// re-checks with a short sleep; the *caller's* request count stays at
    /// one, which is the billing-relevant behaviour — the whole wait is
    /// metered as a single receive (plus one empty-receive if it times out).
    pub fn receive_wait(&self, wait: Duration) -> Result<Option<Message>> {
        // One billable request for the whole wait window.
        self.stats()
            .receives
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let record_empty = || {
            self.stats()
                .empty_receives
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        };
        if wait.is_zero() {
            // Degenerate short poll: a single attempt.
            return match self.receive_metered(false) {
                Ok(Some(m)) => Ok(Some(m)),
                Ok(None) => {
                    record_empty();
                    Ok(None)
                }
                Err(e) => Err(e),
            };
        }
        // The whole wait is one deadline propagated through the shared
        // retry layer: flat 200 µs pacing (a poll loop, not congestion
        // backoff), unlimited attempts, the deadline bounds the loop.
        let pause = Duration::from_micros(200).min(wait);
        let policy = RetryPolicy {
            max_attempts: u32::MAX,
            base_delay: pause,
            max_delay: pause,
            multiplier: 1.0,
            jitter: 0.0,
            budget: None,
        };
        let deadline = Deadline::after(wait);
        let mut rng = Pcg32::new(0);
        let mut last_was_empty = false;
        let out = policy.run(
            &mut rng,
            Some(&deadline),
            std::thread::sleep,
            |_| match self.receive_metered(false) {
                Ok(Some(m)) => Ok(m),
                Ok(None) => {
                    last_was_empty = true;
                    Err(PpcError::Transient("no message within wait".into()))
                }
                Err(e) => {
                    last_was_empty = false;
                    Err(e)
                }
            },
        );
        match out {
            Ok(m) => Ok(Some(m)),
            Err(_) if last_was_empty => {
                record_empty();
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Send up to [`MAX_BATCH`] messages in one request. Returns the ids in
    /// input order. Partial failure is not modeled: the batch is atomic
    /// here, which is *stronger* than SQS — acceptable because callers must
    /// already handle per-message retry for the non-batch path.
    pub fn send_batch(&self, bodies: &[String]) -> Result<Vec<MessageId>> {
        if bodies.is_empty() || bodies.len() > MAX_BATCH {
            return Err(PpcError::InvalidArgument(format!(
                "batch size must be 1..={MAX_BATCH}, got {}",
                bodies.len()
            )));
        }
        let mut ids = Vec::with_capacity(bodies.len());
        for body in bodies {
            ids.push(self.send(body.clone())?);
        }
        Ok(ids)
    }

    /// Delete up to [`MAX_BATCH`] receipts in one request. Returns, per
    /// receipt, whether the delete succeeded (stale receipts fail
    /// individually without failing the batch — SQS semantics).
    pub fn delete_batch(&self, receipts: &[ReceiptHandle]) -> Result<Vec<bool>> {
        if receipts.is_empty() || receipts.len() > MAX_BATCH {
            return Err(PpcError::InvalidArgument(format!(
                "batch size must be 1..={MAX_BATCH}, got {}",
                receipts.len()
            )));
        }
        Ok(receipts.iter().map(|r| self.delete(*r).is_ok()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueConfig;
    use std::time::Instant;

    #[test]
    fn long_poll_returns_early_when_message_arrives() {
        let q = std::sync::Arc::new(Queue::new("lp", QueueConfig::default()));
        let q2 = q.clone();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.send("late").unwrap();
        });
        let start = Instant::now();
        let m = q.receive_wait(Duration::from_millis(500)).unwrap();
        sender.join().unwrap();
        assert_eq!(m.unwrap().body, "late");
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "returned early"
        );
    }

    #[test]
    fn long_poll_times_out_empty() {
        let q = Queue::new("lp", QueueConfig::default());
        let start = Instant::now();
        assert!(q.receive_wait(Duration::from_millis(30)).unwrap().is_none());
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn batch_send_and_delete() {
        let q = Queue::new("b", QueueConfig::default());
        let bodies: Vec<String> = (0..10).map(|i| format!("m{i}")).collect();
        let ids = q.send_batch(&bodies).unwrap();
        assert_eq!(ids.len(), 10);
        let mut receipts = Vec::new();
        while let Some(m) = q.receive().unwrap() {
            receipts.push(m.receipt);
        }
        let results = q.delete_batch(&receipts).unwrap();
        assert!(results.iter().all(|&ok| ok));
        assert!(q.is_drained());
    }

    #[test]
    fn batch_delete_reports_stale_individually() {
        let q = Queue::new("b", QueueConfig::default());
        q.send("x").unwrap();
        let m = q.receive().unwrap().unwrap();
        q.delete(m.receipt).unwrap();
        // Re-deleting the same receipt is stale but does not error the batch.
        let results = q.delete_batch(&[m.receipt]).unwrap();
        assert_eq!(results, vec![false]);
    }

    #[test]
    fn batch_limits_enforced() {
        let q = Queue::new("b", QueueConfig::default());
        assert!(q.send_batch(&[]).is_err());
        let too_many: Vec<String> = (0..11).map(|i| format!("{i}")).collect();
        assert!(q.send_batch(&too_many).is_err());
        assert!(q.delete_batch(&[]).is_err());
    }
}
