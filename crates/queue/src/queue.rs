//! A single queue with SQS visibility-timeout semantics.

use crate::chaos::ChaosConfig;
use crate::message::{Message, MessageId, ReceiptHandle};
use ppc_core::rng::Pcg32;
use ppc_core::sync::Mutex;
use ppc_core::{PpcError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration for one queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueConfig {
    /// How long a received message stays hidden before reappearing.
    pub visibility_timeout: Duration,
    /// Failure injection dials.
    pub chaos: ChaosConfig,
    /// Seed for the (deterministic) delivery-order and chaos randomness.
    pub seed: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            visibility_timeout: Duration::from_secs(30),
            chaos: ChaosConfig::NONE,
            seed: 0x9ec1,
        }
    }
}

struct StoredMessage {
    id: MessageId,
    body: String,
    receive_count: u32,
    sent_at: Instant,
}

struct InFlight {
    msg: StoredMessage,
    deadline: Instant,
}

struct State {
    visible: Vec<StoredMessage>,
    in_flight: HashMap<ReceiptHandle, InFlight>,
    rng: Pcg32,
}

/// Counters for one queue (all API calls are also metered for billing).
#[derive(Debug, Default)]
pub struct QueueStats {
    pub sends: AtomicU64,
    pub receives: AtomicU64,
    pub empty_receives: AtomicU64,
    pub deletes: AtomicU64,
    pub failed_deletes: AtomicU64,
    pub visibility_expirations: AtomicU64,
    pub duplicate_deliveries: AtomicU64,
}

impl QueueStats {
    /// Total billable API requests (send + receive + delete attempts).
    pub fn requests(&self) -> u64 {
        self.sends.load(Ordering::Relaxed)
            + self.receives.load(Ordering::Relaxed)
            + self.deletes.load(Ordering::Relaxed)
            + self.failed_deletes.load(Ordering::Relaxed)
    }
}

/// One atomic reading of a queue's monitoring metrics, taken under a single
/// lock acquisition so the three numbers are mutually consistent — unlike
/// calling [`Queue::approximate_len`], [`Queue::approximate_in_flight`] and
/// [`Queue::approximate_age_of_oldest`] back to back, where messages can
/// move between pools mid-read. Autoscaling policies key off this snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueMetricsSnapshot {
    /// Visible (receivable) messages.
    pub visible: usize,
    /// Received, undeleted messages currently under lease.
    pub in_flight: usize,
    /// Age of the oldest visible message; `None` when nothing is visible.
    pub oldest_age: Option<Duration>,
}

impl QueueMetricsSnapshot {
    /// Total outstanding messages: visible plus leased.
    pub fn outstanding(&self) -> usize {
        self.visible + self.in_flight
    }
}

/// A single named queue. Thread-safe; share via `Arc`.
///
/// ```
/// use ppc_queue::queue::{Queue, QueueConfig};
/// let q = Queue::new("tasks", QueueConfig::default());
/// q.send("assemble file-1").unwrap();
/// let msg = q.receive().unwrap().expect("visible");
/// assert_eq!(msg.body, "assemble file-1");
/// // The message is hidden until deleted (or the visibility timeout lapses).
/// assert!(q.receive().unwrap().is_none());
/// q.delete(msg.receipt).unwrap();
/// assert!(q.is_drained());
/// ```
pub struct Queue {
    name: String,
    config: QueueConfig,
    next_message_id: AtomicU64,
    next_receipt: AtomicU64,
    state: Mutex<State>,
    stats: QueueStats,
}

impl std::fmt::Debug for Queue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue")
            .field("name", &self.name)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Queue {
    pub fn new(name: impl Into<String>, config: QueueConfig) -> Queue {
        if let Err(e) = config.chaos.validate() {
            panic!("{e}");
        }
        Queue {
            name: name.into(),
            config,
            next_message_id: AtomicU64::new(1),
            next_receipt: AtomicU64::new(1),
            state: Mutex::new(State {
                visible: Vec::new(),
                in_flight: HashMap::new(),
                rng: Pcg32::new(config.seed),
            }),
            stats: QueueStats::default(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn config(&self) -> QueueConfig {
        self.config
    }

    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Bring timed-out in-flight messages back to the visible pool.
    fn expire_in_flight(&self, state: &mut State, now: Instant) {
        let expired: Vec<ReceiptHandle> = state
            .in_flight
            .iter()
            .filter(|(_, f)| f.deadline <= now)
            .map(|(r, _)| *r)
            .collect();
        for r in expired {
            let f = state.in_flight.remove(&r).expect("receipt present");
            self.stats
                .visibility_expirations
                .fetch_add(1, Ordering::Relaxed);
            state.visible.push(f.msg);
        }
    }

    fn roll_transient(&self, state: &mut State, op: &str) -> Result<()> {
        let p = self.config.chaos.transient_error_probability;
        if p > 0.0 && state.rng.chance(p) {
            return Err(PpcError::Transient(format!(
                "queue '{}': injected {op} failure",
                self.name
            )));
        }
        Ok(())
    }

    /// Enqueue a message; returns its id.
    pub fn send(&self, body: impl Into<String>) -> Result<MessageId> {
        self.send_delayed(body, Duration::ZERO)
    }

    /// Enqueue a message that only becomes receivable after `delay` — SQS's
    /// `DelaySeconds`, used to schedule retries without busy waiting.
    pub fn send_delayed(&self, body: impl Into<String>, delay: Duration) -> Result<MessageId> {
        self.stats.sends.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock();
        self.roll_transient(&mut state, "send")?;
        let id = MessageId(self.next_message_id.fetch_add(1, Ordering::Relaxed));
        let msg = StoredMessage {
            id,
            body: body.into(),
            receive_count: 0,
            sent_at: Instant::now(),
        };
        if delay.is_zero() {
            state.visible.push(msg);
        } else {
            // Model delay as a pre-hidden message: it sits in flight under a
            // reserved receipt until the delay lapses.
            let receipt = ReceiptHandle(self.next_receipt.fetch_add(1, Ordering::Relaxed));
            state.in_flight.insert(
                receipt,
                InFlight {
                    msg,
                    deadline: Instant::now() + delay,
                },
            );
        }
        Ok(id)
    }

    /// Receive at most one message, hiding it for the visibility timeout.
    /// `Ok(None)` means "nothing available this request" — which, per the
    /// eventual-availability contract, can happen even when messages exist.
    pub fn receive(&self) -> Result<Option<Message>> {
        self.receive_metered(true)
    }

    /// The receive path with metering optionally suppressed: a long poll
    /// ([`Self::receive_wait`]) re-checks internally but bills as a single
    /// request, like SQS `WaitTimeSeconds`.
    pub(crate) fn receive_metered(&self, meter: bool) -> Result<Option<Message>> {
        if meter {
            self.stats.receives.fetch_add(1, Ordering::Relaxed);
        }
        let now = Instant::now();
        let mut state = self.state.lock();
        self.roll_transient(&mut state, "receive")?;
        self.expire_in_flight(&mut state, now);

        if state.visible.is_empty() {
            if meter {
                self.stats.empty_receives.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(None);
        }
        let chaos = self.config.chaos;
        if chaos.empty_receive_probability > 0.0
            && state.rng.chance(chaos.empty_receive_probability)
        {
            if meter {
                self.stats.empty_receives.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(None);
        }

        // No ordering guarantee: draw a random visible message.
        let pool_len = state.visible.len() as u32;
        let idx = state.rng.next_below(pool_len) as usize;

        let duplicate = chaos.duplicate_delivery_probability > 0.0
            && state.rng.chance(chaos.duplicate_delivery_probability);

        let receipt = ReceiptHandle(self.next_receipt.fetch_add(1, Ordering::Relaxed));
        let deadline = now + self.config.visibility_timeout;

        if duplicate {
            // Hand out a copy but leave the original visible: a second
            // consumer can receive it immediately. The duplicate's receipt is
            // real and deletable; whichever delete lands first wins.
            self.stats
                .duplicate_deliveries
                .fetch_add(1, Ordering::Relaxed);
            let m = &mut state.visible[idx];
            m.receive_count += 1;
            let delivered = Message {
                id: m.id,
                body: m.body.clone(),
                receipt,
                receive_count: m.receive_count,
            };
            let copy = StoredMessage {
                id: m.id,
                body: m.body.clone(),
                receive_count: m.receive_count,
                sent_at: m.sent_at,
            };
            state.in_flight.insert(
                receipt,
                InFlight {
                    msg: copy,
                    deadline,
                },
            );
            return Ok(Some(delivered));
        }

        let mut msg = state.visible.swap_remove(idx);
        msg.receive_count += 1;
        let delivered = Message {
            id: msg.id,
            body: msg.body.clone(),
            receipt,
            receive_count: msg.receive_count,
        };
        state.in_flight.insert(receipt, InFlight { msg, deadline });
        Ok(Some(delivered))
    }

    /// Delete a message using the receipt from its most recent receive.
    ///
    /// If the visibility timeout already lapsed and the message went back to
    /// the pool (or was re-received by someone else), the receipt is stale
    /// and deletion fails with `InvalidState`: the work will be redone, and
    /// idempotence is the application's job — the contract the paper calls
    /// out explicitly.
    ///
    /// Duplicate-delivery special case: if *some* delivery of the same
    /// message id was already deleted, deleting another receipt of it
    /// succeeds silently (the message is simply gone).
    pub fn delete(&self, receipt: ReceiptHandle) -> Result<()> {
        let now = Instant::now();
        let mut state = self.state.lock();
        if self.roll_transient(&mut state, "delete").is_err() {
            self.stats.failed_deletes.fetch_add(1, Ordering::Relaxed);
            return Err(PpcError::Transient(format!(
                "queue '{}': injected delete failure",
                self.name
            )));
        }
        self.expire_in_flight(&mut state, now);
        match state.in_flight.remove(&receipt) {
            Some(f) => {
                // Purge any other live copies of this id (duplicate deliveries
                // and still-visible originals): delete is by message, and the
                // receipt proves ownership of it.
                state.visible.retain(|m| m.id != f.msg.id);
                state.in_flight.retain(|_, other| other.msg.id != f.msg.id);
                self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => {
                self.stats.failed_deletes.fetch_add(1, Ordering::Relaxed);
                Err(PpcError::InvalidState(format!(
                    "queue '{}': receipt {receipt} is stale (visibility timeout lapsed?)",
                    self.name
                )))
            }
        }
    }

    /// Extend (or shrink) the visibility of an in-flight message — SQS's
    /// `ChangeMessageVisibility`, used by long-running workers to keep a
    /// lease alive.
    pub fn change_visibility(&self, receipt: ReceiptHandle, timeout: Duration) -> Result<()> {
        let now = Instant::now();
        let mut state = self.state.lock();
        self.expire_in_flight(&mut state, now);
        match state.in_flight.get_mut(&receipt) {
            Some(f) => {
                f.deadline = now + timeout;
                Ok(())
            }
            None => Err(PpcError::InvalidState(format!(
                "queue '{}': receipt {receipt} is stale",
                self.name
            ))),
        }
    }

    /// Approximate number of visible messages (monitoring only — racy by
    /// nature, like SQS's `ApproximateNumberOfMessages`).
    pub fn approximate_len(&self) -> usize {
        let mut state = self.state.lock();
        self.expire_in_flight(&mut state, Instant::now());
        state.visible.len()
    }

    /// Approximate number of in-flight (received, undeleted) messages.
    pub fn approximate_in_flight(&self) -> usize {
        let mut state = self.state.lock();
        self.expire_in_flight(&mut state, Instant::now());
        state.in_flight.len()
    }

    /// Age of the oldest *visible* message — CloudWatch's
    /// `ApproximateAgeOfOldestMessage`, the backlog signal autoscalers key
    /// off. `None` when nothing is visible.
    pub fn approximate_age_of_oldest(&self) -> Option<Duration> {
        let mut state = self.state.lock();
        self.expire_in_flight(&mut state, Instant::now());
        state.visible.iter().map(|m| m.sent_at.elapsed()).max()
    }

    /// All monitoring metrics in one consistent read (one lock hold): the
    /// feed for `ppc-autoscale` controllers.
    pub fn metrics_snapshot(&self) -> QueueMetricsSnapshot {
        let now = Instant::now();
        let mut state = self.state.lock();
        self.expire_in_flight(&mut state, now);
        QueueMetricsSnapshot {
            visible: state.visible.len(),
            in_flight: state.in_flight.len(),
            oldest_age: state
                .visible
                .iter()
                .map(|m| now.saturating_duration_since(m.sent_at))
                .max(),
        }
    }

    /// True when no message is visible nor in flight.
    pub fn is_drained(&self) -> bool {
        let mut state = self.state.lock();
        self.expire_in_flight(&mut state, Instant::now());
        state.visible.is_empty() && state.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_queue(visibility_ms: u64) -> Queue {
        Queue::new(
            "q",
            QueueConfig {
                visibility_timeout: Duration::from_millis(visibility_ms),
                ..QueueConfig::default()
            },
        )
    }

    #[test]
    fn send_receive_delete_lifecycle() {
        let q = quick_queue(10_000);
        let id = q.send("task 1").unwrap();
        let m = q.receive().unwrap().expect("message available");
        assert_eq!(m.id, id);
        assert_eq!(m.body, "task 1");
        assert_eq!(m.receive_count, 1);
        assert!(!m.is_redelivery());
        // Hidden while in flight.
        assert!(q.receive().unwrap().is_none());
        q.delete(m.receipt).unwrap();
        assert!(q.is_drained());
    }

    #[test]
    fn oldest_message_age_tracks_backlog() {
        let q = quick_queue(10_000);
        assert!(
            q.approximate_age_of_oldest().is_none(),
            "empty queue has no age"
        );
        q.send("old").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        q.send("new").unwrap();
        let age = q.approximate_age_of_oldest().expect("backlog");
        assert!(
            age >= Duration::from_millis(30),
            "age {age:?} reflects the oldest"
        );
        // Draining the oldest drops the age.
        let mut drained_old = false;
        while let Some(m) = q.receive().unwrap() {
            if m.body == "old" {
                q.delete(m.receipt).unwrap();
                drained_old = true;
                break;
            }
            // put "new" back via timeout not needed; just delete it too
            q.delete(m.receipt).unwrap();
        }
        assert!(drained_old || q.approximate_age_of_oldest().is_none());
    }

    #[test]
    fn delayed_send_hides_until_delay_lapses() {
        let q = quick_queue(10_000);
        q.send_delayed("later", Duration::from_millis(40)).unwrap();
        assert!(q.receive().unwrap().is_none(), "hidden during the delay");
        std::thread::sleep(Duration::from_millis(60));
        let m = q.receive().unwrap().expect("visible after the delay");
        assert_eq!(m.body, "later");
        assert_eq!(m.receive_count, 1, "the delay itself is not a delivery");
        q.delete(m.receipt).unwrap();
    }

    #[test]
    fn visibility_timeout_redelivers() {
        let q = quick_queue(30);
        q.send("t").unwrap();
        let first = q.receive().unwrap().unwrap();
        assert!(q.receive().unwrap().is_none(), "hidden during timeout");
        std::thread::sleep(Duration::from_millis(60));
        let second = q.receive().unwrap().expect("reappears after timeout");
        assert_eq!(second.id, first.id);
        assert_eq!(second.receive_count, 2);
        assert!(second.is_redelivery());
        // The original receipt is now stale.
        assert_eq!(q.delete(first.receipt).unwrap_err().code(), "InvalidState");
        // The fresh receipt works.
        q.delete(second.receipt).unwrap();
        assert!(q.is_drained());
    }

    #[test]
    fn change_visibility_extends_lease() {
        let q = quick_queue(40);
        q.send("t").unwrap();
        let m = q.receive().unwrap().unwrap();
        q.change_visibility(m.receipt, Duration::from_millis(300))
            .unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            q.receive().unwrap().is_none(),
            "lease extended past original timeout"
        );
        q.delete(m.receipt).unwrap();
    }

    #[test]
    fn no_ordering_guarantee() {
        // With many messages, delivery order differs from send order for
        // at least one position (probability of identity ~ 1/100!).
        let q = quick_queue(60_000);
        for i in 0..100 {
            q.send(format!("{i}")).unwrap();
        }
        let mut got = Vec::new();
        while let Some(m) = q.receive().unwrap() {
            got.push(m.body.parse::<u32>().unwrap());
            q.delete(m.receipt).unwrap();
        }
        assert_eq!(got.len(), 100);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..100).collect::<Vec<_>>(),
            "all messages delivered"
        );
        assert_ne!(got, sorted, "but not in FIFO order");
    }

    #[test]
    fn empty_receive_chaos() {
        let cfg = QueueConfig {
            visibility_timeout: Duration::from_secs(30),
            chaos: ChaosConfig {
                empty_receive_probability: 1.0,
                ..ChaosConfig::NONE
            },
            seed: 3,
        };
        let q = Queue::new("q", cfg);
        q.send("x").unwrap();
        for _ in 0..5 {
            assert!(q.receive().unwrap().is_none(), "always empty under p=1");
        }
        assert_eq!(
            q.approximate_len(),
            1,
            "message still there, eventually available"
        );
    }

    #[test]
    fn duplicate_delivery_then_single_delete_purges() {
        let cfg = QueueConfig {
            visibility_timeout: Duration::from_secs(30),
            chaos: ChaosConfig {
                duplicate_delivery_probability: 1.0,
                ..ChaosConfig::NONE
            },
            seed: 5,
        };
        let q = Queue::new("q", cfg);
        q.send("x").unwrap();
        let a = q.receive().unwrap().unwrap();
        let b = q.receive().unwrap().unwrap();
        assert_eq!(a.id, b.id, "same message delivered twice");
        assert!(b.receive_count > a.receive_count);
        q.delete(b.receipt).unwrap();
        assert!(q.is_drained(), "deleting one receipt purges all copies");
        // Deleting the other receipt now fails (message gone) but that is a
        // stale-receipt error the worker loop tolerates.
        assert!(q.delete(a.receipt).is_err());
        assert_eq!(q.stats().duplicate_deliveries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn transient_errors_injected() {
        let cfg = QueueConfig {
            visibility_timeout: Duration::from_secs(30),
            chaos: ChaosConfig {
                transient_error_probability: 1.0,
                ..ChaosConfig::NONE
            },
            seed: 7,
        };
        let q = Queue::new("q", cfg);
        assert!(q.send("x").unwrap_err().is_retryable());
    }

    #[test]
    fn metrics_snapshot_is_consistent() {
        let q = quick_queue(10_000);
        for i in 0..5 {
            q.send(format!("{i}")).unwrap();
        }
        let a = q.receive().unwrap().unwrap();
        let _b = q.receive().unwrap().unwrap();
        let snap = q.metrics_snapshot();
        assert_eq!(snap.visible, 3);
        assert_eq!(snap.in_flight, 2);
        assert_eq!(snap.outstanding(), 5);
        assert!(snap.oldest_age.is_some());
        q.delete(a.receipt).unwrap();
        assert_eq!(q.metrics_snapshot().outstanding(), 4);
        // Empty queue: no age.
        let empty = Queue::new("e", QueueConfig::default());
        let snap = empty.metrics_snapshot();
        assert_eq!(snap.outstanding(), 0);
        assert!(snap.oldest_age.is_none());
    }

    #[test]
    fn stats_count_requests() {
        let q = quick_queue(10_000);
        q.send("a").unwrap();
        q.send("b").unwrap();
        let m = q.receive().unwrap().unwrap();
        q.receive().unwrap().unwrap();
        q.receive().unwrap(); // empty
        q.delete(m.receipt).unwrap();
        let s = q.stats();
        assert_eq!(s.sends.load(Ordering::Relaxed), 2);
        assert_eq!(s.receives.load(Ordering::Relaxed), 3);
        assert_eq!(s.empty_receives.load(Ordering::Relaxed), 1);
        assert_eq!(s.deletes.load(Ordering::Relaxed), 1);
        assert_eq!(s.requests(), 6);
    }

    #[test]
    fn concurrent_consumers_each_message_processed() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let q = std::sync::Arc::new(quick_queue(10_000));
        let n = 200;
        for i in 0..n {
            q.send(format!("{i}")).unwrap();
        }
        let seen: std::sync::Arc<StdMutex<HashSet<String>>> = Default::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let q = q.clone();
                let seen = seen.clone();
                s.spawn(move || loop {
                    match q.receive().unwrap() {
                        Some(m) => {
                            seen.lock().unwrap().insert(m.body.clone());
                            q.delete(m.receipt).unwrap();
                        }
                        None => {
                            if q.is_drained() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), n);
        assert!(q.is_drained());
    }
}
