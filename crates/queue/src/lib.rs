//! # ppc-queue — a distributed message queue, in miniature
//!
//! Stands in for Amazon SQS and the Azure Queue service (paper §2.1.1):
//! *"SQS is a reliable, scalable, distributed web-scale message queue service
//! that is eventually consistent and ideal for small, short-lived transient
//! messages. ... SQS does not guarantee the order of the messages, the
//! deletion of messages or the availability of all the messages for a
//! request, though it does guarantee eventual availability over multiple
//! requests. Each message has a configurable visibility timeout."*
//!
//! Those are exactly the semantics implemented here:
//!
//! * **At-least-once delivery** — a received message is *hidden*, not
//!   removed; unless deleted before its visibility timeout lapses it
//!   reappears and will be processed again. This is the Classic Cloud
//!   framework's entire fault-tolerance story.
//! * **No ordering** — receives draw pseudo-randomly from the visible pool.
//! * **Eventual availability** — a receive may return empty even when
//!   messages exist ([`chaos::ChaosConfig::empty_receive_probability`]).
//! * **Stale receipts** — deleting with a receipt whose message has already
//!   reappeared fails; the re-delivered copy wins, and the application's
//!   idempotence absorbs the duplicate execution.
//! * **Request metering** — every API call counts; SQS bills per request.

pub mod chaos;
pub mod message;
pub mod polling;
pub mod queue;
pub mod redrive;
pub mod service;

pub use chaos::ChaosConfig;
pub use message::{Message, MessageId, ReceiptHandle};
pub use queue::{Queue, QueueConfig, QueueMetricsSnapshot, QueueStats};
pub use redrive::{RedrivePolicy, RedriveQueue};
pub use service::QueueService;
