//! Failure injection for the queue service.
//!
//! The paper's frameworks must be robust to the queue's weak guarantees.
//! [`ChaosConfig`] turns each weakness into a dial so tests can prove the
//! framework converges under each of them:
//!
//! * empty receives while messages exist (eventual availability),
//! * duplicate delivery of a message that was *not* yet timed out
//!   (at-least-once delivery applies even without consumer failure),
//! * transient API errors the client must retry.

use ppc_core::{PpcError, Result};

/// Probabilities for injected queue misbehaviour. All default to zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// P(a receive returns empty despite visible messages).
    pub empty_receive_probability: f64,
    /// P(a receive hands out a message *without* hiding it, so another
    /// consumer can take it concurrently — a true duplicate delivery).
    pub duplicate_delivery_probability: f64,
    /// P(any API call fails with a retryable `Transient` error).
    pub transient_error_probability: f64,
}

impl ChaosConfig {
    /// No injected misbehaviour.
    pub const NONE: ChaosConfig = ChaosConfig {
        empty_receive_probability: 0.0,
        duplicate_delivery_probability: 0.0,
        transient_error_probability: 0.0,
    };

    /// The flakiness level used in the fault-tolerance integration tests:
    /// noticeable but survivable.
    pub fn flaky() -> ChaosConfig {
        ChaosConfig {
            empty_receive_probability: 0.10,
            duplicate_delivery_probability: 0.05,
            transient_error_probability: 0.02,
        }
    }

    /// Reject probabilities outside `[0, 1]`, naming the offender. Called
    /// at every entry point that accepts a [`ChaosConfig`] (queue
    /// construction, the Classic Cloud runtimes) so bad dials fail loudly
    /// instead of silently skewing an experiment.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("empty_receive_probability", self.empty_receive_probability),
            (
                "duplicate_delivery_probability",
                self.duplicate_delivery_probability,
            ),
            (
                "transient_error_probability",
                self.transient_error_probability,
            ),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(PpcError::InvalidArgument(format!(
                    "queue chaos: {name} = {p} is not a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quiet() {
        assert_eq!(ChaosConfig::default(), ChaosConfig::NONE);
        assert!(ChaosConfig::NONE.validate().is_ok());
    }

    #[test]
    fn validation_names_the_bad_probability() {
        let mut c = ChaosConfig::NONE;
        c.empty_receive_probability = 1.5;
        let e = c.validate().unwrap_err();
        assert_eq!(e.code(), "InvalidArgument");
        assert!(e.to_string().contains("empty_receive_probability"), "{e}");
        c.empty_receive_probability = -0.1;
        assert!(c.validate().is_err());
        let mut c = ChaosConfig::NONE;
        c.transient_error_probability = 2.0;
        assert!(c
            .validate()
            .unwrap_err()
            .to_string()
            .contains("transient_error_probability"));
    }

    #[test]
    fn flaky_is_valid() {
        assert!(ChaosConfig::flaky().validate().is_ok());
    }
}
