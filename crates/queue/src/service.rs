//! Multi-queue service endpoint.
//!
//! SQS and Azure Queue let users "create an unlimited number of queues";
//! the Classic Cloud framework uses (at least) a scheduling queue and a
//! monitoring queue per job. [`QueueService`] is that named-queue namespace
//! plus account-level billing.

use crate::queue::{Queue, QueueConfig};
use ppc_core::money::Usd;
use ppc_core::pricing::PriceBook;
use ppc_core::sync::RwLock;
use ppc_core::{PpcError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// A namespace of named queues (one cloud account's queue service).
#[derive(Default)]
pub struct QueueService {
    queues: RwLock<HashMap<String, Arc<Queue>>>,
}

impl QueueService {
    pub fn new() -> Arc<QueueService> {
        Arc::new(QueueService::default())
    }

    /// Create a queue; errors if the name is taken or the chaos
    /// configuration holds out-of-range probabilities.
    pub fn create_queue(&self, name: &str, config: QueueConfig) -> Result<Arc<Queue>> {
        config.chaos.validate()?;
        let mut queues = self.queues.write();
        if queues.contains_key(name) {
            return Err(PpcError::AlreadyExists(format!("queue '{name}'")));
        }
        let q = Arc::new(Queue::new(name, config));
        queues.insert(name.to_string(), q.clone());
        Ok(q)
    }

    /// Look up an existing queue.
    pub fn queue(&self, name: &str) -> Result<Arc<Queue>> {
        self.queues
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PpcError::NotFound(format!("queue '{name}'")))
    }

    /// Delete a queue and all its messages (SQS deletes unconditionally).
    pub fn delete_queue(&self, name: &str) -> Result<()> {
        self.queues
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| PpcError::NotFound(format!("queue '{name}'")))
    }

    /// Names of all queues, sorted.
    pub fn list_queues(&self) -> Vec<String> {
        let mut names: Vec<String> = self.queues.read().keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Total billable requests across all queues (including deleted ones'
    /// surviving handles — billing follows the `Arc`, so keep handles if you
    /// delete queues mid-run and still want their bill).
    pub fn total_requests(&self) -> u64 {
        self.queues
            .read()
            .values()
            .map(|q| q.stats().requests())
            .sum()
    }

    /// Price the account's queue usage against a provider price book.
    pub fn bill(&self, book: &PriceBook) -> Usd {
        book.queue_requests(self.total_requests())
    }

    /// Aggregate stats snapshot keyed by queue name.
    pub fn stats(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .queues
            .read()
            .iter()
            .map(|(n, q)| (n.clone(), q.stats().requests()))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::pricing::AWS_2010;

    #[test]
    fn create_lookup_delete() {
        let svc = QueueService::new();
        svc.create_queue("sched", QueueConfig::default()).unwrap();
        assert!(svc.queue("sched").is_ok());
        assert_eq!(
            svc.create_queue("sched", QueueConfig::default())
                .unwrap_err()
                .code(),
            "AlreadyExists"
        );
        svc.delete_queue("sched").unwrap();
        assert_eq!(svc.queue("sched").unwrap_err().code(), "NotFound");
        assert_eq!(svc.delete_queue("sched").unwrap_err().code(), "NotFound");
    }

    #[test]
    fn list_is_sorted() {
        let svc = QueueService::new();
        for n in ["monitor", "sched", "audit"] {
            svc.create_queue(n, QueueConfig::default()).unwrap();
        }
        assert_eq!(svc.list_queues(), vec!["audit", "monitor", "sched"]);
    }

    #[test]
    fn billing_counts_all_queues() {
        let svc = QueueService::new();
        let a = svc.create_queue("a", QueueConfig::default()).unwrap();
        let b = svc.create_queue("b", QueueConfig::default()).unwrap();
        for _ in 0..6_000 {
            a.send("x").unwrap();
        }
        for _ in 0..4_000 {
            b.send("y").unwrap();
        }
        assert_eq!(svc.total_requests(), 10_000);
        assert_eq!(svc.bill(&AWS_2010), Usd::cents(1)); // Table 4's "~10,000 messages: 0.01$"
    }

    #[test]
    fn stats_by_queue() {
        let svc = QueueService::new();
        let a = svc.create_queue("a", QueueConfig::default()).unwrap();
        a.send("x").unwrap();
        let stats = svc.stats();
        assert_eq!(stats, vec![("a".to_string(), 1)]);
    }
}
