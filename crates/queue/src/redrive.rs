//! Dead-letter redrive policy.
//!
//! SQS lets a queue declare "after N receives, stop redelivering and move
//! the message to a dead-letter queue". The Classic Cloud runtime
//! implements its own dead-letter policy at the application level (it must:
//! it needs to *report* the failure); this service-level policy is the
//! infrastructure variant, used when the consumer cannot be trusted to
//! police poison messages itself.

use crate::message::Message;
use crate::queue::{Queue, QueueConfig};
use ppc_core::Result;
use std::sync::Arc;

/// When a message has been received more than `max_receive_count` times,
/// the next receive diverts it to the dead-letter store instead of
/// delivering it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedrivePolicy {
    pub max_receive_count: u32,
}

/// A queue wrapped with a redrive policy and its dead-letter queue.
pub struct RedriveQueue {
    queue: Arc<Queue>,
    dead_letter: Arc<Queue>,
    policy: RedrivePolicy,
}

impl RedriveQueue {
    pub fn new(queue: Arc<Queue>, dead_letter: Arc<Queue>, policy: RedrivePolicy) -> RedriveQueue {
        assert!(
            policy.max_receive_count >= 1,
            "max_receive_count must be at least 1"
        );
        RedriveQueue {
            queue,
            dead_letter,
            policy,
        }
    }

    /// Build a fresh pair of (main, DLQ) queues under one policy.
    pub fn with_fresh_queues(
        name: &str,
        config: QueueConfig,
        policy: RedrivePolicy,
    ) -> RedriveQueue {
        RedriveQueue::new(
            Arc::new(Queue::new(name, config)),
            Arc::new(Queue::new(format!("{name}-dlq"), QueueConfig::default())),
            policy,
        )
    }

    pub fn queue(&self) -> &Arc<Queue> {
        &self.queue
    }

    pub fn dead_letter(&self) -> &Arc<Queue> {
        &self.dead_letter
    }

    /// Send to the main queue.
    pub fn send(&self, body: impl Into<String>) -> Result<crate::message::MessageId> {
        self.queue.send(body)
    }

    /// Receive with redrive: a message past its receive budget is moved to
    /// the dead-letter queue (preserving its body) and the next candidate
    /// is tried, so consumers only ever see live messages.
    pub fn receive(&self) -> Result<Option<Message>> {
        loop {
            match self.queue.receive()? {
                None => return Ok(None),
                Some(m) if m.receive_count > self.policy.max_receive_count => {
                    self.dead_letter.send(m.body.clone())?;
                    // Remove from the main queue; a stale receipt here means
                    // a concurrent consumer got it first — fine either way.
                    let _ = self.queue.delete(m.receipt);
                    continue;
                }
                Some(m) => return Ok(Some(m)),
            }
        }
    }

    /// Delete from the main queue.
    pub fn delete(&self, receipt: crate::message::ReceiptHandle) -> Result<()> {
        self.queue.delete(receipt)
    }

    /// Number of dead-lettered messages awaiting inspection.
    pub fn dead_letter_count(&self) -> usize {
        self.dead_letter.approximate_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fast_config() -> QueueConfig {
        QueueConfig {
            visibility_timeout: Duration::from_millis(10),
            ..QueueConfig::default()
        }
    }

    #[test]
    fn healthy_messages_flow_normally() {
        let rq = RedriveQueue::with_fresh_queues(
            "jobs",
            fast_config(),
            RedrivePolicy {
                max_receive_count: 3,
            },
        );
        rq.send("ok").unwrap();
        let m = rq.receive().unwrap().unwrap();
        rq.delete(m.receipt).unwrap();
        assert_eq!(rq.dead_letter_count(), 0);
        assert!(rq.queue().is_drained());
    }

    #[test]
    fn poison_message_lands_in_dlq() {
        let rq = RedriveQueue::with_fresh_queues(
            "jobs",
            fast_config(),
            RedrivePolicy {
                max_receive_count: 2,
            },
        );
        rq.send("poison").unwrap();
        // Consume-and-crash twice (receive without delete, wait for timeout).
        for _ in 0..2 {
            let m = rq.receive().unwrap().unwrap();
            assert_eq!(m.body, "poison");
            std::thread::sleep(Duration::from_millis(25));
        }
        // Third receive diverts to the DLQ and the consumer sees nothing.
        assert!(rq.receive().unwrap().is_none());
        assert_eq!(rq.dead_letter_count(), 1);
        let dead = rq.dead_letter().receive().unwrap().unwrap();
        assert_eq!(dead.body, "poison");
        assert!(rq.queue().is_drained());
    }

    #[test]
    fn redrive_skips_to_live_messages() {
        let rq = RedriveQueue::with_fresh_queues(
            "jobs",
            fast_config(),
            RedrivePolicy {
                max_receive_count: 1,
            },
        );
        rq.send("poison").unwrap();
        // Burn the poison message's only allowed receive.
        let m = rq.receive().unwrap().unwrap();
        assert_eq!(m.body, "poison");
        std::thread::sleep(Duration::from_millis(25));
        // A fresh message arrives; the next receive dead-letters the
        // reappeared poison copy and hands over the healthy one.
        rq.send("healthy").unwrap();
        let mut saw_healthy = false;
        for _ in 0..10 {
            if let Some(m) = rq.receive().unwrap() {
                assert_eq!(m.body, "healthy");
                rq.delete(m.receipt).unwrap();
                saw_healthy = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(15));
        }
        assert!(saw_healthy);
        assert_eq!(rq.dead_letter_count(), 1);
        assert!(rq.queue().is_drained());
    }

    #[test]
    #[should_panic(expected = "max_receive_count")]
    fn zero_budget_rejected() {
        RedriveQueue::with_fresh_queues(
            "x",
            QueueConfig::default(),
            RedrivePolicy {
                max_receive_count: 0,
            },
        );
    }
}
