//! The storage service itself: buckets of objects behind a thread-safe API.
//!
//! This is the native (in-process) implementation used by the Classic Cloud
//! runtime's worker threads. The discrete-event simulator does not call this
//! code; it models the same endpoint with `ppc-des` servers and the same
//! [`LatencyModel`].

use crate::consistency::ConsistencyModel;
use crate::latency::LatencyModel;
use crate::metering::Metering;
use ppc_chaos::{FaultSchedule, RunClock, StorageFault};
use ppc_core::retry::RetryPolicy;
use ppc_core::rng::Pcg32;
use ppc_core::sync::RwLock;
use ppc_core::{PpcError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Metadata for one stored object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    pub key: String,
    pub size: u64,
    /// Seconds since the service epoch at which this version was written.
    pub written_at_s: f64,
}

struct StoredObject {
    data: Arc<Vec<u8>>,
    written_at_s: f64,
}

type Bucket = HashMap<String, StoredObject>;

/// An S3/Azure-Blob-like object store.
///
/// ```
/// use ppc_storage::service::StorageService;
/// let s3 = StorageService::in_memory();
/// s3.create_bucket("job-in").unwrap();
/// s3.put("job-in", "f0.fa", b">r1\nACGT\n".to_vec()).unwrap();
/// assert_eq!(s3.list("job-in", "f").unwrap(), vec!["f0.fa"]);
/// assert_eq!(&*s3.get("job-in", "f0.fa").unwrap(), b">r1\nACGT\n");
/// ```
pub struct StorageService {
    buckets: RwLock<HashMap<String, Bucket>>,
    latency: LatencyModel,
    consistency: ConsistencyModel,
    metering: Metering,
    epoch: Instant,
    /// Fraction of modeled latency to actually sleep in native mode.
    /// 0.0 (default) = never sleep; 1.0 = full fidelity.
    delay_scale: f64,
    /// Optional chaos injection: brownout/partition windows queried
    /// against a clock started when the schedule was attached.
    chaos: RwLock<Option<ChaosInjection>>,
}

struct ChaosInjection {
    schedule: Arc<FaultSchedule>,
    clock: RunClock,
}

impl StorageService {
    /// A strongly consistent, zero-latency store (unit tests, baselines).
    pub fn in_memory() -> Arc<StorageService> {
        Arc::new(StorageService {
            buckets: RwLock::new(HashMap::new()),
            latency: LatencyModel::FREE,
            consistency: ConsistencyModel::strong(),
            metering: Metering::new(),
            epoch: Instant::now(),
            delay_scale: 0.0,
            chaos: RwLock::new(None),
        })
    }

    /// A store with cloud-like latency and eventual consistency.
    pub fn cloud(
        latency: LatencyModel,
        consistency: ConsistencyModel,
        delay_scale: f64,
    ) -> Arc<StorageService> {
        assert!(delay_scale >= 0.0);
        Arc::new(StorageService {
            buckets: RwLock::new(HashMap::new()),
            latency,
            consistency,
            metering: Metering::new(),
            epoch: Instant::now(),
            delay_scale,
            chaos: RwLock::new(None),
        })
    }

    /// Attach a [`FaultSchedule`]: from now on, requests issued inside one
    /// of its storage outage windows (measured from this call) fail with a
    /// retryable [`PpcError::Transient`] — a brownout clients with backoff
    /// ride out, or a partition that lasts the whole window.
    pub fn set_chaos(&self, schedule: Arc<FaultSchedule>) {
        *self.chaos.write() = Some(ChaosInjection {
            schedule,
            clock: RunClock::start(),
        });
    }

    /// Detach any fault schedule; the service is healthy again.
    pub fn clear_chaos(&self) {
        *self.chaos.write() = None;
    }

    /// Fail the current request if a storage outage window is in effect.
    fn chaos_check(&self) -> Result<()> {
        let chaos = self.chaos.read();
        if let Some(inj) = chaos.as_ref() {
            match inj.schedule.storage_fault(inj.clock.now_s()) {
                Some(StorageFault::Brownout) => {
                    return Err(PpcError::Transient("storage brownout".into()));
                }
                Some(StorageFault::Partition) => {
                    return Err(PpcError::Transient("storage partition".into()));
                }
                None => {}
            }
        }
        Ok(())
    }

    /// The latency model clients should assume for this endpoint.
    pub fn latency_model(&self) -> LatencyModel {
        self.latency
    }

    /// Usage counters for billing.
    pub fn metering(&self) -> &Metering {
        &self.metering
    }

    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn sleep_for(&self, seconds: f64) {
        if self.delay_scale > 0.0 && seconds > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(seconds * self.delay_scale));
        }
    }

    /// Create a bucket; errors if it already exists.
    pub fn create_bucket(&self, name: &str) -> Result<()> {
        self.metering.record_request();
        self.sleep_for(self.latency.request_seconds());
        let mut buckets = self.buckets.write();
        if buckets.contains_key(name) {
            return Err(PpcError::AlreadyExists(format!("bucket '{name}'")));
        }
        buckets.insert(name.to_string(), Bucket::new());
        Ok(())
    }

    /// Create a bucket if absent; idempotent convenience for job setup.
    pub fn ensure_bucket(&self, name: &str) {
        self.metering.record_request();
        self.buckets.write().entry(name.to_string()).or_default();
    }

    /// Delete an *empty* bucket.
    pub fn delete_bucket(&self, name: &str) -> Result<()> {
        self.metering.record_request();
        let mut buckets = self.buckets.write();
        match buckets.get(name) {
            None => Err(PpcError::NotFound(format!("bucket '{name}'"))),
            Some(b) if !b.is_empty() => Err(PpcError::InvalidState(format!(
                "bucket '{name}' is not empty"
            ))),
            Some(_) => {
                buckets.remove(name);
                Ok(())
            }
        }
    }

    /// Store an object (replacing any prior version).
    pub fn put(&self, bucket: &str, key: &str, data: Vec<u8>) -> Result<()> {
        if key.is_empty() {
            return Err(PpcError::InvalidArgument("empty object key".into()));
        }
        self.chaos_check()?;
        self.metering.record_request();
        let size = data.len() as u64;
        self.metering.record_bytes_in(size);
        self.sleep_for(self.latency.transfer_seconds(size));
        let mut buckets = self.buckets.write();
        let b = buckets
            .get_mut(bucket)
            .ok_or_else(|| PpcError::NotFound(format!("bucket '{bucket}'")))?;
        let prior = b.get(key).map(|o| o.data.len() as u64).unwrap_or(0);
        b.insert(
            key.to_string(),
            StoredObject {
                data: Arc::new(data),
                written_at_s: self.now_s(),
            },
        );
        self.metering.record_stored_delta(size, prior);
        Ok(())
    }

    /// Fetch an object. May return `NotFound` for *recently written* objects
    /// under an eventually consistent model — callers are expected to retry,
    /// exactly as the paper's workers do.
    pub fn get(&self, bucket: &str, key: &str) -> Result<Arc<Vec<u8>>> {
        self.chaos_check()?;
        self.metering.record_request();
        let (data, age_s) = {
            let buckets = self.buckets.read();
            let b = buckets
                .get(bucket)
                .ok_or_else(|| PpcError::NotFound(format!("bucket '{bucket}'")))?;
            let o = b
                .get(key)
                .ok_or_else(|| PpcError::NotFound(format!("object '{bucket}/{key}'")))?;
            (o.data.clone(), self.now_s() - o.written_at_s)
        };
        if !self.consistency.read_visible(age_s) {
            return Err(PpcError::Transient(format!(
                "object '{bucket}/{key}' not yet visible (eventual consistency)"
            )));
        }
        self.metering.record_bytes_out(data.len() as u64);
        self.sleep_for(self.latency.transfer_seconds(data.len() as u64));
        Ok(data)
    }

    /// Fetch with bounded retry, the client-side idiom for eventual
    /// consistency. Retries only [`PpcError::Transient`] failures, through
    /// the shared [`RetryPolicy`]: exponential backoff (seeded at one
    /// request round-trip) with jitter, slept at the same `delay_scale`
    /// as modeled latency.
    pub fn get_with_retry(
        &self,
        bucket: &str,
        key: &str,
        max_attempts: u32,
    ) -> Result<Arc<Vec<u8>>> {
        let rtt = self.latency.request_seconds().max(0.0);
        let policy = RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_secs_f64(rtt),
            max_delay: Duration::from_secs_f64(rtt * 8.0),
            multiplier: 2.0,
            jitter: 0.5,
            budget: None,
        };
        // Deterministic per-key jitter stream (no global RNG state).
        let seed = key
            .bytes()
            .fold(0x5u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        let mut rng = Pcg32::new(seed);
        policy.run(
            &mut rng,
            None,
            |d| self.sleep_for(d.as_secs_f64()),
            |_| self.get(bucket, key),
        )
    }

    /// Object metadata without the payload (HTTP `HEAD`).
    pub fn head(&self, bucket: &str, key: &str) -> Result<ObjectMeta> {
        self.chaos_check()?;
        self.metering.record_request();
        let buckets = self.buckets.read();
        let b = buckets
            .get(bucket)
            .ok_or_else(|| PpcError::NotFound(format!("bucket '{bucket}'")))?;
        let o = b
            .get(key)
            .ok_or_else(|| PpcError::NotFound(format!("object '{bucket}/{key}'")))?;
        Ok(ObjectMeta {
            key: key.to_string(),
            size: o.data.len() as u64,
            written_at_s: o.written_at_s,
        })
    }

    /// Fetch a byte range of an object (HTTP `Range` requests — how real
    /// workers resume interrupted downloads of big inputs like the BLAST
    /// database). The range is clamped to the object size; an empty clamped
    /// range returns an empty payload.
    pub fn get_range(&self, bucket: &str, key: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.chaos_check()?;
        self.metering.record_request();
        let (data, age_s) = {
            let buckets = self.buckets.read();
            let b = buckets
                .get(bucket)
                .ok_or_else(|| PpcError::NotFound(format!("bucket '{bucket}'")))?;
            let o = b
                .get(key)
                .ok_or_else(|| PpcError::NotFound(format!("object '{bucket}/{key}'")))?;
            (o.data.clone(), self.now_s() - o.written_at_s)
        };
        if !self.consistency.read_visible(age_s) {
            return Err(PpcError::Transient(format!(
                "object '{bucket}/{key}' not yet visible (eventual consistency)"
            )));
        }
        let start = (offset as usize).min(data.len());
        let end = (offset.saturating_add(len) as usize).min(data.len());
        let slice = data[start..end].to_vec();
        self.metering.record_bytes_out(slice.len() as u64);
        self.sleep_for(self.latency.transfer_seconds(slice.len() as u64));
        Ok(slice)
    }

    /// Server-side copy (S3 `CopyObject`): no bytes cross the wire.
    pub fn copy(
        &self,
        src_bucket: &str,
        src_key: &str,
        dst_bucket: &str,
        dst_key: &str,
    ) -> Result<()> {
        if dst_key.is_empty() {
            return Err(PpcError::InvalidArgument("empty destination key".into()));
        }
        self.chaos_check()?;
        self.metering.record_request();
        let mut buckets = self.buckets.write();
        let data = buckets
            .get(src_bucket)
            .ok_or_else(|| PpcError::NotFound(format!("bucket '{src_bucket}'")))?
            .get(src_key)
            .ok_or_else(|| PpcError::NotFound(format!("object '{src_bucket}/{src_key}'")))?
            .data
            .clone();
        let dst = buckets
            .get_mut(dst_bucket)
            .ok_or_else(|| PpcError::NotFound(format!("bucket '{dst_bucket}'")))?;
        let prior = dst.get(dst_key).map(|o| o.data.len() as u64).unwrap_or(0);
        let size = data.len() as u64;
        dst.insert(
            dst_key.to_string(),
            StoredObject {
                data,
                written_at_s: self.now_s(),
            },
        );
        self.metering.record_stored_delta(size, prior);
        Ok(())
    }

    /// Paginated listing (S3 `ListObjectsV2`): up to `max_keys` keys after
    /// `start_after`, plus a continuation token when truncated.
    pub fn list_page(
        &self,
        bucket: &str,
        prefix: &str,
        start_after: Option<&str>,
        max_keys: usize,
    ) -> Result<(Vec<String>, Option<String>)> {
        let all = self.list(bucket, prefix)?;
        let begin = match start_after {
            Some(after) => all.partition_point(|k| k.as_str() <= after),
            None => 0,
        };
        let page: Vec<String> = all[begin..].iter().take(max_keys).cloned().collect();
        let token = if begin + page.len() < all.len() {
            page.last().cloned()
        } else {
            None
        };
        Ok((page, token))
    }

    /// Delete an object; deleting a missing object succeeds (S3 semantics).
    pub fn delete(&self, bucket: &str, key: &str) -> Result<()> {
        self.chaos_check()?;
        self.metering.record_request();
        let mut buckets = self.buckets.write();
        let b = buckets
            .get_mut(bucket)
            .ok_or_else(|| PpcError::NotFound(format!("bucket '{bucket}'")))?;
        if let Some(o) = b.remove(key) {
            self.metering.record_stored_delta(0, o.data.len() as u64);
        }
        Ok(())
    }

    /// List keys in a bucket with the given prefix, sorted.
    pub fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<String>> {
        self.metering.record_request();
        let buckets = self.buckets.read();
        let b = buckets
            .get(bucket)
            .ok_or_else(|| PpcError::NotFound(format!("bucket '{bucket}'")))?;
        let mut keys: Vec<String> = b
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort_unstable();
        Ok(keys)
    }

    /// Number of objects currently in a bucket.
    pub fn count(&self, bucket: &str) -> Result<usize> {
        let buckets = self.buckets.read();
        buckets
            .get(bucket)
            .map(|b| b.len())
            .ok_or_else(|| PpcError::NotFound(format!("bucket '{bucket}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let s = StorageService::in_memory();
        s.create_bucket("in").unwrap();
        s.put("in", "a.fa", b"ACGT".to_vec()).unwrap();
        assert_eq!(*s.get("in", "a.fa").unwrap(), b"ACGT".to_vec());
    }

    #[test]
    fn missing_object_and_bucket() {
        let s = StorageService::in_memory();
        assert_eq!(s.get("nope", "k").unwrap_err().code(), "NotFound");
        s.create_bucket("b").unwrap();
        assert_eq!(s.get("b", "k").unwrap_err().code(), "NotFound");
    }

    #[test]
    fn duplicate_bucket_rejected_but_ensure_is_idempotent() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        assert_eq!(s.create_bucket("b").unwrap_err().code(), "AlreadyExists");
        s.ensure_bucket("b");
        s.ensure_bucket("c");
        assert!(s.count("c").unwrap() == 0);
    }

    #[test]
    fn delete_bucket_requires_empty() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        s.put("b", "k", vec![1]).unwrap();
        assert_eq!(s.delete_bucket("b").unwrap_err().code(), "InvalidState");
        s.delete("b", "k").unwrap();
        s.delete_bucket("b").unwrap();
        assert_eq!(s.count("b").unwrap_err().code(), "NotFound");
    }

    #[test]
    fn delete_missing_object_is_ok() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        s.delete("b", "ghost").unwrap();
    }

    #[test]
    fn list_filters_and_sorts() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        for k in ["in/2", "in/1", "out/1"] {
            s.put("b", k, vec![0]).unwrap();
        }
        assert_eq!(s.list("b", "in/").unwrap(), vec!["in/1", "in/2"]);
        assert_eq!(s.list("b", "").unwrap().len(), 3);
    }

    #[test]
    fn head_reports_size() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        s.put("b", "k", vec![9; 123]).unwrap();
        let m = s.head("b", "k").unwrap();
        assert_eq!(m.size, 123);
        assert_eq!(m.key, "k");
    }

    #[test]
    fn overwrite_updates_stored_bytes() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        s.put("b", "k", vec![0; 100]).unwrap();
        s.put("b", "k", vec![0; 40]).unwrap();
        let snap = s.metering().snapshot();
        assert_eq!(snap.stored_bytes, 40);
        assert_eq!(snap.peak_stored_bytes, 100);
        assert_eq!(snap.bytes_in, 140);
    }

    #[test]
    fn eventual_consistency_miss_then_retry_succeeds() {
        // 100% miss inside a long window: plain get fails Transient,
        // and get_with_retry exhausts attempts with the Transient error.
        let s = StorageService::cloud(
            LatencyModel::FREE,
            ConsistencyModel::eventual(3600.0, 1.0, 1),
            0.0,
        );
        s.create_bucket("b").unwrap();
        s.put("b", "k", vec![1]).unwrap();
        let e = s.get("b", "k").unwrap_err();
        assert!(e.is_retryable());
        assert!(s.get_with_retry("b", "k", 3).unwrap_err().is_retryable());

        // 50% miss: retry loop succeeds with overwhelming probability.
        let s = StorageService::cloud(
            LatencyModel::FREE,
            ConsistencyModel::eventual(3600.0, 0.5, 2),
            0.0,
        );
        s.create_bucket("b").unwrap();
        s.put("b", "k", vec![1]).unwrap();
        assert!(s.get_with_retry("b", "k", 64).is_ok());
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..50 {
                        let key = format!("t{t}/o{i}");
                        s.put("b", &key, vec![t as u8; 64]).unwrap();
                        assert_eq!(s.get("b", &key).unwrap().len(), 64);
                    }
                });
            }
        });
        assert_eq!(s.count("b").unwrap(), 400);
    }

    #[test]
    fn range_reads() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        s.put("b", "k", (0..100u8).collect()).unwrap();
        assert_eq!(
            s.get_range("b", "k", 10, 5).unwrap(),
            vec![10, 11, 12, 13, 14]
        );
        assert_eq!(
            s.get_range("b", "k", 95, 50).unwrap(),
            vec![95, 96, 97, 98, 99],
            "clamped at end"
        );
        assert!(
            s.get_range("b", "k", 500, 10).unwrap().is_empty(),
            "past-end range is empty"
        );
        assert_eq!(
            s.get_range("b", "ghost", 0, 1).unwrap_err().code(),
            "NotFound"
        );
    }

    #[test]
    fn server_side_copy() {
        let s = StorageService::in_memory();
        s.create_bucket("src").unwrap();
        s.create_bucket("dst").unwrap();
        s.put("src", "k", vec![1, 2, 3]).unwrap();
        let out_before = s.metering().snapshot().bytes_out;
        s.copy("src", "k", "dst", "k2").unwrap();
        assert_eq!(*s.get("dst", "k2").unwrap(), vec![1, 2, 3]);
        assert_eq!(
            s.metering().snapshot().bytes_out,
            out_before + 3,
            "only the verification GET moved bytes"
        );
        assert!(s.copy("src", "ghost", "dst", "x").is_err());
    }

    #[test]
    fn paginated_listing() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        for i in 0..7 {
            s.put("b", &format!("k{i}"), vec![0]).unwrap();
        }
        let (page1, token1) = s.list_page("b", "k", None, 3).unwrap();
        assert_eq!(page1, vec!["k0", "k1", "k2"]);
        let token1 = token1.expect("truncated");
        let (page2, token2) = s.list_page("b", "k", Some(&token1), 3).unwrap();
        assert_eq!(page2, vec!["k3", "k4", "k5"]);
        let (page3, token3) = s.list_page("b", "k", token2.as_deref(), 3).unwrap();
        assert_eq!(page3, vec!["k6"]);
        assert!(token3.is_none(), "final page has no token");
    }

    #[test]
    fn brownout_window_fails_transiently_then_recovers() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        s.put("b", "k", vec![1]).unwrap();
        // Brownout for the first 50 ms after attach: requests inside the
        // window fail retryably; once it lapses the object is readable.
        s.set_chaos(Arc::new(FaultSchedule::new(1).brownout(0.0, 0.05)));
        let e = s.get("b", "k").unwrap_err();
        assert!(e.is_retryable(), "brownout must be retryable: {e}");
        assert!(s.put("b", "k2", vec![2]).unwrap_err().is_retryable());
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(*s.get("b", "k").unwrap(), vec![1]);
        s.clear_chaos();
        assert!(s.get("b", "k").is_ok());
    }

    #[test]
    fn get_with_retry_rides_out_a_brownout() {
        let s = StorageService::cloud(
            LatencyModel {
                request_latency_s: 0.005,
                ..LatencyModel::FREE
            },
            ConsistencyModel::strong(),
            1.0,
        );
        s.create_bucket("b").unwrap();
        s.put("b", "k", vec![7]).unwrap();
        s.set_chaos(Arc::new(FaultSchedule::new(2).brownout(0.0, 0.03)));
        // Backoff sleeps carry the client past the 30 ms window.
        assert_eq!(*s.get_with_retry("b", "k", 32).unwrap(), vec![7]);
    }

    #[test]
    fn empty_key_rejected() {
        let s = StorageService::in_memory();
        s.create_bucket("b").unwrap();
        assert_eq!(
            s.put("b", "", vec![]).unwrap_err().code(),
            "InvalidArgument"
        );
    }
}
