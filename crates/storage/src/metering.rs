//! Request/byte metering for billing.
//!
//! Both S3 and Azure Blob bill on three axes (paper §2.1.1): stored bytes
//! over time, transferred bytes, and API request counts. [`Metering`] keeps
//! lock-free counters on all three; [`MeteringSnapshot`] freezes them and
//! prices them against a `PriceBook`.

use ppc_core::money::Usd;
use ppc_core::pricing::PriceBook;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe usage counters for one service endpoint.
///
/// Relaxed ordering is sufficient throughout: counters are statistically
/// aggregated after the run, never used for synchronization (cf. *Rust
/// Atomics and Locks* ch. 2, "Example: Statistics").
#[derive(Debug, Default)]
pub struct Metering {
    requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    stored_bytes: AtomicU64,
    peak_stored_bytes: AtomicU64,
}

impl Metering {
    pub fn new() -> Metering {
        Metering::default()
    }

    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Track stored-byte growth and maintain the high-water mark.
    pub fn record_stored_delta(&self, grew: u64, shrank: u64) {
        let now = if grew >= shrank {
            self.stored_bytes
                .fetch_add(grew - shrank, Ordering::Relaxed)
                + (grew - shrank)
        } else {
            self.stored_bytes
                .fetch_sub(shrank - grew, Ordering::Relaxed)
                - (shrank - grew)
        };
        self.peak_stored_bytes.fetch_max(now, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> MeteringSnapshot {
        MeteringSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            stored_bytes: self.stored_bytes.load(Ordering::Relaxed),
            peak_stored_bytes: self.peak_stored_bytes.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of a [`Metering`], ready to be priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeteringSnapshot {
    pub requests: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub stored_bytes: u64,
    pub peak_stored_bytes: u64,
}

impl MeteringSnapshot {
    /// Price this usage as *storage* service usage for `months` of residence
    /// at the peak stored size (the conservative convention the paper's
    /// Table 4 uses: "Storage (1GB, 1 month)").
    pub fn storage_cost(&self, book: &PriceBook, months: f64) -> Usd {
        book.storage(self.peak_stored_bytes, months)
            + book.storage_requests(self.requests)
            + book.transfer_in(self.bytes_in)
            + book.transfer_out(self.bytes_out)
    }

    /// Price this usage as *queue* service usage (requests only; queue
    /// payload transfer is folded into request pricing, as SQS does).
    pub fn queue_cost(&self, book: &PriceBook) -> Usd {
        book.queue_requests(self.requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::pricing::{AWS_2010, GIB};

    #[test]
    fn counters_accumulate() {
        let m = Metering::new();
        m.record_request();
        m.record_request();
        m.record_bytes_in(100);
        m.record_bytes_out(40);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.bytes_out, 40);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let m = Metering::new();
        m.record_stored_delta(100, 0);
        m.record_stored_delta(50, 0);
        m.record_stored_delta(0, 120);
        let s = m.snapshot();
        assert_eq!(s.stored_bytes, 30);
        assert_eq!(s.peak_stored_bytes, 150);
    }

    #[test]
    fn table4_style_storage_pricing() {
        let s = MeteringSnapshot {
            requests: 0,
            bytes_in: GIB,
            bytes_out: 0,
            stored_bytes: GIB,
            peak_stored_bytes: GIB,
        };
        // 1 GiB stored a month ($0.14) + 1 GiB in ($0.10) = $0.24 on AWS.
        assert_eq!(s.storage_cost(&AWS_2010, 1.0), Usd::cents(24));
    }

    #[test]
    fn queue_pricing_counts_requests() {
        let s = MeteringSnapshot {
            requests: 10_000,
            ..Default::default()
        };
        assert_eq!(s.queue_cost(&AWS_2010), Usd::cents(1));
    }

    #[test]
    fn concurrent_metering() {
        use std::sync::Arc;
        let m = Arc::new(Metering::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record_request();
                        m.record_stored_delta(2, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.requests, 8000);
        assert_eq!(s.stored_bytes, 8000);
        assert!(s.peak_stored_bytes >= 8000);
    }
}
