//! Eventual-consistency injection.
//!
//! 2010-era S3 offered *eventual* consistency: a `GET` racing a recent `PUT`
//! could observe the object as missing. The paper's frameworks are built to
//! survive this ("High latency, eventually consistent cloud infrastructure
//! service-based frameworks ... were able to exhibit performance efficiencies
//! comparable to ..."). [`ConsistencyModel`] decides, per read, whether a
//! recently written object is visible yet.

use ppc_core::rng::Pcg32;
use ppc_core::sync::Mutex;

/// Controls how reads behave shortly after writes.
#[derive(Debug)]
pub struct ConsistencyModel {
    /// Writes younger than this many seconds *may* be invisible to reads.
    pub inconsistency_window_s: f64,
    /// Probability that a read inside the window misses.
    pub miss_probability: f64,
    rng: Mutex<Pcg32>,
}

impl ConsistencyModel {
    /// Strong consistency: every read sees every earlier write.
    pub fn strong() -> ConsistencyModel {
        ConsistencyModel {
            inconsistency_window_s: 0.0,
            miss_probability: 0.0,
            rng: Mutex::new(Pcg32::new(0)),
        }
    }

    /// Eventually consistent with the given window and miss probability.
    pub fn eventual(window_s: f64, miss_probability: f64, seed: u64) -> ConsistencyModel {
        assert!(
            (0.0..=1.0).contains(&miss_probability),
            "probability out of range"
        );
        ConsistencyModel {
            inconsistency_window_s: window_s,
            miss_probability,
            rng: Mutex::new(Pcg32::new(seed)),
        }
    }

    /// Decide whether a read of an object written `age_s` seconds ago sees it.
    pub fn read_visible(&self, age_s: f64) -> bool {
        if age_s >= self.inconsistency_window_s || self.miss_probability <= 0.0 {
            return true;
        }
        !self.rng.lock().chance(self.miss_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_always_visible() {
        let m = ConsistencyModel::strong();
        for _ in 0..100 {
            assert!(m.read_visible(0.0));
        }
    }

    #[test]
    fn certain_miss_inside_window() {
        let m = ConsistencyModel::eventual(1.0, 1.0, 42);
        assert!(!m.read_visible(0.5));
        assert!(m.read_visible(1.5), "outside the window reads always hit");
    }

    #[test]
    fn probabilistic_misses_roughly_match() {
        let m = ConsistencyModel::eventual(10.0, 0.3, 7);
        let misses = (0..10_000).filter(|_| !m.read_visible(0.0)).count();
        let rate = misses as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate={rate}");
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_rejected() {
        let _ = ConsistencyModel::eventual(1.0, 1.5, 0);
    }
}
