//! A NoSQL entity table — the Azure Table Storage analog.
//!
//! The paper's related work (§7) describes AzureBlast as "developed using
//! Azure Queues, Tables and Blob Storage"; tables are the piece our Classic
//! Cloud framework uses for durable job metadata (see
//! `ppc_classic::history`). The model is Azure's: entities addressed by
//! `(partition_key, row_key)`, strongly ordered range queries within a
//! partition, and optimistic concurrency via ETags.

use ppc_core::sync::RwLock;
use ppc_core::{PpcError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An entity: schemaless properties under a composite key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    pub partition_key: String,
    pub row_key: String,
    /// Property bag (Azure Tables are schemaless; values are strings here).
    pub properties: BTreeMap<String, String>,
    /// Concurrency token, bumped on every write.
    pub etag: u64,
}

impl Entity {
    pub fn new(partition_key: impl Into<String>, row_key: impl Into<String>) -> Entity {
        Entity {
            partition_key: partition_key.into(),
            row_key: row_key.into(),
            properties: BTreeMap::new(),
            etag: 0,
        }
    }

    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Entity {
        self.properties.insert(key.into(), value.into());
        self
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.properties.get(key).map(String::as_str)
    }
}

type Partition = BTreeMap<String, Entity>;

/// One table: a namespace of partitions.
#[derive(Default)]
pub struct TableService {
    tables: RwLock<BTreeMap<String, BTreeMap<String, Partition>>>,
    next_etag: AtomicU64,
    requests: AtomicU64,
}

impl TableService {
    pub fn new() -> TableService {
        TableService::default()
    }

    /// Billable API requests so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    fn tick(&self) -> u64 {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.next_etag.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Create a table (idempotent, like `CreateTableIfNotExists`).
    pub fn ensure_table(&self, name: &str) {
        self.tick();
        self.tables.write().entry(name.to_string()).or_default();
    }

    /// Insert a new entity; fails if the key pair already exists.
    pub fn insert(&self, table: &str, mut entity: Entity) -> Result<u64> {
        let etag = self.tick();
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| PpcError::NotFound(format!("table '{table}'")))?;
        let part = t.entry(entity.partition_key.clone()).or_default();
        if part.contains_key(&entity.row_key) {
            return Err(PpcError::AlreadyExists(format!(
                "entity ({}, {})",
                entity.partition_key, entity.row_key
            )));
        }
        entity.etag = etag;
        part.insert(entity.row_key.clone(), entity);
        Ok(etag)
    }

    /// Insert or replace unconditionally (`InsertOrReplace`).
    pub fn upsert(&self, table: &str, mut entity: Entity) -> Result<u64> {
        let etag = self.tick();
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| PpcError::NotFound(format!("table '{table}'")))?;
        entity.etag = etag;
        t.entry(entity.partition_key.clone())
            .or_default()
            .insert(entity.row_key.clone(), entity);
        Ok(etag)
    }

    /// Replace only if the caller holds the current ETag (optimistic
    /// concurrency — Azure's `If-Match`).
    pub fn replace_if(&self, table: &str, mut entity: Entity, expected_etag: u64) -> Result<u64> {
        let etag = self.tick();
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| PpcError::NotFound(format!("table '{table}'")))?;
        let part = t.get_mut(&entity.partition_key).ok_or_else(|| {
            PpcError::NotFound(format!(
                "entity ({}, {})",
                entity.partition_key, entity.row_key
            ))
        })?;
        let current = part.get(&entity.row_key).ok_or_else(|| {
            PpcError::NotFound(format!(
                "entity ({}, {})",
                entity.partition_key, entity.row_key
            ))
        })?;
        if current.etag != expected_etag {
            return Err(PpcError::InvalidState(format!(
                "etag mismatch: held {expected_etag}, current {}",
                current.etag
            )));
        }
        entity.etag = etag;
        part.insert(entity.row_key.clone(), entity);
        Ok(etag)
    }

    /// Point lookup.
    pub fn get(&self, table: &str, partition_key: &str, row_key: &str) -> Result<Entity> {
        self.tick();
        let tables = self.tables.read();
        tables
            .get(table)
            .ok_or_else(|| PpcError::NotFound(format!("table '{table}'")))?
            .get(partition_key)
            .and_then(|p| p.get(row_key))
            .cloned()
            .ok_or_else(|| PpcError::NotFound(format!("entity ({partition_key}, {row_key})")))
    }

    /// All entities of one partition, in row-key order (the fast query
    /// pattern Azure Tables are designed around).
    pub fn query_partition(&self, table: &str, partition_key: &str) -> Result<Vec<Entity>> {
        self.tick();
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| PpcError::NotFound(format!("table '{table}'")))?;
        Ok(t.get(partition_key)
            .map(|p| p.values().cloned().collect())
            .unwrap_or_default())
    }

    /// Row-key range scan within a partition: `[from, to)`.
    pub fn query_range(
        &self,
        table: &str,
        partition_key: &str,
        from: &str,
        to: &str,
    ) -> Result<Vec<Entity>> {
        self.tick();
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| PpcError::NotFound(format!("table '{table}'")))?;
        Ok(t.get(partition_key)
            .map(|p| {
                p.range(from.to_string()..to.to_string())
                    .map(|(_, e)| e.clone())
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Delete an entity; deleting a missing one succeeds.
    pub fn delete(&self, table: &str, partition_key: &str, row_key: &str) -> Result<()> {
        self.tick();
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| PpcError::NotFound(format!("table '{table}'")))?;
        if let Some(p) = t.get_mut(partition_key) {
            p.remove(row_key);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> TableService {
        let s = TableService::new();
        s.ensure_table("jobs");
        s
    }

    #[test]
    fn insert_get_round_trip() {
        let s = svc();
        let e = Entity::new("cap3", "run-001")
            .with("status", "done")
            .with("tasks", "200");
        s.insert("jobs", e).unwrap();
        let back = s.get("jobs", "cap3", "run-001").unwrap();
        assert_eq!(back.get("status"), Some("done"));
        assert_eq!(back.get("tasks"), Some("200"));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn insert_conflicts_upsert_does_not() {
        let s = svc();
        s.insert("jobs", Entity::new("p", "r")).unwrap();
        assert_eq!(
            s.insert("jobs", Entity::new("p", "r")).unwrap_err().code(),
            "AlreadyExists"
        );
        s.upsert("jobs", Entity::new("p", "r").with("v", "2"))
            .unwrap();
        assert_eq!(s.get("jobs", "p", "r").unwrap().get("v"), Some("2"));
    }

    #[test]
    fn optimistic_concurrency() {
        let s = svc();
        let etag1 = s
            .insert("jobs", Entity::new("p", "r").with("v", "1"))
            .unwrap();
        // A second writer replaces with the right etag...
        let etag2 = s
            .replace_if("jobs", Entity::new("p", "r").with("v", "2"), etag1)
            .unwrap();
        assert!(etag2 > etag1);
        // ...and the first writer's stale etag now loses.
        let err = s
            .replace_if("jobs", Entity::new("p", "r").with("v", "3"), etag1)
            .unwrap_err();
        assert_eq!(err.code(), "InvalidState");
        assert_eq!(s.get("jobs", "p", "r").unwrap().get("v"), Some("2"));
    }

    #[test]
    fn partition_queries_ordered() {
        let s = svc();
        for rk in ["run-003", "run-001", "run-002"] {
            s.insert("jobs", Entity::new("cap3", rk)).unwrap();
        }
        s.insert("jobs", Entity::new("blast", "run-009")).unwrap();
        let rows = s.query_partition("jobs", "cap3").unwrap();
        let keys: Vec<&str> = rows.iter().map(|e| e.row_key.as_str()).collect();
        assert_eq!(keys, vec!["run-001", "run-002", "run-003"]);
        let range = s.query_range("jobs", "cap3", "run-001", "run-003").unwrap();
        assert_eq!(range.len(), 2);
        assert!(s.query_partition("jobs", "ghost").unwrap().is_empty());
    }

    #[test]
    fn missing_table_errors_and_requests_metered() {
        let s = svc();
        assert!(s.get("nope", "p", "r").is_err());
        assert!(s.requests() >= 2);
        s.delete("jobs", "p", "never-existed").unwrap();
    }

    #[test]
    fn concurrent_writers() {
        let s = std::sync::Arc::new(svc());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        s.upsert("jobs", Entity::new(format!("p{t}"), format!("r{i}")))
                            .unwrap();
                    }
                });
            }
        });
        for t in 0..8 {
            assert_eq!(
                s.query_partition("jobs", &format!("p{t}")).unwrap().len(),
                50
            );
        }
    }
}
