//! Multipart upload — how big objects (the 2.9 GB compressed BLAST
//! database, §5) actually get into an object store: initiate, upload parts
//! (in any order, retrying individually), complete or abort.

use crate::service::StorageService;
use ppc_core::sync::Mutex;
use ppc_core::{PpcError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one in-progress multipart upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UploadId(pub u64);

struct InProgress {
    bucket: String,
    key: String,
    /// part number -> bytes (BTreeMap: completion concatenates in order).
    parts: BTreeMap<u32, Vec<u8>>,
}

/// Multipart upload coordinator over a [`StorageService`].
pub struct MultipartUploader<'a> {
    storage: &'a StorageService,
    next_id: AtomicU64,
    uploads: Mutex<BTreeMap<u64, InProgress>>,
}

impl<'a> MultipartUploader<'a> {
    pub fn new(storage: &'a StorageService) -> MultipartUploader<'a> {
        MultipartUploader {
            storage,
            next_id: AtomicU64::new(1),
            uploads: Mutex::new(BTreeMap::new()),
        }
    }

    /// Begin an upload to `bucket/key`.
    pub fn initiate(&self, bucket: &str, key: &str) -> Result<UploadId> {
        if key.is_empty() {
            return Err(PpcError::InvalidArgument("empty object key".into()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.uploads.lock().insert(
            id,
            InProgress {
                bucket: bucket.to_string(),
                key: key.to_string(),
                parts: BTreeMap::new(),
            },
        );
        Ok(UploadId(id))
    }

    /// Upload (or re-upload: retries replace) one part. Part numbers start
    /// at 1, as in S3.
    pub fn upload_part(&self, id: UploadId, part_number: u32, data: Vec<u8>) -> Result<()> {
        if part_number == 0 {
            return Err(PpcError::InvalidArgument("part numbers start at 1".into()));
        }
        let mut uploads = self.uploads.lock();
        let up = uploads
            .get_mut(&id.0)
            .ok_or_else(|| PpcError::NotFound(format!("upload {}", id.0)))?;
        up.parts.insert(part_number, data);
        Ok(())
    }

    /// Complete: concatenate parts in part-number order into the final
    /// object. Fails if the part sequence has gaps.
    pub fn complete(&self, id: UploadId) -> Result<()> {
        let up = self
            .uploads
            .lock()
            .remove(&id.0)
            .ok_or_else(|| PpcError::NotFound(format!("upload {}", id.0)))?;
        if up.parts.is_empty() {
            return Err(PpcError::InvalidState("no parts uploaded".into()));
        }
        let expected: Vec<u32> = (1..=up.parts.len() as u32).collect();
        let got: Vec<u32> = up.parts.keys().copied().collect();
        if got != expected {
            return Err(PpcError::InvalidState(format!(
                "part sequence has gaps: {got:?}"
            )));
        }
        let total: usize = up.parts.values().map(Vec::len).sum();
        let mut data = Vec::with_capacity(total);
        for part in up.parts.into_values() {
            data.extend_from_slice(&part);
        }
        self.storage.put(&up.bucket, &up.key, data)
    }

    /// Abort: discard all parts without creating an object.
    pub fn abort(&self, id: UploadId) -> Result<()> {
        self.uploads
            .lock()
            .remove(&id.0)
            .map(|_| ())
            .ok_or_else(|| PpcError::NotFound(format!("upload {}", id.0)))
    }

    /// Number of uploads currently in progress.
    pub fn in_progress(&self) -> usize {
        self.uploads.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_assemble_in_order() {
        let storage = StorageService::in_memory();
        storage.create_bucket("db").unwrap();
        let up = MultipartUploader::new(&storage);
        let id = up.initiate("db", "nr.tar.gz").unwrap();
        // Out-of-order upload; retry of part 2 replaces.
        up.upload_part(id, 3, vec![7, 8, 9]).unwrap();
        up.upload_part(id, 1, vec![1, 2]).unwrap();
        up.upload_part(id, 2, vec![0]).unwrap();
        up.upload_part(id, 2, vec![3, 4, 5, 6]).unwrap();
        up.complete(id).unwrap();
        assert_eq!(
            *storage.get("db", "nr.tar.gz").unwrap(),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9]
        );
        assert_eq!(up.in_progress(), 0);
    }

    #[test]
    fn gaps_rejected() {
        let storage = StorageService::in_memory();
        storage.create_bucket("b").unwrap();
        let up = MultipartUploader::new(&storage);
        let id = up.initiate("b", "k").unwrap();
        up.upload_part(id, 1, vec![1]).unwrap();
        up.upload_part(id, 3, vec![3]).unwrap();
        assert_eq!(up.complete(id).unwrap_err().code(), "InvalidState");
        // The failed completion consumed the upload (like an S3 abort).
        assert_eq!(up.in_progress(), 0);
    }

    #[test]
    fn abort_discards() {
        let storage = StorageService::in_memory();
        storage.create_bucket("b").unwrap();
        let up = MultipartUploader::new(&storage);
        let id = up.initiate("b", "k").unwrap();
        up.upload_part(id, 1, vec![1]).unwrap();
        up.abort(id).unwrap();
        assert!(storage.get("b", "k").is_err());
        assert!(
            up.upload_part(id, 2, vec![2]).is_err(),
            "aborted upload is gone"
        );
    }

    #[test]
    fn validation() {
        let storage = StorageService::in_memory();
        storage.create_bucket("b").unwrap();
        let up = MultipartUploader::new(&storage);
        assert!(up.initiate("b", "").is_err());
        let id = up.initiate("b", "k").unwrap();
        assert!(up.upload_part(id, 0, vec![]).is_err());
        assert_eq!(up.complete(id).unwrap_err().code(), "InvalidState");
        assert!(up.complete(UploadId(999)).is_err());
    }

    #[test]
    fn concurrent_part_uploads() {
        let storage = StorageService::in_memory();
        storage.create_bucket("b").unwrap();
        let up = MultipartUploader::new(&storage);
        let id = up.initiate("b", "big").unwrap();
        std::thread::scope(|scope| {
            for part in 1..=16u32 {
                let up = &up;
                scope.spawn(move || {
                    up.upload_part(id, part, vec![part as u8; 1000]).unwrap();
                });
            }
        });
        up.complete(id).unwrap();
        let obj = storage.get("b", "big").unwrap();
        assert_eq!(obj.len(), 16_000);
        assert_eq!(obj[0], 1);
        assert_eq!(obj[15_999], 16);
    }
}
