//! HTTP-path latency/bandwidth model for storage and queue endpoints.
//!
//! The Classic Cloud architecture pays a web-service round trip plus a
//! size-proportional transfer for every object it moves (paper §2.1.3:
//! "the worker processes will retrieve the input files from the cloud
//! storage through the web service interface using HTTP"). MapReduce and
//! Dryad instead read local disks, which is the asymmetry the paper's
//! efficiency plots probe.

/// Transfer-time model: `latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-request round-trip latency, seconds.
    pub request_latency_s: f64,
    /// Sustained transfer bandwidth, bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl LatencyModel {
    /// A model with no cost at all (for tests and local baselines).
    pub const FREE: LatencyModel = LatencyModel {
        request_latency_s: 0.0,
        bandwidth_bytes_per_s: f64::INFINITY,
    };

    /// Typical 2010 cloud object store seen from inside the same region:
    /// ~30 ms request latency, ~25 MB/s sustained per-connection throughput.
    pub fn cloud_storage_2010() -> LatencyModel {
        LatencyModel {
            request_latency_s: 0.030,
            bandwidth_bytes_per_s: 25e6,
        }
    }

    /// Typical 2010 cloud queue endpoint: ~20 ms per API call, tiny payloads.
    pub fn cloud_queue_2010() -> LatencyModel {
        LatencyModel {
            request_latency_s: 0.020,
            bandwidth_bytes_per_s: 10e6,
        }
    }

    /// Local disk on a compute node (the Hadoop/Dryad data path):
    /// sub-millisecond seek, ~80 MB/s sequential (2010 SATA).
    pub fn local_disk_2010() -> LatencyModel {
        LatencyModel {
            request_latency_s: 0.0005,
            bandwidth_bytes_per_s: 80e6,
        }
    }

    /// Intra-cluster network fetch (HDFS remote block read: the remote
    /// node's disk behind an oversubscribed GigE link — noticeably slower
    /// than a local sequential read, which is what makes data locality
    /// worth scheduling for).
    pub fn cluster_network_2010() -> LatencyModel {
        LatencyModel {
            request_latency_s: 0.005,
            bandwidth_bytes_per_s: 30e6,
        }
    }

    /// Seconds to complete one request moving `bytes` of payload.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        if self.bandwidth_bytes_per_s.is_infinite() {
            return self.request_latency_s;
        }
        self.request_latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Seconds for a payload-free control request.
    pub fn request_seconds(&self) -> f64 {
        self.request_latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_is_free() {
        assert_eq!(LatencyModel::FREE.transfer_seconds(1 << 30), 0.0);
    }

    #[test]
    fn transfer_adds_latency_and_bandwidth() {
        let m = LatencyModel {
            request_latency_s: 0.1,
            bandwidth_bytes_per_s: 10.0,
        };
        assert!((m.transfer_seconds(100) - 10.1).abs() < 1e-12);
        assert!((m.request_seconds() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn presets_are_sane() {
        // Remote storage must be slower than local disk for the same payload,
        // or the paper's data-locality argument evaporates.
        let remote = LatencyModel::cloud_storage_2010().transfer_seconds(1 << 20);
        let local = LatencyModel::local_disk_2010().transfer_seconds(1 << 20);
        assert!(remote > local);
    }
}
