//! # ppc-storage — a web-scale object store, in miniature
//!
//! Stands in for Amazon S3 and Windows Azure Blob storage (paper §2.1.1–2.1.2):
//! buckets of access-controlled objects reached over an HTTP-like interface,
//! priced by stored bytes, transferred bytes, and API requests.
//!
//! What the Classic Cloud framework needs from its storage — and what this
//! crate therefore models:
//!
//! * **A thread-safe service** ([`service::StorageService`]): `PUT`/`GET`/
//!   `DELETE`/`LIST`/`HEAD` from any number of worker threads.
//! * **An HTTP cost model** ([`latency::LatencyModel`]): per-request latency
//!   plus size/bandwidth transfer time. The native runtime can optionally
//!   sleep these out (scaled); the discrete-event simulator uses them as
//!   service times.
//! * **Eventual consistency** ([`consistency::ConsistencyModel`]): reads
//!   shortly after writes may miss, as S3's 2010 consistency model allowed.
//!   The paper leans on the *applications* being idempotent to tolerate this.
//! * **Metering** ([`metering::Metering`]): request counts, bytes in/out and
//!   peak stored bytes, convertible to dollars through
//!   `ppc_core::pricing::PriceBook`.
//! * **Entity tables** ([`table::TableService`]): the Azure Table Storage
//!   analog (partition/row keys, ETags, partition range queries) that
//!   AzureBlast-style applications keep their metadata in.

pub mod consistency;
pub mod latency;
pub mod metering;
pub mod multipart;
pub mod service;
pub mod table;

pub use consistency::ConsistencyModel;
pub use latency::LatencyModel;
pub use metering::{Metering, MeteringSnapshot};
pub use multipart::{MultipartUploader, UploadId};
pub use service::{ObjectMeta, StorageService};
pub use table::{Entity, TableService};
