//! Synthetic PubChem-like fingerprint data.
//!
//! The paper's GTM input is 26 million PubChem compounds with 166-bit
//! structural fingerprints (MACCS keys). This generator produces clustered
//! binary vectors with the same shape: cluster centers are random bit
//! patterns, members flip each bit with small probability — so a dimension
//! reduction genuinely has structure to find.

use crate::linalg::Matrix;
use ppc_core::rng::Pcg32;

/// The MACCS fingerprint dimensionality used by the paper's data set.
pub const FINGERPRINT_DIM: usize = 166;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintParams {
    pub n_points: usize,
    pub dim: usize,
    pub n_clusters: usize,
    /// Per-bit flip probability away from the cluster center.
    pub flip_noise: f64,
}

impl Default for FingerprintParams {
    fn default() -> Self {
        FingerprintParams {
            n_points: 500,
            dim: FINGERPRINT_DIM,
            n_clusters: 5,
            flip_noise: 0.05,
        }
    }
}

/// Generate fingerprints; returns the data matrix (`n_points × dim`, values
/// 0.0/1.0) and each point's true cluster label.
pub fn fingerprints(params: &FingerprintParams, seed: u64) -> (Matrix, Vec<usize>) {
    assert!(params.n_clusters > 0 && params.n_points > 0 && params.dim > 0);
    let mut rng = Pcg32::new(seed);
    let centers: Vec<Vec<bool>> = (0..params.n_clusters)
        .map(|_| (0..params.dim).map(|_| rng.chance(0.5)).collect())
        .collect();
    let mut data = Matrix::zeros(params.n_points, params.dim);
    let mut labels = Vec::with_capacity(params.n_points);
    for i in 0..params.n_points {
        let label = rng.next_below(params.n_clusters as u32) as usize;
        labels.push(label);
        for j in 0..params.dim {
            let mut bit = centers[label][j];
            if rng.chance(params.flip_noise) {
                bit = !bit;
            }
            data[(i, j)] = if bit { 1.0 } else { 0.0 };
        }
    }
    (data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_values() {
        let (data, labels) = fingerprints(&FingerprintParams::default(), 1);
        assert_eq!(data.rows(), 500);
        assert_eq!(data.cols(), 166);
        assert_eq!(labels.len(), 500);
        assert!(data.data().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn cluster_structure_exists() {
        let (data, labels) = fingerprints(
            &FingerprintParams {
                n_points: 200,
                n_clusters: 3,
                flip_noise: 0.02,
                ..Default::default()
            },
            2,
        );
        // Same-cluster distance << different-cluster distance on average.
        let mut same = (0.0, 0);
        let mut diff = (0.0, 0);
        for i in 0..50 {
            for j in (i + 1)..50 {
                let d = data.row_sq_dist(i, &data, j);
                if labels[i] == labels[j] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    diff = (diff.0 + d, diff.1 + 1);
                }
            }
        }
        let same_mean = same.0 / same.1.max(1) as f64;
        let diff_mean = diff.0 / diff.1.max(1) as f64;
        assert!(
            same_mean * 3.0 < diff_mean,
            "same {same_mean} diff {diff_mean}"
        );
    }

    #[test]
    fn deterministic() {
        let (a, _) = fingerprints(&FingerprintParams::default(), 3);
        let (b, _) = fingerprints(&FingerprintParams::default(), 3);
        assert_eq!(a, b);
    }
}
