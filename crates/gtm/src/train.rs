//! EM training of the GTM.
//!
//! Standard GTM EM (Bishop et al. 1998): alternate computing
//! responsibilities of the `K` latent grid points for each data point
//! (E-step) with a ridge-regularized weighted least squares for the RBF
//! weights `W` and a noise-precision update for `β` (M-step). The paper's
//! application trains on a 100k-point sample of PubChem; the interpolation
//! stage then projects everything else through the trained model.

use crate::linalg::Matrix;
use crate::rbf::{LatentGrid, RbfBasis};
use ppc_core::{PpcError, Result};

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Latent grid side (K = side²).
    pub grid_side: usize,
    /// RBF center grid side (M = side²).
    pub rbf_side: usize,
    pub iterations: usize,
    /// Ridge regularization on the M-step solve.
    pub lambda: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            grid_side: 10,
            rbf_side: 4,
            iterations: 20,
            lambda: 1e-3,
        }
    }
}

/// A trained GTM.
#[derive(Debug, Clone)]
pub struct GtmModel {
    pub grid: LatentGrid,
    pub basis: RbfBasis,
    /// Φ over the latent grid: `K × (M+1)`.
    pub phi: Matrix,
    /// RBF weights: `(M+1) × D`.
    pub w: Matrix,
    /// Noise precision.
    pub beta: f64,
    /// Log-likelihood after each EM iteration.
    pub log_likelihood: Vec<f64>,
}

impl GtmModel {
    /// The grid's images in data space: `Y = Φ W` (`K × D`).
    pub fn y(&self) -> Matrix {
        self.phi.matmul(&self.w)
    }

    /// Posterior-mean latent position of each data row (`N × 2`) — GTM's
    /// projection used for visualization.
    pub fn project(&self, data: &Matrix) -> Matrix {
        let (r, _) = responsibilities(&self.y(), data, self.beta);
        // means = Rᵀ Z  (R is K × N).
        r.transpose().matmul(&self.grid.points)
    }

    /// Estimated bytes touched per projected point — feeds the simulator's
    /// memory-traffic model (`K × D` distance pass dominates).
    pub fn traffic_bytes_per_point(&self) -> u64 {
        (self.grid.n_points() * self.w.cols() * std::mem::size_of::<f64>()) as u64
    }

    /// Serialize the trained model for distribution to workers — the GTM
    /// counterpart of pre-distributing the BLAST database (§5): train once,
    /// ship the (small) model, interpolate everywhere.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        use ppc_core::json::Json;
        let doc = Json::Obj(vec![
            ("grid_side".into(), Json::from(self.grid.side)),
            ("grid_points".into(), matrix_json(&self.grid.points)),
            ("centers".into(), matrix_json(&self.basis.centers)),
            ("sigma".into(), Json::from(self.basis.sigma)),
            ("phi".into(), matrix_json(&self.phi)),
            ("w".into(), matrix_json(&self.w)),
            ("beta".into(), Json::from(self.beta)),
            (
                "log_likelihood".into(),
                self.log_likelihood.iter().copied().collect(),
            ),
        ]);
        Ok(doc.to_string().into_bytes())
    }

    /// Load a model serialized with [`GtmModel::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<GtmModel> {
        use ppc_core::json::Json;
        let text =
            std::str::from_utf8(bytes).map_err(|e| PpcError::Codec(format!("not utf-8: {e}")))?;
        let doc = Json::parse(text)?;
        Ok(GtmModel {
            grid: LatentGrid {
                side: doc.field("grid_side")?.as_usize()?,
                points: matrix_from_json(doc.field("grid_points")?)?,
            },
            basis: crate::rbf::RbfBasis {
                centers: matrix_from_json(doc.field("centers")?)?,
                sigma: doc.field("sigma")?.as_f64()?,
            },
            phi: matrix_from_json(doc.field("phi")?)?,
            w: matrix_from_json(doc.field("w")?)?,
            beta: doc.field("beta")?.as_f64()?,
            log_likelihood: doc.field("log_likelihood")?.as_f64_vec()?,
        })
    }
}

/// Matrix wire form: `{"rows": R, "cols": C, "data": [row-major floats]}`.
fn matrix_json(m: &Matrix) -> ppc_core::json::Json {
    use ppc_core::json::Json;
    Json::Obj(vec![
        ("rows".into(), Json::from(m.rows())),
        ("cols".into(), Json::from(m.cols())),
        ("data".into(), m.data().iter().copied().collect()),
    ])
}

fn matrix_from_json(v: &ppc_core::json::Json) -> Result<Matrix> {
    let rows = v.field("rows")?.as_usize()?;
    let cols = v.field("cols")?.as_usize()?;
    let data = v.field("data")?.as_f64_vec()?;
    if data.len() != rows * cols {
        return Err(PpcError::Codec(format!(
            "matrix payload is {} values for a {rows}x{cols} shape",
            data.len()
        )));
    }
    Ok(Matrix::from_flat(rows, cols, data))
}

/// Responsibilities `R (K × N)` of grid images `y` for data rows, plus the
/// data log-likelihood. Log-sum-exp stabilized; columns are independent, so
/// the E-step parallelizes over data points (this is the "compute-intensive
/// training process" §6 describes).
pub(crate) fn responsibilities(y: &Matrix, data: &Matrix, beta: f64) -> (Matrix, f64) {
    let k = y.rows();
    let n = data.rows();
    let d = data.cols();
    let log_prior = -(k as f64).ln();
    let log_norm = 0.5 * d as f64 * (beta / (2.0 * std::f64::consts::PI)).ln();
    let columns: Vec<(Vec<f64>, f64)> = ppc_core::par::par_map(n, |nn| {
        let mut col = vec![0.0f64; k];
        let mut max_log = f64::NEG_INFINITY;
        for (kk, c) in col.iter_mut().enumerate() {
            let d2 = y.row_sq_dist(kk, data, nn);
            let lp = -0.5 * beta * d2;
            *c = lp;
            if lp > max_log {
                max_log = lp;
            }
        }
        let mut sum = 0.0;
        for c in col.iter_mut() {
            *c = (*c - max_log).exp();
            sum += *c;
        }
        for c in col.iter_mut() {
            *c /= sum;
        }
        (col, max_log + sum.ln() + log_prior + log_norm)
    });
    let mut r = Matrix::zeros(k, n);
    let mut loglik = 0.0;
    for (nn, (col, ll)) in columns.into_iter().enumerate() {
        for (kk, v) in col.into_iter().enumerate() {
            r[(kk, nn)] = v;
        }
        loglik += ll;
    }
    (r, loglik)
}

/// Train a GTM on `data` (`N × D`).
pub fn train(data: &Matrix, cfg: &TrainConfig) -> Result<GtmModel> {
    if data.rows() < 2 {
        return Err(PpcError::InvalidArgument(
            "need at least two data points".into(),
        ));
    }
    if cfg.iterations == 0 {
        return Err(PpcError::InvalidArgument(
            "need at least one EM iteration".into(),
        ));
    }
    let grid = LatentGrid::new(cfg.grid_side);
    let basis = RbfBasis::on_grid(cfg.rbf_side);
    let phi = basis.phi(&grid.points);
    let k = grid.n_points();
    let d = data.cols();

    // ---- Initialization: map the latent axes onto the top-2 PCs ---------
    let p = crate::pca::pca(data, 2, 50);
    let (components, sds, mean) = (p.components, p.std_devs, p.mean);
    let mut target = Matrix::zeros(k, d);
    for kk in 0..k {
        let z0 = grid.points[(kk, 0)];
        let z1 = grid.points[(kk, 1)];
        for j in 0..d {
            target[(kk, j)] =
                mean[j] + z0 * sds[0] * components[0][j] + z1 * sds[1] * components[1][j];
        }
    }
    // Solve (ΦᵀΦ + λI) W = Φᵀ target.
    let phit = phi.transpose();
    let mut a = phit.matmul(&phi);
    a.add_diagonal(cfg.lambda.max(1e-8));
    let w = a.solve_spd(&phit.matmul(&target))?;

    // β init: inverse mean distance between data and initial manifold.
    let y = phi.matmul(&w);
    let mut mean_d2 = 0.0;
    for nn in 0..data.rows() {
        let mut min_d2 = f64::INFINITY;
        for kk in 0..k {
            min_d2 = min_d2.min(y.row_sq_dist(kk, data, nn));
        }
        mean_d2 += min_d2;
    }
    mean_d2 /= data.rows() as f64;
    let mut beta = if mean_d2 > 1e-12 { 1.0 / mean_d2 } else { 1.0 };
    let mut w = w;
    let mut log_likelihood = Vec::with_capacity(cfg.iterations);

    // ---- EM --------------------------------------------------------------
    for _ in 0..cfg.iterations {
        let y = phi.matmul(&w);
        let (r, loglik) = responsibilities(&y, data, beta);
        log_likelihood.push(loglik);

        // M-step for W: (Φᵀ G Φ + (λ/β) I) W = Φᵀ R X.
        let n = data.rows();
        let g: Vec<f64> = (0..k)
            .map(|kk| (0..n).map(|nn| r[(kk, nn)]).sum())
            .collect();
        let m1 = phi.cols();
        let mut a = Matrix::zeros(m1, m1);
        // ΦᵀGΦ without forming G.
        #[allow(clippy::needless_range_loop)]
        for kk in 0..k {
            let gk = g[kk];
            if gk == 0.0 {
                continue;
            }
            let phi_row = phi.row(kk);
            for i in 0..m1 {
                let w_i = gk * phi_row[i];
                if w_i == 0.0 {
                    continue;
                }
                let a_row = a.row_mut(i);
                for (a_ij, &phi_j) in a_row.iter_mut().zip(phi_row) {
                    *a_ij += w_i * phi_j;
                }
            }
        }
        a.add_diagonal((cfg.lambda / beta).max(1e-10));
        let rhs = phi.transpose().matmul(&r.matmul(data));
        w = a.solve_spd(&rhs)?;

        // M-step for β with the fresh W.
        let y = phi.matmul(&w);
        let (r2, _) = responsibilities(&y, data, beta);
        let mut sum = 0.0;
        for nn in 0..n {
            for kk in 0..k {
                let rk = r2[(kk, nn)];
                if rk > 1e-12 {
                    sum += rk * y.row_sq_dist(kk, data, nn);
                }
            }
        }
        let denom = (n * d) as f64;
        if sum > 1e-12 {
            beta = denom / sum;
        }
    }

    Ok(GtmModel {
        grid,
        basis,
        phi,
        w,
        beta,
        log_likelihood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{fingerprints, FingerprintParams};

    fn small_config() -> TrainConfig {
        TrainConfig {
            grid_side: 6,
            rbf_side: 3,
            iterations: 12,
            lambda: 1e-3,
        }
    }

    fn train_small(seed: u64) -> (GtmModel, Matrix, Vec<usize>) {
        let (data, labels) = fingerprints(
            &FingerprintParams {
                n_points: 150,
                dim: 40,
                n_clusters: 3,
                flip_noise: 0.03,
            },
            seed,
        );
        let model = train(&data, &small_config()).unwrap();
        (model, data, labels)
    }

    #[test]
    fn log_likelihood_improves() {
        let (model, _, _) = train_small(1);
        let ll = &model.log_likelihood;
        assert!(ll.len() >= 2);
        assert!(
            ll.last().unwrap() > ll.first().unwrap(),
            "ll {:?} -> {:?}",
            ll.first(),
            ll.last()
        );
        // EM should be (near-)monotone; allow tiny numerical dips.
        let range = (ll.last().unwrap() - ll.first().unwrap()).abs().max(1.0);
        for pair in ll.windows(2) {
            assert!(
                pair[1] >= pair[0] - 0.01 * range,
                "EM step regressed: {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn responsibilities_are_distributions() {
        let (model, data, _) = train_small(2);
        let (r, _) = responsibilities(&model.y(), &data, model.beta);
        for nn in 0..data.rows() {
            let sum: f64 = (0..r.rows()).map(|kk| r[(kk, nn)]).sum();
            assert!((sum - 1.0).abs() < 1e-9, "column {nn} sums to {sum}");
            for kk in 0..r.rows() {
                assert!(r[(kk, nn)] >= 0.0);
            }
        }
    }

    #[test]
    fn beta_positive_and_grows_as_fit_tightens() {
        let (model, _, _) = train_small(3);
        assert!(model.beta > 0.0);
    }

    #[test]
    fn projection_separates_clusters() {
        let (model, data, labels) = train_small(4);
        let proj = model.project(&data);
        assert_eq!(proj.rows(), data.rows());
        assert_eq!(proj.cols(), 2);
        // Mean intra-cluster latent distance < mean inter-cluster distance.
        let mut intra = (0.0, 0usize);
        let mut inter = (0.0, 0usize);
        for i in 0..data.rows() {
            for j in (i + 1)..data.rows() {
                let d = proj.row_sq_dist(i, &proj, j).sqrt();
                if labels[i] == labels[j] {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            intra_mean < 0.7 * inter_mean,
            "intra {intra_mean} vs inter {inter_mean}"
        );
    }

    #[test]
    fn projections_stay_in_latent_square() {
        let (model, data, _) = train_small(5);
        let proj = model.project(&data);
        for i in 0..proj.rows() {
            assert!(proj[(i, 0)].abs() <= 1.0 + 1e-9);
            assert!(proj[(i, 1)].abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let data = Matrix::zeros(1, 4);
        assert!(train(&data, &small_config()).is_err());
        let (data, _) = fingerprints(
            &FingerprintParams {
                n_points: 10,
                dim: 8,
                n_clusters: 2,
                flip_noise: 0.1,
            },
            6,
        );
        let bad = TrainConfig {
            iterations: 0,
            ..small_config()
        };
        assert!(train(&data, &bad).is_err());
    }

    #[test]
    fn deterministic_training() {
        let (m1, _, _) = train_small(7);
        let (m2, _, _) = train_small(7);
        assert_eq!(m1.w, m2.w);
        assert_eq!(m1.beta, m2.beta);
    }

    #[test]
    fn model_serialization_round_trip() {
        let (model, data, _) = train_small(9);
        let bytes = model.to_bytes().unwrap();
        let back = GtmModel::from_bytes(&bytes).unwrap();
        assert_eq!(back.w, model.w);
        assert_eq!(back.beta, model.beta);
        // The reloaded model projects identically.
        let a = model.project(&data);
        let b = back.project(&data);
        assert_eq!(a, b);
        // Garbage is rejected cleanly.
        assert!(GtmModel::from_bytes(b"not a model").is_err());
    }

    #[test]
    fn traffic_estimate_scales_with_model() {
        let (model, _, _) = train_small(8);
        assert_eq!(model.traffic_bytes_per_point(), (36 * 40 * 8) as u64);
    }
}
