//! GTM Interpolation — the out-of-sample extension (paper §6).
//!
//! "GTM Interpolation takes only a part of the full dataset, known as
//! samples, for a compute-intensive training process and applies the
//! trained result to the rest of the dataset, known as out-of-samples."
//!
//! Interpolating a point costs one responsibility pass against the trained
//! manifold images `Y (K × D)` — dense streaming arithmetic over `K·D`
//! doubles per point, which is why the paper finds the application memory-
//! bandwidth-bound (§6.1). Points are independent: pleasingly parallel.

use crate::linalg::Matrix;
use crate::train::GtmModel;

/// Project out-of-sample rows through a trained model; returns `N × 2`
/// latent coordinates. Parallelizes over points (the per-worker threading
/// an Azure/EC2 worker would use).
pub fn interpolate(model: &GtmModel, out_of_samples: &Matrix) -> Matrix {
    let y = model.y();
    let k = y.rows();
    let n = out_of_samples.rows();
    let beta = model.beta;
    let coords: Vec<[f64; 2]> = ppc_core::par::par_map(n, |nn| {
        // Responsibilities for this point (log-sum-exp stabilized).
        let mut logs = vec![0.0f64; k];
        let mut max_log = f64::NEG_INFINITY;
        for (kk, slot) in logs.iter_mut().enumerate() {
            let d2 = y.row_sq_dist(kk, out_of_samples, nn);
            let lp = -0.5 * beta * d2;
            *slot = lp;
            if lp > max_log {
                max_log = lp;
            }
        }
        let mut sum = 0.0;
        for l in logs.iter_mut() {
            *l = (*l - max_log).exp();
            sum += *l;
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for (kk, &l) in logs.iter().enumerate() {
            let r = l / sum;
            cx += r * model.grid.points[(kk, 0)];
            cy += r * model.grid.points[(kk, 1)];
        }
        [cx, cy]
    });
    let mut out = Matrix::zeros(n, 2);
    for (i, c) in coords.into_iter().enumerate() {
        out[(i, 0)] = c[0];
        out[(i, 1)] = c[1];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{fingerprints, FingerprintParams};
    use crate::train::{train, TrainConfig};

    fn setup() -> (GtmModel, Matrix, Vec<usize>) {
        let (data, labels) = fingerprints(
            &FingerprintParams {
                n_points: 200,
                dim: 40,
                n_clusters: 3,
                flip_noise: 0.03,
            },
            10,
        );
        let cfg = TrainConfig {
            grid_side: 6,
            rbf_side: 3,
            iterations: 12,
            lambda: 1e-3,
        };
        let model = train(&data, &cfg).unwrap();
        (model, data, labels)
    }

    #[test]
    fn interpolating_training_points_matches_projection() {
        let (model, data, _) = setup();
        let direct = model.project(&data);
        let via_interp = interpolate(&model, &data);
        for i in 0..data.rows() {
            assert!((direct[(i, 0)] - via_interp[(i, 0)]).abs() < 1e-9);
            assert!((direct[(i, 1)] - via_interp[(i, 1)]).abs() < 1e-9);
        }
    }

    #[test]
    fn out_of_samples_land_near_their_cluster() {
        let (model, data, labels) = setup();
        // Fresh points from the same generative process (same seed family
        // keeps the same centers only if the same seed is used; instead,
        // perturb existing points slightly).
        let mut oos = Matrix::zeros(60, data.cols());
        let mut oos_label = Vec::new();
        for i in 0..60 {
            for j in 0..data.cols() {
                oos[(i, j)] = data[(i, j)];
            }
            // flip two bits
            let a = (i * 7) % data.cols();
            let b = (i * 13) % data.cols();
            oos[(i, a)] = 1.0 - oos[(i, a)];
            oos[(i, b)] = 1.0 - oos[(i, b)];
            oos_label.push(labels[i]);
        }
        let proj_train = model.project(&data);
        let proj_oos = interpolate(&model, &oos);
        // Cluster centroids in latent space from the training projection.
        let n_clusters = labels.iter().max().unwrap() + 1;
        let mut centroids = vec![[0.0f64; 2]; n_clusters];
        let mut counts = vec![0usize; n_clusters];
        for i in 0..data.rows() {
            centroids[labels[i]][0] += proj_train[(i, 0)];
            centroids[labels[i]][1] += proj_train[(i, 1)];
            counts[labels[i]] += 1;
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            c[0] /= *n as f64;
            c[1] /= *n as f64;
        }
        // Most out-of-sample points classify to their own cluster's centroid.
        let mut correct = 0;
        for i in 0..60 {
            let dist = |c: &[f64; 2]| {
                ((proj_oos[(i, 0)] - c[0]).powi(2) + (proj_oos[(i, 1)] - c[1]).powi(2)).sqrt()
            };
            let nearest = (0..n_clusters)
                .min_by(|&a, &b| {
                    dist(&centroids[a])
                        .partial_cmp(&dist(&centroids[b]))
                        .unwrap()
                })
                .unwrap();
            if nearest == oos_label[i] {
                correct += 1;
            }
        }
        assert!(
            correct >= 48,
            "only {correct}/60 out-of-samples landed in their cluster"
        );
    }

    #[test]
    fn interpolation_is_deterministic_and_parallel_safe() {
        let (model, data, _) = setup();
        let a = interpolate(&model, &data);
        let b = interpolate(&model, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn output_bounded_by_latent_square() {
        let (model, data, _) = setup();
        let proj = interpolate(&model, &data);
        for i in 0..proj.rows() {
            assert!(proj[(i, 0)].abs() <= 1.0 + 1e-9);
            assert!(proj[(i, 1)].abs() <= 1.0 + 1e-9);
        }
    }
}
