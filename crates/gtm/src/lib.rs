//! # ppc-gtm — Generative Topographic Mapping and GTM Interpolation
//!
//! GTM (Bishop, Svensén & Williams 1998) models high-dimensional data as a
//! smooth mapping from a 2-D latent grid through an RBF network plus
//! isotropic Gaussian noise, trained by EM. **GTM Interpolation** (Bae et
//! al., HPDC 2010 — reference \[17\] of the paper) is the out-of-sample
//! extension this paper's third application runs: train on a small sample
//! (100k PubChem fingerprints), then project the remaining millions of
//! points through the trained model — a pleasingly parallel, memory-
//! bandwidth-bound workload (§6).
//!
//! * [`linalg`] — the dense-matrix kit (matmul, Cholesky solves) the EM
//!   steps need; written here rather than pulling in a BLAS so the kernel's
//!   memory-traffic profile is explicit.
//! * [`rbf`] — latent grids and the RBF basis matrix Φ.
//! * [`mod@train`] — EM training of `W` and `β`, with log-likelihood tracking.
//! * [`mod@interpolate`] — out-of-sample responsibility projection.
//! * [`data`] — synthetic PubChem-like fingerprint generator.

pub mod data;
pub mod interpolate;
pub mod linalg;
pub mod pca;
pub mod rbf;
pub mod train;

pub use interpolate::interpolate;
pub use linalg::Matrix;
pub use pca::{pca, Pca};
pub use rbf::{LatentGrid, RbfBasis};
pub use train::{train, GtmModel, TrainConfig};
