//! Principal component analysis by power iteration with deflation.
//!
//! GTM's standard initialization maps the latent grid onto the data's top
//! two principal components (Bishop et al. 1998 §2.3); this module is that
//! PCA, exposed publicly because it is independently useful (and
//! independently testable).

use crate::linalg::Matrix;

/// Result of a PCA: orthonormal components, their standard deviations
/// (sqrt of eigenvalues), and the data mean.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    pub components: Vec<Vec<f64>>,
    pub std_devs: Vec<f64>,
    pub mean: Vec<f64>,
}

impl Pca {
    /// Project a data row onto the principal axes (centered coordinates).
    pub fn project_row(&self, row: &[f64]) -> Vec<f64> {
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(row)
                    .zip(&self.mean)
                    .map(|((ci, xi), mi)| ci * (xi - mi))
                    .sum()
            })
            .collect()
    }
}

/// Compute the top `n_components` principal components of `data` (rows are
/// observations) via power iteration with `iters` rounds per component and
/// deflation between components.
pub fn pca(data: &Matrix, n_components: usize, iters: usize) -> Pca {
    let n = data.rows();
    let d = data.cols();
    assert!(n >= 2, "need at least two observations");
    assert!(n_components >= 1 && n_components <= d);

    let mean: Vec<f64> = (0..d)
        .map(|j| (0..n).map(|i| data[(i, j)]).sum::<f64>() / n as f64)
        .collect();
    // Covariance C = Xcᵀ Xc / N (D × D — fine for fingerprint-scale D).
    let mut cov = Matrix::zeros(d, d);
    for i in 0..n {
        let row = data.row(i);
        for a in 0..d {
            let xa = row[a] - mean[a];
            if xa == 0.0 {
                continue;
            }
            let cov_row = cov.row_mut(a);
            for (b, &rb) in row.iter().enumerate() {
                cov_row[b] += xa * (rb - mean[b]);
            }
        }
    }
    for v in 0..d {
        for u in 0..d {
            cov[(v, u)] /= n as f64;
        }
    }

    let mut components = Vec::with_capacity(n_components);
    let mut std_devs = Vec::with_capacity(n_components);
    let mut deflated = cov;
    for c in 0..n_components {
        // Deterministic start vector, varied per component.
        let mut v: Vec<f64> = (0..d)
            .map(|i| if i % (c + 2) == 0 { 1.0 } else { 0.5 })
            .collect();
        let mut eig = 0.0;
        for _ in 0..iters {
            let mut w = vec![0.0; d];
            for (a, w_a) in w.iter_mut().enumerate() {
                let row = deflated.row(a);
                *w_a = row.iter().zip(&v).map(|(x, y)| x * y).sum();
            }
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                break;
            }
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / norm;
            }
            eig = norm;
        }
        // Deflate: C -= eig v vᵀ.
        for a in 0..d {
            for b in 0..d {
                deflated[(a, b)] -= eig * v[a] * v[b];
            }
        }
        std_devs.push(eig.max(0.0).sqrt());
        components.push(v);
    }
    Pca {
        components,
        std_devs,
        mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::rng::Pcg32;

    /// Data stretched along a known axis: PCA must recover that axis.
    #[test]
    fn recovers_dominant_axis() {
        let mut rng = Pcg32::new(3);
        // Axis (3,4)/5 in 2-D with sd 5 along it, sd 0.5 across.
        let axis = [0.6, 0.8];
        let ortho = [-0.8, 0.6];
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|_| {
                let a = rng.normal_with(0.0, 5.0);
                let b = rng.normal_with(0.0, 0.5);
                vec![
                    10.0 + a * axis[0] + b * ortho[0],
                    -3.0 + a * axis[1] + b * ortho[1],
                ]
            })
            .collect();
        let data = Matrix::from_rows(rows);
        let p = pca(&data, 2, 100);
        // Component 1 parallel (or anti-parallel) to the axis.
        let dot = (p.components[0][0] * axis[0] + p.components[0][1] * axis[1]).abs();
        assert!(dot > 0.999, "axis alignment {dot}");
        assert!((p.std_devs[0] - 5.0).abs() < 0.5, "sd1 {}", p.std_devs[0]);
        assert!((p.std_devs[1] - 0.5).abs() < 0.15, "sd2 {}", p.std_devs[1]);
        assert!((p.mean[0] - 10.0).abs() < 0.5);
        assert!((p.mean[1] + 3.0).abs() < 0.5);
    }

    #[test]
    fn components_are_orthonormal() {
        // Anisotropic data (distinct eigenvalues) so power iteration
        // converges crisply; near-degenerate spectra converge slowly.
        let mut rng = Pcg32::new(4);
        let scales = [6.0, 3.0, 1.5, 0.7, 0.3, 0.1];
        let data = Matrix::from_rows(
            (0..300)
                .map(|_| scales.iter().map(|s| rng.normal_with(0.0, *s)).collect())
                .collect(),
        );
        let p = pca(&data, 3, 200);
        for i in 0..3 {
            let norm: f64 = p.components[i].iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for j in (i + 1)..3 {
                let dot: f64 = p.components[i]
                    .iter()
                    .zip(&p.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(dot.abs() < 1e-3, "components {i},{j} dot {dot}");
            }
        }
        // Eigenvalues non-increasing.
        assert!(p.std_devs[0] >= p.std_devs[1]);
        assert!(p.std_devs[1] >= p.std_devs[2]);
    }

    #[test]
    fn projection_centers_data() {
        let data = Matrix::from_rows(vec![vec![1.0, 0.0], vec![3.0, 0.0], vec![5.0, 0.0]]);
        let p = pca(&data, 1, 50);
        let proj: Vec<f64> = (0..3).map(|i| p.project_row(data.row(i))[0]).collect();
        let sum: f64 = proj.iter().sum();
        assert!(sum.abs() < 1e-9, "projections centered: {proj:?}");
    }

    #[test]
    #[should_panic(expected = "two observations")]
    fn rejects_single_row() {
        let data = Matrix::zeros(1, 3);
        pca(&data, 1, 10);
    }
}
