//! A small dense linear-algebra kit: exactly what GTM's EM steps need.
//!
//! Row-major `f64` matrices with multiply, transpose, and SPD solves via
//! Cholesky. The multiply kernel iterates in `i-k-j` order so the inner
//! loop streams rows of both operands — cache-friendly and auto-
//! vectorizable (see the perf-book's notes on bounds checks: slices are
//! hoisted out of the inner loop).

use ppc_core::{PpcError, Result};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows_data: Vec<Vec<f64>>) -> Matrix {
        let rows = rows_data.len();
        let cols = rows_data.first().map(Vec::len).unwrap_or(0);
        let mut data = Vec::with_capacity(rows * cols);
        for r in rows_data {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(&r);
        }
        Matrix { rows, cols, data }
    }

    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Add `lambda` to the diagonal (ridge regularization).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Cholesky factorization of an SPD matrix: returns lower-triangular L
    /// with `L Lᵀ = self`.
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(PpcError::InvalidArgument(
                "cholesky needs a square matrix".into(),
            ));
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(PpcError::InvalidState(format!(
                            "matrix not positive definite at {i}"
                        )));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solve `self * X = B` for SPD `self` via Cholesky.
    pub fn solve_spd(&self, b: &Matrix) -> Result<Matrix> {
        assert_eq!(self.rows, b.rows, "rhs rows mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        let m = b.cols;
        // Forward substitution: L Y = B.
        let mut y = Matrix::zeros(n, m);
        for i in 0..n {
            for c in 0..m {
                let mut sum = b[(i, c)];
                for k in 0..i {
                    sum -= l[(i, k)] * y[(k, c)];
                }
                y[(i, c)] = sum / l[(i, i)];
            }
        }
        // Back substitution: Lᵀ X = Y.
        let mut x = Matrix::zeros(n, m);
        for i in (0..n).rev() {
            for c in 0..m {
                let mut sum = y[(i, c)];
                for k in (i + 1)..n {
                    sum -= l[(k, i)] * x[(k, c)];
                }
                x[(i, c)] = sum / l[(i, i)];
            }
        }
        Ok(x)
    }

    /// Squared Euclidean distance between row `i` of self and row `j` of
    /// `other`.
    pub fn row_sq_dist(&self, i: usize, other: &Matrix, j: usize) -> f64 {
        debug_assert_eq!(self.cols, other.cols);
        self.row(i)
            .iter()
            .zip(other.row(j))
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::rng::Pcg32;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // Build SPD A = Mᵀ M + I and verify A * X = B round-trips.
        let mut rng = Pcg32::new(42);
        let n = 12;
        let m = Matrix::from_flat(n, n, (0..n * n).map(|_| rng.normal()).collect());
        let mut a = m.transpose().matmul(&m);
        a.add_diagonal(1.0);
        let b = Matrix::from_flat(n, 3, (0..n * 3).map(|_| rng.normal()).collect());
        let x = a.solve_spd(&b).unwrap();
        let b2 = a.matmul(&x);
        let mut err: f64 = 0.0;
        for i in 0..n {
            for j in 0..3 {
                err = err.max((b[(i, j)] - b2[(i, j)]).abs());
            }
        }
        assert!(err < 1e-9, "residual {err}");
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(a.cholesky().is_err());
        let rect = Matrix::zeros(2, 3);
        assert!(rect.cholesky().is_err());
    }

    #[test]
    fn row_distance_and_norm() {
        let a = Matrix::from_rows(vec![vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(a.row_sq_dist(0, &a, 1), 25.0);
        assert_eq!(a.frobenius(), 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
