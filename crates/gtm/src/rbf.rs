//! Latent grids and the RBF basis matrix Φ.

use crate::linalg::Matrix;

/// A square grid of points in the 2-D latent space `[-1, 1]²`.
#[derive(Debug, Clone, PartialEq)]
pub struct LatentGrid {
    /// Grid side; the grid has `side²` points.
    pub side: usize,
    /// `side² × 2` latent coordinates.
    pub points: Matrix,
}

impl LatentGrid {
    pub fn new(side: usize) -> LatentGrid {
        assert!(side >= 2, "grid needs at least 2x2 points");
        let mut points = Matrix::zeros(side * side, 2);
        for r in 0..side {
            for c in 0..side {
                let idx = r * side + c;
                points[(idx, 0)] = -1.0 + 2.0 * c as f64 / (side - 1) as f64;
                points[(idx, 1)] = -1.0 + 2.0 * r as f64 / (side - 1) as f64;
            }
        }
        LatentGrid { side, points }
    }

    pub fn n_points(&self) -> usize {
        self.side * self.side
    }
}

/// An RBF basis: `n_centers` Gaussians on a coarser grid plus a bias term.
#[derive(Debug, Clone, PartialEq)]
pub struct RbfBasis {
    pub centers: Matrix,
    /// Gaussian width.
    pub sigma: f64,
}

impl RbfBasis {
    /// Centers on a `side × side` grid with width proportional to center
    /// spacing (the GTM paper's convention).
    pub fn on_grid(side: usize) -> RbfBasis {
        let grid = LatentGrid::new(side);
        let spacing = 2.0 / (side - 1) as f64;
        RbfBasis {
            centers: grid.points,
            sigma: spacing,
        }
    }

    pub fn n_basis(&self) -> usize {
        self.centers.rows() + 1 // + bias
    }

    /// Evaluate Φ at a set of latent points: `points.rows() × (M+1)`,
    /// last column the constant bias 1.
    pub fn phi(&self, points: &Matrix) -> Matrix {
        let k = points.rows();
        let m = self.centers.rows();
        let mut phi = Matrix::zeros(k, m + 1);
        let denom = 2.0 * self.sigma * self.sigma;
        for i in 0..k {
            for c in 0..m {
                let d2 = points.row_sq_dist(i, &self.centers, c);
                phi[(i, c)] = (-d2 / denom).exp();
            }
            phi[(i, m)] = 1.0;
        }
        phi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spans_unit_square() {
        let g = LatentGrid::new(5);
        assert_eq!(g.n_points(), 25);
        assert_eq!(g.points[(0, 0)], -1.0);
        assert_eq!(g.points[(0, 1)], -1.0);
        assert_eq!(g.points[(24, 0)], 1.0);
        assert_eq!(g.points[(24, 1)], 1.0);
        // Center point of a 5x5 grid is the origin.
        assert_eq!(g.points[(12, 0)], 0.0);
        assert_eq!(g.points[(12, 1)], 0.0);
    }

    #[test]
    fn phi_shape_and_bias() {
        let basis = RbfBasis::on_grid(3); // 9 centers + bias
        let grid = LatentGrid::new(4);
        let phi = basis.phi(&grid.points);
        assert_eq!(phi.rows(), 16);
        assert_eq!(phi.cols(), 10);
        for i in 0..16 {
            assert_eq!(phi[(i, 9)], 1.0, "bias column");
        }
    }

    #[test]
    fn phi_peaks_at_center() {
        let basis = RbfBasis::on_grid(3);
        // Evaluate at the first center itself: that basis function is 1.
        let at_center = Matrix::from_rows(vec![vec![basis.centers[(0, 0)], basis.centers[(0, 1)]]]);
        let phi = basis.phi(&at_center);
        assert!((phi[(0, 0)] - 1.0).abs() < 1e-12);
        // And decays away from it.
        let far = Matrix::from_rows(vec![vec![1.0, 1.0]]);
        let phi_far = basis.phi(&far);
        assert!(phi_far[(0, 0)] < phi[(0, 0)]);
    }

    #[test]
    fn phi_values_in_unit_interval() {
        let basis = RbfBasis::on_grid(4);
        let grid = LatentGrid::new(6);
        let phi = basis.phi(&grid.points);
        for i in 0..phi.rows() {
            for j in 0..phi.cols() {
                assert!((0.0..=1.0).contains(&phi[(i, j)]));
            }
        }
    }
}
