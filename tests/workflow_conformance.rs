//! Workflow conformance: the Cap3 → BLAST → GTM pipeline is one DAG that
//! every paradigm must execute identically.
//!
//! Three contracts, mirroring `tests/cross_framework.rs` one level up:
//!
//! 1. **Byte identity** — the pipeline's final outputs are byte-identical
//!    across classic, mapreduce, and dryad, natively and under a hostile
//!    chaos schedule with hedging (the engines may retry and duplicate
//!    differently, but the *data* may not move).
//! 2. **DES determinism** — simulating the same workflow twice with the
//!    same seed yields the same `WorkflowReport` JSON, on every engine.
//! 3. **DAG order** — stage windows respect the edges: a downstream stage
//!    never starts before its upstream finished plus the materialization
//!    barrier, and the simulated materialization shows up as a nonzero
//!    `inter-stage materialization` bucket in the overhead decomposition.
//!
//! The chaos-schedule seed comes from `PPC_CHAOS_SEED` (the CI matrix
//! sweeps several), so conformance is pinned across fault patterns too.

use ppc::apps::pipeline::{bio_pipeline_native, bio_pipeline_sim};
use ppc::chaos::FaultSchedule;
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::BARE_HPC16;
use ppc::exec::RunContext;
use ppc::resilience::{HedgeConfig, ResiliencePolicy};
use ppc::trace::{OverheadReport, INTER_STAGE_MATERIALIZATION};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Schedule seed: `PPC_CHAOS_SEED` if set (the CI matrix sweeps a few),
/// else a fixed default.
fn chaos_seed() -> u64 {
    std::env::var("PPC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

/// Key outputs by trailing file name so the paradigms' different
/// namespaces (bucket keys vs HDFS paths vs vertex channels) line up.
fn by_basename(outputs: ppc::exec::JobOutputs) -> BTreeMap<String, Vec<u8>> {
    outputs
        .into_iter()
        .map(|(k, v)| {
            let base = k.rsplit('/').next().unwrap().trim_end_matches(".out");
            (base.to_string(), v)
        })
        .collect()
}

/// Run the native pipeline on every engine under `ctx`; assert completeness
/// and cross-engine byte identity; return the canonical output set.
fn run_everywhere(ctx: &RunContext, label: &str) -> BTreeMap<String, Vec<u8>> {
    let wf = bio_pipeline_native(6, 24, 4242);
    let mut per_engine: Vec<(String, BTreeMap<String, Vec<u8>>)> = Vec::new();
    for engine in ppc::engines() {
        let (report, outputs) = engine.run_workflow(ctx, &wf).unwrap();
        assert!(
            report.is_complete(),
            "[{label}] {} dropped tasks",
            engine.name()
        );
        assert_eq!(report.stages.len(), 3, "[{label}] {}", engine.name());
        // Final outputs come from the sink stage only: one per input file.
        let keyed = by_basename(outputs);
        assert_eq!(keyed.len(), 6, "[{label}] {} output set", engine.name());
        // The sink outputs are GTM latent coordinates: decodable point
        // blocks, two columns each.
        for (k, bytes) in &keyed {
            let pts = ppc::apps::gtm::decode_points(bytes)
                .unwrap_or_else(|e| panic!("[{label}] {k} not a point block: {e}"));
            assert!(pts.rows() > 0, "[{label}] {k} empty");
            assert_eq!(pts.cols(), 2, "[{label}] {k} not latent coords");
        }
        per_engine.push((engine.name().to_string(), keyed));
    }
    let (first_name, first) = per_engine.remove(0);
    for (name, keyed) in &per_engine {
        assert_eq!(
            &first, keyed,
            "[{label}] outputs differ between {first_name} and {name}"
        );
    }
    first
}

/// Contract 1a: byte-identical final outputs on a clean fleet.
#[test]
fn pipeline_outputs_identical_across_engines() {
    let cluster = Cluster::provision(BARE_HPC16, 2, 2);
    let ctx = RunContext::new(&cluster).with_seed(7);
    run_everywhere(&ctx, "clean");
}

/// Contract 1b: the same bytes under a hostile chaos schedule with
/// hedging enabled — retries and duplicates must not change the data.
#[test]
fn pipeline_outputs_survive_chaos_and_hedging() {
    let cluster = Cluster::provision(BARE_HPC16, 2, 2);
    let clean = run_everywhere(&RunContext::new(&cluster).with_seed(7), "clean");
    let hostile = RunContext::new(&cluster)
        .with_seed(chaos_seed())
        .with_schedule(Arc::new(FaultSchedule::hostile(chaos_seed())))
        .with_resilience(ResiliencePolicy::hedged(HedgeConfig::quantile(30.0)));
    let chaotic = run_everywhere(&hostile, "chaos");
    assert_eq!(clean, chaotic, "chaos changed the pipeline's data");
}

/// Contract 2: simulating the same workflow twice with one seed produces
/// an identical report, per engine — the DES workflow path is a pure
/// function of (workflow, context).
#[test]
fn simulated_pipeline_is_deterministic() {
    let wf = bio_pipeline_sim(32);
    let cluster = Cluster::provision(ppc::compute::instance::EC2_HCXL, 4, 8);
    let ctx = RunContext::new(&cluster)
        .with_seed(chaos_seed())
        .with_schedule(Arc::new(FaultSchedule::hostile(chaos_seed())));
    for engine in ppc::engines() {
        let a = engine.simulate_workflow(&ctx, &wf).unwrap();
        let b = engine.simulate_workflow(&ctx, &wf).unwrap();
        assert_eq!(
            a.to_json().to_string(),
            b.to_json().to_string(),
            "{} simulate_workflow is nondeterministic",
            engine.name()
        );
    }
}

/// Contract 3a: stage windows respect the DAG — a stage starts only after
/// every upstream stage finished plus the materialization barrier, and
/// the workflow makespan covers the last stage.
#[test]
fn simulated_stages_respect_dag_order() {
    let wf = bio_pipeline_sim(32);
    let cluster = Cluster::provision(ppc::compute::instance::EC2_HCXL, 4, 8);
    let ctx = RunContext::new(&cluster).with_seed(chaos_seed());
    for engine in ppc::engines() {
        let report = engine.simulate_workflow(&ctx, &wf).unwrap();
        assert!(report.is_complete(), "{}", engine.name());
        for e in &wf.edges {
            let up = &report.stages[e.from];
            let down = &report.stages[e.to];
            assert!(
                down.start_s >= up.end_s,
                "{}: stage {} started at {} before upstream {} ended at {}",
                engine.name(),
                down.name,
                down.start_s,
                up.name,
                up.end_s
            );
            // Materialize edges pay a modeled, nonzero barrier.
            let cost = wf.materialize.transfer_s(wf.stages[e.from].output_bytes());
            assert!(cost > 0.0);
            assert!(
                down.materialize_s >= cost - 1e-9,
                "{}: {} barrier {} < modeled {}",
                engine.name(),
                down.name,
                down.materialize_s,
                cost
            );
        }
        assert!(report.materialize_s > 0.0, "{}", engine.name());
        let last_end = report
            .stages
            .iter()
            .map(|s| s.end_s)
            .fold(0.0_f64, f64::max);
        assert!(
            report.makespan_seconds >= last_end - 1e-9,
            "{}: makespan {} < last stage end {}",
            engine.name(),
            report.makespan_seconds,
            last_end
        );
    }
}

/// Contract 3b: the merged workflow trace decomposes with a nonzero
/// `inter-stage materialization` bucket that reconciles with the report's
/// own materialization total (the Eq. 1 bookkeeping extends to DAGs).
#[test]
fn simulated_materialization_fills_the_overhead_bucket() {
    let wf = bio_pipeline_sim(32);
    let cluster = Cluster::provision(ppc::compute::instance::EC2_HCXL, 4, 8);
    let ctx = RunContext::new(&cluster)
        .with_seed(chaos_seed())
        .with_trace(true);
    for engine in ppc::engines() {
        let report = engine.simulate_workflow(&ctx, &wf).unwrap();
        let trace = report
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{} produced no workflow trace", engine.name()));
        let overhead = OverheadReport::from_trace(trace);
        let bucket = overhead
            .categories
            .iter()
            .find(|c| c.name == INTER_STAGE_MATERIALIZATION)
            .unwrap_or_else(|| panic!("{} taxonomy lacks the bucket", engine.name()));
        assert!(
            bucket.seconds > 0.0,
            "{}: empty materialization bucket",
            engine.name()
        );
        assert!(
            (bucket.seconds - report.materialize_s).abs() < 1e-6,
            "{}: bucket {} != report {}",
            engine.name(),
            bucket.seconds,
            report.materialize_s
        );
    }
}

/// At high utilization the Hadoop sim's speculative duplicates outlive the
/// per-stage makespan; the merged workflow trace must clamp those tails at
/// the stage barrier (a job teardown kills in-flight losers), or they
/// overlap the next stage on the same workers and Eq. 1's decomposition
/// overflows the `cores × horizon` budget. Regression for the bench-scale
/// failure only visible past ~8 waves per stage.
#[test]
fn merged_trace_bills_no_core_time_past_the_stage_barriers() {
    let wf = bio_pipeline_sim(256);
    let cluster = Cluster::provision(ppc::compute::instance::EC2_HCXL, 4, 8);
    let ctx = RunContext::new(&cluster).with_seed(42).with_trace(true);
    for engine in ppc::engines() {
        let report = engine.simulate_workflow(&ctx, &wf).unwrap();
        let trace = report.trace.as_ref().unwrap();
        let overhead = OverheadReport::from_trace(trace);
        // No span escapes the workflow window…
        assert!(
            overhead.horizon_s <= report.makespan_seconds + 1e-9,
            "{}: horizon {} > makespan {}",
            engine.name(),
            overhead.horizon_s,
            report.makespan_seconds
        );
        // …so the Eq. 1 identity closes over the core-time budget.
        let budget = overhead.cores as f64 * overhead.horizon_s;
        let accounted = overhead.compute_s
            + overhead.categories.iter().map(|c| c.seconds).sum::<f64>()
            + overhead.idle_s;
        assert!(
            (budget - accounted).abs() / budget < 1e-6,
            "{}: Eq. 1 does not close: budget {budget} vs accounted {accounted}",
            engine.name()
        );
    }
}

/// The `From<Workload>` lift: running a plain workload through
/// `run_workflow` is the same computation as `run` — identical outputs,
/// one stage, no barriers.
#[test]
fn workload_lifts_to_a_single_stage_workflow() {
    use ppc::apps::cap3::Cap3Executor;
    use ppc::apps::workload::cap3_native_inputs;
    use ppc::exec::{Workflow, Workload};

    let inputs = cap3_native_inputs(5, 25, 800, 99);
    let cluster = Cluster::provision(BARE_HPC16, 2, 2);
    let ctx = RunContext::new(&cluster).with_seed(5);
    for engine in ppc::engines() {
        let workload = Workload::new("lift", inputs.clone(), Arc::new(Cap3Executor::new()));
        let (_, direct) = engine.run(&ctx, &workload).unwrap();
        let wf = Workflow::from(workload);
        assert_eq!(wf.stages.len(), 1);
        assert!(wf.edges.is_empty());
        let (report, lifted) = engine.run_workflow(&ctx, &wf).unwrap();
        assert!(report.is_complete(), "{}", engine.name());
        assert_eq!(report.materialize_s, 0.0, "{}", engine.name());
        assert_eq!(
            by_basename(direct),
            by_basename(lifted),
            "{}: lifted workload diverged from direct run",
            engine.name()
        );
    }
}
