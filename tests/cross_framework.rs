//! Cross-framework integration: the same application inputs produce
//! byte-identical outputs on all three paradigms — the paper's implicit
//! contract that the frameworks are interchangeable wrappers around one
//! executable.

use ppc::apps::cap3::Cap3Executor;
use ppc::apps::workload::cap3_native_inputs;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_HPC16, EC2_HCXL};
use ppc::core::exec::Executor;
use ppc::dryad::{run as dryad_run, DryadConfig};
use ppc::exec::RunContext;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::collections::HashMap;
use std::sync::Arc;

/// Run Cap3 on all three frameworks; collect output maps keyed by task.
#[test]
fn cap3_outputs_identical_across_frameworks() {
    let inputs = cap3_native_inputs(10, 30, 900, 4242);
    let executor: Arc<Cap3Executor> = Arc::new(Cap3Executor::new());

    // --- Classic Cloud ---
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 1, 4);
    let job = JobSpec::new("x", inputs.iter().map(|(t, _)| t.clone()).collect());
    storage.create_bucket(&job.input_bucket).unwrap();
    for (spec, payload) in &inputs {
        storage
            .put(&job.input_bucket, &spec.input_key, payload.clone())
            .unwrap();
    }
    let classic_report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        executor.clone(),
        &ClassicConfig::default(),
    )
    .unwrap();
    assert!(classic_report.is_complete());
    let classic_outputs: HashMap<String, Vec<u8>> = inputs
        .iter()
        .map(|(spec, _)| {
            (
                spec.input_key.clone(),
                storage
                    .get(&job.output_bucket, &spec.output_key)
                    .unwrap()
                    .to_vec(),
            )
        })
        .collect();

    // --- Hadoop ---
    let fs = MiniHdfs::with_defaults(3);
    let mut paths = Vec::new();
    for (spec, payload) in &inputs {
        let path = format!("/in/{}", spec.input_key.replace('/', "_"));
        fs.create(&path, payload, None).unwrap();
        paths.push(path);
    }
    let mr = MapReduceJob::map_only("x", paths, "/out");
    let mapper = ExecutableMapper::new("cap3", executor.clone());
    let hadoop_report = hadoop_run(
        &RunContext::local(),
        &fs,
        &mr,
        &mapper,
        None,
        &HadoopConfig::default(),
    )
    .unwrap();
    assert!(hadoop_report.is_complete());

    // --- DryadLINQ ---
    let dryad_cluster = Cluster::provision(BARE_HPC16, 2, 2);
    let (dryad_report, dryad_outputs) = dryad_run(
        &RunContext::new(&dryad_cluster),
        inputs.clone(),
        executor.clone(),
        &DryadConfig::default(),
    )
    .unwrap();
    assert_eq!(dryad_report.summary.tasks, inputs.len());
    let dryad_map: HashMap<String, Vec<u8>> = dryad_outputs.into_iter().collect();

    // --- Compare ---
    for (spec, _) in &inputs {
        let classic = &classic_outputs[&spec.input_key];
        let hadoop_path = format!("/out/{}.out", spec.input_key.replace('/', "_"));
        let hadoop = fs.read(&hadoop_path).unwrap();
        let dryad = &dryad_map[&spec.output_key];
        assert_eq!(
            classic, &hadoop,
            "classic vs hadoop differ on {}",
            spec.input_key
        );
        assert_eq!(
            classic, dryad,
            "classic vs dryad differ on {}",
            spec.input_key
        );
        // And the output is meaningful: valid FASTA with a contig.
        let recs = ppc::bio::fasta::parse(classic).unwrap();
        assert!(!recs.is_empty());
    }
}

/// The executable contract: re-running a task gives identical bytes, so
/// duplicate execution on ANY framework is safe.
#[test]
fn idempotence_holds_for_all_executables() {
    use ppc::apps::blast::BlastExecutor;
    use ppc::apps::gtm::GtmExecutor;
    use ppc::apps::workload::{blast_native_inputs, gtm_native_inputs};
    use ppc::bio::blast::BlastDb;
    use ppc::bio::simulate::ProteinDbParams;
    use ppc::gtm::train::{train, TrainConfig};

    // Cap3.
    let cap3_inputs = cap3_native_inputs(2, 25, 700, 77);
    let cap3 = Cap3Executor::new();
    for (spec, payload) in &cap3_inputs {
        assert_eq!(
            cap3.run(spec, payload).unwrap(),
            cap3.run(spec, payload).unwrap()
        );
    }
    // BLAST (small DB: this is a semantics test, not a throughput test).
    let small_db = ProteinDbParams {
        n_families: 6,
        members_per_family: 2,
        len_min: 100,
        len_max: 200,
        divergence: 0.12,
    };
    let (db_recs, blast_inputs) = blast_native_inputs(2, 4, &small_db, 78);
    let blast = BlastExecutor::new(Arc::new(BlastDb::build(db_recs, 3)));
    for (spec, payload) in &blast_inputs {
        assert_eq!(
            blast.run(spec, payload).unwrap(),
            blast.run(spec, payload).unwrap()
        );
    }
    // GTM.
    let (sample, gtm_inputs) = gtm_native_inputs(2, 60, 24, 79);
    let model = train(
        &sample,
        &TrainConfig {
            grid_side: 5,
            rbf_side: 3,
            iterations: 6,
            lambda: 1e-3,
        },
    )
    .unwrap();
    let gtm = GtmExecutor::new(Arc::new(model));
    for (spec, payload) in &gtm_inputs {
        assert_eq!(
            gtm.run(spec, payload).unwrap(),
            gtm.run(spec, payload).unwrap()
        );
    }
}

/// The same contract once more, but through the paradigm-generic
/// [`ppc::exec::Engine`] interface: one `Workload`, one `RunContext`,
/// three engines iterated in a loop — byte-identical outputs per task.
#[test]
fn engine_trait_runs_the_same_workload_on_all_paradigms() {
    use ppc::exec::Workload;
    use std::collections::BTreeMap;

    let inputs = cap3_native_inputs(6, 30, 900, 77);
    let workload = Workload::new(
        "cap3-engines",
        inputs.clone(),
        Arc::new(Cap3Executor::new()),
    );
    let cluster = Cluster::provision(BARE_HPC16, 2, 2);
    let ctx = RunContext::new(&cluster).with_seed(5);

    let mut per_engine: Vec<(String, BTreeMap<String, Vec<u8>>)> = Vec::new();
    for engine in ppc::engines() {
        let (report, outputs) = engine.run(&ctx, &workload).unwrap();
        assert!(
            report.is_complete(),
            "{} dropped tasks: {:?}",
            engine.name(),
            report.failed
        );
        assert_eq!(report.summary.tasks, inputs.len(), "{}", engine.name());
        // Key outputs by the trailing task file name so the paradigms'
        // different namespaces (bucket keys vs HDFS paths) line up.
        let keyed: BTreeMap<String, Vec<u8>> = outputs
            .into_iter()
            .map(|(k, v)| {
                let base = k.rsplit('/').next().unwrap().trim_end_matches(".out");
                (base.to_string(), v)
            })
            .collect();
        assert_eq!(keyed.len(), inputs.len(), "{} output set", engine.name());
        per_engine.push((engine.name().to_string(), keyed));
    }
    let (first_name, first) = &per_engine[0];
    for (name, keyed) in &per_engine[1..] {
        assert_eq!(
            first, keyed,
            "outputs differ between {first_name} and {name}"
        );
    }
}
