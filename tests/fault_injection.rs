//! Failure-injection integration tests: every platform keeps its
//! correctness contract while its infrastructure misbehaves.

use ppc::classic::fault::FaultPlan;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::EC2_HCXL;
use ppc::core::exec::FnExecutor;
use ppc::core::task::TaskId;
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::exec::RunContext;
use ppc::hdfs::block::DataNodeId;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
use ppc::queue::chaos::ChaosConfig;
use ppc::queue::service::QueueService;
use ppc::storage::consistency::ConsistencyModel;
use ppc::storage::latency::LatencyModel;
use ppc::storage::service::StorageService;
use std::sync::Arc;
use std::time::Duration;

fn reverse_executor() -> Arc<dyn ppc::core::exec::Executor> {
    FnExecutor::new("rev", |_s, input: &[u8]| {
        let mut v = input.to_vec();
        v.reverse();
        Ok(v)
    })
}

fn check_outputs(storage: &StorageService, bucket: &str, n: u64) {
    for i in 0..n {
        // Retry like any real client: the store may still be within its
        // eventual-consistency window for freshly written outputs.
        let out = storage
            .get_with_retry(bucket, &format!("f{i}.out"), 64)
            .unwrap();
        let mut expect = format!("payload-{i}").into_bytes();
        expect.reverse();
        assert_eq!(*out, expect, "task {i}");
    }
}

fn check_outputs_except(storage: &StorageService, bucket: &str, n: u64, skip: u64) {
    for i in (0..n).filter(|&i| i != skip) {
        let out = storage
            .get_with_retry(bucket, &format!("f{i}.out"), 64)
            .unwrap();
        let mut expect = format!("payload-{i}").into_bytes();
        expect.reverse();
        assert_eq!(*out, expect, "task {i}");
    }
}

/// Classic Cloud under simultaneous worker deaths, queue chaos, AND an
/// eventually consistent store.
#[test]
fn classic_survives_combined_failures() {
    let storage = StorageService::cloud(
        LatencyModel::FREE,
        ConsistencyModel::eventual(0.02, 0.5, 7),
        0.0,
    );
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 2, 4);
    let n = 40;
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
        .collect();
    let job = JobSpec::new("combined", tasks).with_visibility_timeout(Duration::from_millis(30));
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..n {
        storage
            .put(
                &job.input_bucket,
                &format!("f{i}"),
                format!("payload-{i}").into_bytes(),
            )
            .unwrap();
    }
    let config = ClassicConfig {
        fault: FaultPlan::hostile(3),
        queue_chaos: ChaosConfig::flaky(),
        ..ClassicConfig::default()
    };
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        reverse_executor(),
        &config,
    )
    .unwrap();
    assert!(report.is_complete(), "failed tasks: {:?}", report.failed);
    assert_eq!(report.summary.tasks, n as usize);
    check_outputs(&storage, &job.output_bucket, n);
}

/// MapReduce keeps working when a datanode dies mid-job: replicated blocks
/// stay readable and re-replication restores the target afterwards.
#[test]
fn hadoop_survives_datanode_loss() {
    let fs = MiniHdfs::new(5, 1 << 16, 3, 909);
    let n = 30;
    let mut paths = Vec::new();
    for i in 0..n {
        let p = format!("/in/f{i}");
        fs.create(&p, format!("payload-{i}").as_bytes(), None)
            .unwrap();
        paths.push(p);
    }
    // Kill a datanode before the job; its replicas are gone.
    fs.kill_datanode(DataNodeId(2)).unwrap();
    let job = MapReduceJob::map_only("loss", paths, "/out");
    let mapper = ExecutableMapper::new("rev", reverse_executor());
    let report = hadoop_run(
        &RunContext::local(),
        &fs,
        &job,
        &mapper,
        None,
        &HadoopConfig::default(),
    )
    .unwrap();
    assert!(report.is_complete(), "failed: {:?}", report.failed);
    assert_eq!(fs.list("/out/").len(), n);
    // The namenode can restore full replication from survivors.
    fs.re_replicate();
    assert!(fs.under_replicated().is_empty());
}

/// MapReduce retries flaky attempts and still commits exactly one output
/// per task.
#[test]
fn hadoop_retries_do_not_duplicate_outputs() {
    let fs = MiniHdfs::new(3, 1 << 16, 2, 910);
    let n = 24;
    let mut paths = Vec::new();
    for i in 0..n {
        let p = format!("/in/f{i}");
        fs.create(&p, format!("data-{i}").as_bytes(), None).unwrap();
        paths.push(p);
    }
    let mut job = MapReduceJob::map_only("flaky", paths, "/out");
    // The property under test is commit discipline, not retry exhaustion:
    // at p=0.35 the default 4-attempt budget permanently fails a task in
    // ~1.5% of interleavings, so give retries enough headroom that every
    // task completes and the only question is how many outputs it has.
    job.max_attempts = 12;
    let mapper = ExecutableMapper::new("rev", reverse_executor());
    let config = HadoopConfig {
        attempt_failure_p: 0.35,
        seed: 5,
        ..HadoopConfig::default()
    };
    let report = hadoop_run(&RunContext::local(), &fs, &job, &mapper, None, &config).unwrap();
    assert!(report.is_complete());
    assert!(report.scheduler.retries > 0);
    let outs = fs.list("/out/");
    assert_eq!(outs.len(), n, "exactly one output per task: {outs:?}");
}

/// The dead-letter policy bounds poison-task damage on the Classic Cloud:
/// the job terminates, healthy tasks complete, the poison one is reported.
#[test]
fn poison_task_bounded_by_dead_letter() {
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 1, 2);
    let n = 10u64;
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| TaskSpec::new(i, "p", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
        .collect();
    let job = JobSpec::new("poison", tasks)
        .with_visibility_timeout(Duration::from_millis(15))
        .with_max_deliveries(3);
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..n {
        storage
            .put(
                &job.input_bucket,
                &format!("f{i}"),
                format!("payload-{i}").into_bytes(),
            )
            .unwrap();
    }
    let exec = FnExecutor::new("poison", |spec: &TaskSpec, input: &[u8]| {
        if spec.id.0 == 7 {
            Err(ppc::core::PpcError::TaskFailed("unprocessable".into()))
        } else {
            let mut v = input.to_vec();
            v.reverse();
            Ok(v)
        }
    });
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        exec,
        &ClassicConfig::default(),
    )
    .unwrap();
    assert_eq!(report.failed.len(), 1);
    assert_eq!(report.failed[0].0, 7);
    assert_eq!(report.summary.tasks, 9);
}

/// A poison task on an *autoscaled* fleet parks in the DLQ without pinning
/// the fleet at max, the fleet ledger balances (every launched instance is
/// eventually retired), and redriving the parked task completes the work.
#[test]
fn autoscaled_poison_parks_in_dlq_and_redrives() {
    use ppc::compute::instance::EC2_HCXL;

    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let n = 24u64;
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
        .collect();
    let job = JobSpec::new("redrive", tasks)
        .with_visibility_timeout(Duration::from_millis(40))
        .with_max_deliveries(3);
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..n {
        storage
            .put(
                &job.input_bucket,
                &format!("f{i}"),
                format!("payload-{i}").into_bytes(),
            )
            .unwrap();
    }
    // Task 7 is unprocessable on this (buggy) executor build.
    let poison = FnExecutor::new("rev", |spec: &TaskSpec, input: &[u8]| {
        std::thread::sleep(Duration::from_millis(5));
        if spec.id.0 == 7 {
            Err(ppc::core::PpcError::TaskFailed("unprocessable".into()))
        } else {
            let mut v = input.to_vec();
            v.reverse();
            Ok(v)
        }
    });
    let autoscale = ppc::autoscale::AutoscaleConfig {
        policy: ppc::autoscale::Policy::TargetBacklog { per_worker: 8.0 },
        min_workers: 1,
        max_workers: 4,
        interval_s: 0.01,
        scale_up_cooldown_s: 0.03,
        scale_down_cooldown_s: 0.02,
        warmup_s: 0.0,
        billing_aware: false,
        billing_window_s: 0.02,
        billing_hour_s: 0.1,
    };
    let report = classic_run(
        &RunContext::elastic(EC2_HCXL, autoscale.clone(), Vec::new()),
        &storage,
        &queues,
        &job,
        poison,
        &ClassicConfig::default(),
    )
    .unwrap();
    assert_eq!(report.failed, vec![TaskId(7)]);
    assert_eq!(report.summary.tasks, (n - 1) as usize);
    check_outputs_except(&storage, &job.output_bucket, n, 7);

    // The fleet ledger balances: once the healthy backlog drained, the
    // poison task's redelivery loop must not pin the fleet at max — the
    // controller scales back toward min_workers, so the run ends well
    // below its peak and the mean stays under the cap.
    let fleet = report.fleet.expect("autoscaled run reports its fleet");
    let (_, final_size) = *fleet.timeline.steps().last().expect("timeline recorded");
    assert!(
        final_size < autoscale.max_workers,
        "fleet pinned at max ({final_size}) at job end"
    );
    assert!(
        fleet.mean_fleet() < autoscale.max_workers as f64,
        "poison task must not pin the fleet at max: mean {}",
        fleet.mean_fleet()
    );
    // Billing consistency: every instance ever launched bills at least one
    // started hour, so the summed bill covers at least the peak fleet.
    assert!(fleet.billed_hours >= u64::from(fleet.peak_fleet()));

    // Redrive: the DLQ holds exactly the poison task, body intact.
    let dlq = queues.queue(&job.dead_letter_queue()).unwrap();
    let parked = dlq.receive().unwrap().expect("poison task parked in DLQ");
    let spec = TaskSpec::from_message(&parked.body).unwrap();
    assert_eq!(spec.id, TaskId(7));
    dlq.delete(parked.receipt).unwrap();
    assert!(dlq.receive().unwrap().is_none(), "exactly one parked task");

    // The operator fixes the executor and redrives just that task, reusing
    // the original buckets.
    let mut redrive_job = JobSpec::new("redrive-fixup", vec![spec]);
    redrive_job.input_bucket = job.input_bucket.clone();
    redrive_job.output_bucket = job.output_bucket.clone();
    let cluster = Cluster::provision(EC2_HCXL, 1, 2);
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &redrive_job,
        reverse_executor(),
        &ClassicConfig::default(),
    )
    .unwrap();
    assert!(report.is_complete());
    check_outputs(&storage, &job.output_bucket, n);
}
