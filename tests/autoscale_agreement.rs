//! Cross-engine autoscaling agreement: the native threaded runtime and the
//! discrete-event simulator drive the *same* pure `ppc-autoscale`
//! controller, so on a deterministic workload both engines must walk the
//! same fleet-size trajectory — the elastic counterpart of the
//! `sim_fidelity` makespan check.
//!
//! Timing is ratio-matched, not unit-matched: the native run compresses
//! seconds to milliseconds (30 ms tasks, 10 ms controller ticks), the
//! simulation uses the same shape in virtual seconds (30 s tasks, 10 s
//! ticks). The decision sequence depends only on the ratios.

use ppc::autoscale::{AutoscaleConfig, Policy};
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::classic::{simulate as classic_simulate, SimConfig};
use ppc::compute::instance::EC2_HCXL;
use ppc::core::exec::FnExecutor;
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::exec::RunContext;
use ppc::queue::service::QueueService;
use ppc::storage::latency::LatencyModel;
use ppc::storage::service::StorageService;
use std::time::Duration;

const N_TASKS: u64 = 48;

/// One burst of equal tasks: the backlog ramps the fleet to its maximum in
/// one decision, then retires instances one at a time as it drains.
fn tasks(cpu_s: f64) -> Vec<TaskSpec> {
    (0..N_TASKS)
        .map(|i| {
            // HCXL runs at the reference clock: cpu_seconds_ref maps 1:1.
            TaskSpec::new(
                i,
                "sleep",
                format!("f{i}"),
                ResourceProfile::cpu_bound(cpu_s),
            )
        })
        .collect()
}

/// The shared controller shape; `scale` stretches every time constant
/// (1.0 = the simulator's virtual seconds, 1e-3 = native milliseconds).
fn autoscale_cfg(scale: f64) -> AutoscaleConfig {
    AutoscaleConfig {
        policy: Policy::TargetBacklog { per_worker: 12.0 },
        min_workers: 1,
        max_workers: 4,
        interval_s: 10.0 * scale,
        scale_up_cooldown_s: 30.0 * scale,
        scale_down_cooldown_s: 20.0 * scale,
        warmup_s: 0.0,
        billing_aware: false,
        billing_window_s: 60.0 * scale,
        billing_hour_s: 3600.0 * scale,
    }
}

#[test]
fn engines_agree_on_scale_decision_sequence() {
    // Simulated engine: 30 s tasks, 10 s ticks, free I/O, no jitter.
    let sim_cfg = SimConfig {
        storage_latency: LatencyModel::FREE,
        queue_latency: LatencyModel::FREE,
        jitter_sigma: 0.0,
        ..SimConfig::ec2()
    };
    let sim = classic_simulate(
        &RunContext::elastic(EC2_HCXL, autoscale_cfg(1.0), Vec::new()),
        &tasks(30.0),
        &sim_cfg,
    );
    assert_eq!(sim.summary.tasks, N_TASKS as usize);
    let sim_fleet = sim.fleet.expect("sim fleet report");

    // Native engine: same shape at millisecond scale, real threads.
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let specs = tasks(30.0);
    let job = JobSpec::new("agree", specs);
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..N_TASKS {
        storage
            .put(&job.input_bucket, &format!("f{i}"), vec![b'x'; 64])
            .unwrap();
    }
    let executor = FnExecutor::new("sleep", |_s: &TaskSpec, input: &[u8]| {
        std::thread::sleep(Duration::from_millis(30));
        Ok(input.to_vec())
    });
    let native = classic_run(
        &RunContext::elastic(EC2_HCXL, autoscale_cfg(1e-3), Vec::new()),
        &storage,
        &queues,
        &job,
        executor,
        &ClassicConfig::default(),
    )
    .unwrap();
    assert!(native.is_complete());
    let native_fleet = native.fleet.expect("native fleet report");

    // The fleet-size trajectory — the observable record of every scale
    // decision — must match exactly across engines.
    let sim_seq = sim_fleet.timeline.size_sequence();
    let native_seq = native_fleet.timeline.size_sequence();
    assert_eq!(
        sim_seq, native_seq,
        "engines disagree: sim {sim_seq:?} vs native {native_seq:?}"
    );
    assert_eq!(sim_seq, vec![1, 4, 3, 2, 1]);
    assert_eq!(sim_fleet.peak_fleet(), native_fleet.peak_fleet());
}

#[test]
fn simulated_scale_events_are_deterministic() {
    let cfg = SimConfig::ec2();
    let run = || {
        classic_simulate(
            &RunContext::elastic(EC2_HCXL, autoscale_cfg(1.0), Vec::new()),
            &tasks(25.0),
            &cfg,
        )
        .fleet
        .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.timeline.steps(), b.timeline.steps());
    assert_eq!(a.billed_hours, b.billed_hours);
    assert_eq!(a.cost, b.cost);
}

#[test]
fn fleet_invariants_hold_across_random_elastic_runs() {
    // Randomized workloads: the fleet trajectory must respect [min, max]
    // at every step, start at the minimum, and every launched instance
    // must be billed at least one started hour.
    let mut rng = ppc::core::rng::Pcg32::new(0xE1A5);
    for trial in 0..12 {
        let n = 16 + rng.next_below(64);
        let specs: Vec<TaskSpec> = (0..n)
            .map(|i| {
                let secs = rng.uniform(5.0, 60.0);
                TaskSpec::new(
                    u64::from(i),
                    "mix",
                    format!("f{i}"),
                    ResourceProfile::cpu_bound(secs),
                )
            })
            .collect();
        let arrivals: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 300.0)).collect();
        let cfg = SimConfig {
            jitter_sigma: 0.1,
            ..SimConfig::ec2().with_seed(trial)
        };
        let report = classic_simulate(
            &RunContext::elastic(EC2_HCXL, autoscale_cfg(1.0), arrivals.clone()),
            &specs,
            &cfg,
        );
        assert_eq!(report.summary.tasks, n as usize, "trial {trial}");
        let fleet = report.fleet.unwrap();
        let seq = fleet.timeline.size_sequence();
        assert_eq!(seq[0], 1, "trial {trial}: starts at min fleet");
        for &s in &seq {
            assert!(
                (1..=4).contains(&s),
                "trial {trial}: fleet size {s} escaped [1, 4] in {seq:?}"
            );
        }
        assert!(
            fleet.billed_hours as usize >= 1,
            "trial {trial}: at least the seed instance is billed"
        );
        assert!(fleet.cost.compute_cost >= fleet.cost.amortized_cost);
    }
}
