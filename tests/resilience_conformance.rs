//! Cross-paradigm resilience conformance suite.
//!
//! Every paradigm — Classic Cloud, MapReduce, Dryad — runs under the same
//! *gray-degradation* schedule (no crashes: a worker silently computes many
//! times slower than its peers) with and without the shared
//! [`ppc::resilience::ResiliencePolicy`] defense layer, on both the native
//! engines and their discrete-event twins. The contract:
//!
//! 1. **Exactly-once outputs** — hedged duplicates never duplicate or
//!    corrupt a committed output; the defended output set is identical to
//!    the fault-free run's, byte for byte.
//! 2. **Bounded re-execution** — the hedge budget caps duplicate work.
//! 3. **Hedging pays** — tail (p99) task latency under gray faults is
//!    strictly lower with hedging than without, on every paradigm, in both
//!    engines.
//!
//! The schedule seed comes from `PPC_CHAOS_SEED` (the CI matrix sweeps
//! several), so the invariants must hold for any seed.

use ppc::chaos::FaultSchedule;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::classic::{simulate as classic_simulate, SimConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc::core::exec::{Executor, FnExecutor};
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::dryad::{run as dryad_run, DryadConfig};
use ppc::dryad::{simulate as dryad_simulate, DryadSimConfig};
use ppc::exec::RunContext;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
use ppc::mapreduce::{simulate as hadoop_simulate, HadoopSimConfig};
use ppc::queue::service::QueueService;
use ppc::resilience::{HedgeConfig, QuarantineConfig, ResiliencePolicy};
use ppc::storage::latency::LatencyModel;
use ppc::storage::service::StorageService;
use ppc::trace::{EventKind, Recorder, Trace, JOB_TASK};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

const N_TASKS: u64 = 32;

/// Schedule seed: `PPC_CHAOS_SEED` if set, else a fixed default.
fn chaos_seed() -> u64 {
    std::env::var("PPC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

/// Gray-only schedule: worker 0 computes `factor`x slower, forever. No
/// crashes, no torn uploads — the silent failure mode hedging targets.
fn gray(factor: f64) -> Arc<FaultSchedule> {
    Arc::new(FaultSchedule::new(chaos_seed()).degrade(0, factor, 0.0, 1e9))
}

/// Every worker gray: the whole fleet computes `factor`x slower.
fn all_gray(workers: u32, factor: f64) -> Arc<FaultSchedule> {
    let mut s = FaultSchedule::new(chaos_seed());
    for w in 0..workers {
        s = s.degrade(w, factor, 0.0, 1e9);
    }
    Arc::new(s)
}

fn payload(i: u64) -> Vec<u8> {
    format!("payload-{i}").into_bytes()
}

/// The logical result every engine must produce: key -> reversed payload.
fn expected_outputs() -> BTreeMap<String, Vec<u8>> {
    (0..N_TASKS)
        .map(|i| {
            let mut v = payload(i);
            v.reverse();
            (format!("f{i}.out"), v)
        })
        .collect()
}

fn reverse_executor() -> Arc<dyn Executor> {
    FnExecutor::new("rev", |_s, input: &[u8]| {
        std::thread::sleep(Duration::from_millis(3));
        let mut v = input.to_vec();
        v.reverse();
        Ok(v)
    })
}

fn specs() -> Vec<TaskSpec> {
    (0..N_TASKS)
        .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
        .collect()
}

/// Winner-based per-task latency from a trace: the first *terminal* span's
/// end (the attempt that committed) minus the task's first attempt start.
/// Losing duplicates draining after the winner do not count.
fn task_latencies(trace: &Trace) -> Vec<f64> {
    let mut started: HashMap<u64, f64> = HashMap::new();
    let mut committed: HashMap<u64, f64> = HashMap::new();
    for s in trace.spans() {
        if s.task == JOB_TASK {
            continue;
        }
        let e = started.entry(s.task).or_insert(f64::INFINITY);
        *e = e.min(s.start_s);
        if s.phase.is_terminal() {
            let d = committed.entry(s.task).or_insert(f64::INFINITY);
            *d = d.min(s.end_s);
        }
    }
    committed
        .iter()
        .map(|(task, done)| done - started[task])
        .collect()
}

fn p99(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty(), "no task latencies in trace");
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((0.99 * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
    xs[idx]
}

fn hedged_policy(min_delay_s: f64) -> ResiliencePolicy {
    ResiliencePolicy::hedged(HedgeConfig::quantile(min_delay_s))
}

/// Hedge + quarantine + deadline together — the full defense layer.
fn full_policy(min_delay_s: f64, timeout_s: f64) -> ResiliencePolicy {
    ResiliencePolicy::hedged(HedgeConfig::quantile(min_delay_s))
        .with_quarantine(QuarantineConfig {
            min_samples: 2,
            ..Default::default()
        })
        .with_deadline(timeout_s)
}

// ---------------------------------------------------------------- sims --

fn sim_tasks(n: u64) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| TaskSpec::new(i, "t", format!("f{i}"), ResourceProfile::cpu_bound(10.0)))
        .collect()
}

#[test]
fn classic_sim_hedged_p99_beats_unhedged() {
    let cluster = Cluster::provision(EC2_HCXL, 1, 8);
    let tasks = sim_tasks(64);
    let cfg = SimConfig {
        storage_latency: LatencyModel::FREE,
        queue_latency: LatencyModel::FREE,
        jitter_sigma: 0.0,
        trace: true,
        ..SimConfig::ec2()
    };
    let run = |policy: Option<ResiliencePolicy>| {
        let mut ctx = RunContext::new(&cluster).with_schedule(gray(30.0));
        if let Some(p) = policy {
            ctx = ctx.with_resilience(p);
        }
        classic_simulate(&ctx, &tasks, &cfg)
    };
    let unhedged = run(None);
    let hedged = run(Some(hedged_policy(30.0)));
    assert_eq!(unhedged.summary.tasks, 64);
    assert_eq!(hedged.summary.tasks, 64, "first result wins exactly once");
    let hp = p99(task_latencies(hedged.core.trace.as_ref().unwrap()));
    let up = p99(task_latencies(unhedged.core.trace.as_ref().unwrap()));
    assert!(hp < up, "classic sim p99: hedged {hp} vs unhedged {up}");
    // Bounded duplicate work: the budget caps hedges at half the job.
    assert!(hedged.redundant_executions() <= 33);
}

#[test]
fn mapreduce_sim_hedged_p99_beats_unhedged() {
    let cluster = Cluster::provision(BARE_CAP3, 1, 8);
    let tasks = sim_tasks(64);
    let cfg = HadoopSimConfig {
        straggler_p: 0.0,
        jitter_sigma: 0.0,
        trace: true,
        ..Default::default()
    };
    let run = |policy: ResiliencePolicy| {
        let cfg = HadoopSimConfig {
            resilience: Some(policy),
            ..cfg
        };
        hadoop_simulate(
            &RunContext::new(&cluster).with_schedule(gray(30.0)),
            &tasks,
            &cfg,
        )
    };
    // An explicit empty policy disables legacy speculation, isolating the
    // hedge as the only difference between the two runs.
    let unhedged = run(ResiliencePolicy::default());
    let hedged = run(hedged_policy(30.0));
    assert!(unhedged.is_complete());
    assert!(hedged.is_complete(), "failed: {:?}", hedged.failed);
    assert_eq!(hedged.summary.tasks, 64);
    let hp = p99(task_latencies(hedged.core.trace.as_ref().unwrap()));
    let up = p99(task_latencies(unhedged.core.trace.as_ref().unwrap()));
    assert!(hp < up, "mapreduce sim p99: hedged {hp} vs unhedged {up}");
    assert!(hedged.summary.redundant_executions <= 33);
}

#[test]
fn dryad_sim_hedged_p99_beats_unhedged() {
    let cluster = Cluster::provision(BARE_CAP3, 1, 8);
    let tasks = sim_tasks(64);
    let cfg = DryadSimConfig {
        jitter_sigma: 0.0,
        trace: true,
        ..Default::default()
    };
    let run = |policy: Option<ResiliencePolicy>| {
        let cfg = DryadSimConfig {
            resilience: policy,
            ..cfg
        };
        dryad_simulate(
            &RunContext::new(&cluster).with_schedule(gray(30.0)),
            &tasks,
            &cfg,
        )
    };
    let unhedged = run(None);
    let hedged = run(Some(hedged_policy(30.0)));
    assert_eq!(hedged.summary.tasks, 64, "first Ok wins exactly once");
    let hp = p99(task_latencies(hedged.core.trace.as_ref().unwrap()));
    let up = p99(task_latencies(unhedged.core.trace.as_ref().unwrap()));
    assert!(hp < up, "dryad sim p99: hedged {hp} vs unhedged {up}");
    assert!(hedged.summary.redundant_executions <= unhedged.summary.redundant_executions + 33);
}

/// The three simulators replay the same defended gray run bit-identically:
/// hedging is part of the deterministic model, not a source of noise.
#[test]
fn defended_sims_replay_deterministically() {
    let policy = full_policy(30.0, 200.0);
    let cluster = Cluster::provision(EC2_HCXL, 1, 8);
    let tasks = sim_tasks(64);
    let cfg = SimConfig {
        trace: true,
        ..SimConfig::ec2()
    };
    let run = || {
        classic_simulate(
            &RunContext::new(&cluster)
                .with_schedule(gray(30.0))
                .with_resilience(policy),
            &tasks,
            &cfg,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
    assert_eq!(a.total_attempts, b.total_attempts);

    let cluster = Cluster::provision(BARE_CAP3, 1, 8);
    let cfg = HadoopSimConfig {
        resilience: Some(policy),
        trace: true,
        ..Default::default()
    };
    let run = || {
        hadoop_simulate(
            &RunContext::new(&cluster).with_schedule(gray(30.0)),
            &tasks,
            &cfg,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
    assert_eq!(a.total_attempts, b.total_attempts);

    let cfg = DryadSimConfig {
        resilience: Some(policy),
        trace: true,
        ..Default::default()
    };
    let run = || {
        dryad_simulate(
            &RunContext::new(&cluster).with_schedule(gray(30.0)),
            &tasks,
            &cfg,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
    assert_eq!(a.total_attempts, b.total_attempts);
}

// ------------------------------------------------------------- natives --

struct NativeRun {
    outputs: BTreeMap<String, Vec<u8>>,
    trace: Trace,
    total_attempts: usize,
}

fn classic_native(
    schedule: Option<Arc<FaultSchedule>>,
    policy: Option<ResiliencePolicy>,
) -> NativeRun {
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 1, 4);
    let job = JobSpec::new("resil", specs())
        .with_visibility_timeout(Duration::from_millis(400))
        .with_max_deliveries(8);
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..N_TASKS {
        storage
            .put(&job.input_bucket, &format!("f{i}"), payload(i))
            .unwrap();
    }
    let config = ClassicConfig {
        schedule: schedule.clone(),
        trace: Some(Arc::new(Recorder::new())),
        resilience: policy,
        ..ClassicConfig::default()
    };
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        reverse_executor(),
        &config,
    )
    .unwrap();
    assert!(report.is_complete(), "failed: {:?}", report.failed);
    let outputs = expected_outputs()
        .keys()
        .map(|key| {
            let got = storage.get_with_retry(&job.output_bucket, key, 64).unwrap();
            (key.clone(), got.to_vec())
        })
        .collect();
    NativeRun {
        outputs,
        trace: report.core.trace.clone().unwrap(),
        total_attempts: report.total_attempts,
    }
}

fn mapreduce_native(
    schedule: Option<Arc<FaultSchedule>>,
    policy: Option<ResiliencePolicy>,
) -> NativeRun {
    let fs = MiniHdfs::new(2, 1 << 20, 2, 77); // 2 nodes x 2 slots = workers 0..=3
    let mut paths = Vec::new();
    for i in 0..N_TASKS {
        let p = format!("/in/f{i}");
        fs.create(&p, &payload(i), None).unwrap();
        paths.push(p);
    }
    let mut job = MapReduceJob::map_only("resil", paths, "/out");
    job.max_attempts = 8;
    let mapper = ExecutableMapper::new("rev", reverse_executor());
    let config = HadoopConfig {
        schedule,
        trace: Some(Arc::new(Recorder::new())),
        resilience: policy,
        ..HadoopConfig::default()
    };
    let report = hadoop_run(&RunContext::local(), &fs, &job, &mapper, None, &config).unwrap();
    assert!(report.is_complete(), "failed: {:?}", report.failed);
    let outputs = expected_outputs()
        .keys()
        .map(|key| (key.clone(), fs.read(&format!("/out/{key}")).unwrap()))
        .collect();
    NativeRun {
        outputs,
        trace: report.core.trace.clone().unwrap(),
        total_attempts: report.total_attempts,
    }
}

fn dryad_native(
    schedule: Option<Arc<FaultSchedule>>,
    policy: Option<ResiliencePolicy>,
) -> NativeRun {
    let cluster = Cluster::provision(BARE_CAP3, 1, 4);
    let inputs: Vec<(TaskSpec, Vec<u8>)> = specs()
        .into_iter()
        .map(|s| (payload(s.id.0), s))
        .map(|(p, s)| (s, p))
        .collect();
    let config = DryadConfig {
        schedule,
        trace: Some(Arc::new(Recorder::new())),
        resilience: policy,
        ..Default::default()
    };
    let (report, outputs) = dryad_run(
        &RunContext::new(&cluster),
        inputs,
        reverse_executor(),
        &config,
    )
    .unwrap();
    assert_eq!(
        report.vertex_failures, 0,
        "failed: {:?}",
        report.core.failed
    );
    NativeRun {
        outputs: outputs.into_iter().collect(),
        trace: report.core.trace.clone().unwrap(),
        total_attempts: report.core.total_attempts,
    }
}

type ParadigmRunner = Box<dyn Fn(Option<ResiliencePolicy>) -> NativeRun>;

/// One gray straggler per fleet: hedged p99 must beat unhedged p99 on every
/// native engine, with byte-identical exactly-once outputs.
#[test]
fn native_hedged_p99_beats_unhedged_on_every_paradigm() {
    let runs: [(&str, ParadigmRunner); 3] = [
        ("classic", Box::new(|p| classic_native(Some(gray(30.0)), p))),
        (
            "mapreduce",
            // The empty policy disables legacy speculation so the hedge is
            // the only difference between the two runs.
            Box::new(|p| mapreduce_native(Some(gray(30.0)), Some(p.unwrap_or_default()))),
        ),
        ("dryad", Box::new(|p| dryad_native(Some(gray(30.0)), p))),
    ];
    for (name, run) in &runs {
        let unhedged = run(None);
        let hedged = run(Some(hedged_policy(0.02)));
        assert_eq!(
            hedged.outputs,
            expected_outputs(),
            "{name}: defended outputs must be exactly-once and uncorrupted"
        );
        assert_eq!(
            hedged.outputs, unhedged.outputs,
            "{name}: hedging must not change the output set"
        );
        assert!(
            hedged.trace.events_of_kind(EventKind::Hedge) > 0,
            "{name}: the straggler must have been hedged"
        );
        assert!(
            hedged.total_attempts <= 3 * N_TASKS as usize,
            "{name}: re-execution unbounded: {}",
            hedged.total_attempts
        );
        let hp = p99(task_latencies(&hedged.trace));
        let up = p99(task_latencies(&unhedged.trace));
        assert!(hp < up, "{name} native p99: hedged {hp} vs unhedged {up}");
    }
}

/// The acceptance scenario: every worker gray, full defense on — each
/// paradigm, native and simulated, completes with outputs identical to the
/// fault-free run.
#[test]
fn all_gray_fleet_completes_with_fault_free_outputs() {
    let policy = full_policy(0.05, 5.0);
    let schedule = all_gray(8, 5.0);

    let fault_free = classic_native(None, None);
    let defended = classic_native(Some(schedule.clone()), Some(policy));
    assert_eq!(defended.outputs, fault_free.outputs, "classic native");

    let fault_free = mapreduce_native(None, None);
    let defended = mapreduce_native(Some(schedule.clone()), Some(policy));
    assert_eq!(defended.outputs, fault_free.outputs, "mapreduce native");

    let fault_free = dryad_native(None, None);
    let defended = dryad_native(Some(schedule.clone()), Some(policy));
    assert_eq!(defended.outputs, fault_free.outputs, "dryad native");

    // The discrete-event twins, all-gray with the full defense: complete
    // with every task accounted for.
    let sim_policy = full_policy(30.0, 400.0);
    let tasks = sim_tasks(64);
    let cluster = Cluster::provision(EC2_HCXL, 1, 8);
    let report = classic_simulate(
        &RunContext::new(&cluster)
            .with_schedule(schedule.clone())
            .with_resilience(sim_policy),
        &tasks,
        &SimConfig::ec2(),
    );
    assert!(report.is_complete(), "classic sim: {:?}", report.failed);
    assert_eq!(report.summary.tasks, 64);

    let cluster = Cluster::provision(BARE_CAP3, 1, 8);
    let report = hadoop_simulate(
        &RunContext::new(&cluster)
            .with_schedule(schedule.clone())
            .with_resilience(sim_policy),
        &tasks,
        &HadoopSimConfig::default(),
    );
    assert!(report.is_complete(), "mapreduce sim: {:?}", report.failed);
    assert_eq!(report.summary.tasks, 64);

    let report = dryad_simulate(
        &RunContext::new(&cluster)
            .with_schedule(schedule)
            .with_resilience(sim_policy),
        &tasks,
        &DryadSimConfig::default(),
    );
    assert_eq!(report.vertex_failures, 0);
    assert_eq!(report.summary.tasks, 64);
}
