//! The distributed iterative-MapReduce k-means must compute *exactly* the
//! same iterates as a straightforward serial k-means: partitioning the data
//! across HDFS blocks and summing per-block partials is algebraically the
//! same arithmetic (floating-point association differs only across blocks,
//! so we compare with a tight tolerance).

use ppc::core::rng::Pcg32;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::iterative::{
    cache_splits, encode_block, Centroids, IterativeJob, KMeansCombiner, KMeansMapper,
    KMeansReducer,
};
use ppc::workflow::run_fixed_point;

/// One serial k-means iteration (assign + recompute).
fn serial_step(points: &[Vec<f64>], centroids: &Centroids) -> Centroids {
    let k = centroids.len();
    let d = centroids[0].len();
    let mut sums = vec![vec![0.0; d]; k];
    let mut counts = vec![0usize; k];
    for p in points {
        let mut best = 0;
        let mut best_d2 = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let d2: f64 = centroid.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
            if d2 < best_d2 {
                best_d2 = d2;
                best = c;
            }
        }
        counts[best] += 1;
        for (s, v) in sums[best].iter_mut().zip(p) {
            *s += v;
        }
    }
    centroids
        .iter()
        .enumerate()
        .map(|(c, old)| {
            if counts[c] == 0 {
                old.clone()
            } else {
                sums[c].iter().map(|s| s / counts[c] as f64).collect()
            }
        })
        .collect()
}

#[test]
fn distributed_kmeans_matches_serial_iterates() {
    let mut rng = Pcg32::new(321);
    let points: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            let cx = (i % 3) as f64 * 8.0;
            vec![cx + rng.normal_with(0.0, 0.7), rng.normal_with(0.0, 0.7)]
        })
        .collect();

    // Distribute across 5 HDFS blocks.
    let fs = MiniHdfs::with_defaults(3);
    let mut paths = Vec::new();
    for (b, chunk) in points.chunks(80).enumerate() {
        let path = format!("/pts/b{b}");
        fs.create(&path, &encode_block(chunk), None).unwrap();
        paths.push(path);
    }

    let initial: Centroids = vec![vec![1.0, 1.0], vec![7.0, -1.0], vec![15.0, 1.0]];

    // Run exactly N iterations distributed (tolerance -1 => never converge).
    let n_iter = 6;
    let job = IterativeJob::new("eq", paths).with_max_iterations(n_iter);
    let cache = cache_splits(&fs, &job.input_paths).unwrap();
    let (distributed, report) = run_fixed_point(
        &cache,
        &job.fixed_point(),
        &KMeansMapper,
        &KMeansReducer,
        &KMeansCombiner { tolerance: -1.0 },
        initial.clone(),
    )
    .unwrap();
    assert_eq!(report.iterations, n_iter);

    // The same N iterations serially.
    let mut serial = initial;
    for _ in 0..n_iter {
        serial = serial_step(&points, &serial);
    }

    for (c, (ds, ss)) in distributed.iter().zip(&serial).enumerate() {
        for (a, b) in ds.iter().zip(ss) {
            assert!((a - b).abs() < 1e-9, "centroid {c}: {a} vs {b}");
        }
    }
}
