//! Trace conformance suite: every engine's span trace is structurally
//! sound and numerically agrees with the engine's own report.
//!
//! All six entry points (Classic, Hadoop, Dryad — native and simulated)
//! run under the same hostile [`FaultSchedule`] with tracing on, and every
//! produced [`ppc::trace::Trace`] must satisfy:
//!
//! 1. **Well-formedness** — finite non-negative durations, one Attempt
//!    parent per `(task, attempt)`, every phase span inside its parent.
//! 2. **One terminal span per completed task** — exactly one ack / commit
//!    / write per finished task. (Classic *native* allows more than one:
//!    a visibility-timeout race can double-deliver a task, and both
//!    deliveries legitimately complete — the store stays idempotent.)
//! 3. **Chaos re-executions are distinct attempts** — a re-run task shows
//!    several Attempt spans under the same task id, never a mutated first
//!    attempt.
//! 4. **Eq. 1 agreement** — parallel efficiency recomputed from the trace
//!    matches the engine's reported value to 1e-9.
//!
//! The schedule seed comes from `PPC_CHAOS_SEED` (CI sweeps several), so
//! the invariants must hold for any seed.

use ppc::chaos::FaultSchedule;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::classic::{simulate as classic_simulate, SimConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc::core::exec::{Executor, FnExecutor};
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::dryad::{run as dryad_run, DryadConfig};
use ppc::dryad::{simulate as dryad_simulate, DryadSimConfig};
use ppc::exec::RunContext;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
use ppc::mapreduce::{simulate as hadoop_simulate, HadoopSimConfig};
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use ppc::trace::{EventKind, Recorder, Trace};
use std::sync::Arc;
use std::time::Duration;

const N_TASKS: u64 = 40;

/// Schedule seed: `PPC_CHAOS_SEED` if set (the CI matrix sweeps a few),
/// else a fixed default.
fn chaos_seed() -> u64 {
    std::env::var("PPC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn hostile() -> Arc<FaultSchedule> {
    Arc::new(FaultSchedule::hostile(chaos_seed()))
}

fn reverse_executor() -> Arc<dyn Executor> {
    FnExecutor::new("rev", |_s, input: &[u8]| {
        std::thread::sleep(Duration::from_millis(2));
        let mut v = input.to_vec();
        v.reverse();
        Ok(v)
    })
}

fn sim_tasks(n: u64) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| {
            let mut p = ResourceProfile::cpu_bound(10.0);
            p.input_bytes = 200 << 10;
            p.output_bytes = 100 << 10;
            TaskSpec::new(i, "cap3", format!("f{i}"), p)
        })
        .collect()
}

/// The shared contract: structural soundness, terminal-span counts, attempt
/// distinctness, and Eq. 1 agreement with the engine's summary.
///
/// `max_terminal` is 1 everywhere except Classic native, where a benign
/// visibility-timeout race can complete a task twice (both attempts ack).
fn assert_conformant(
    trace: &Trace,
    summary: &ppc::core::metrics::RunSummary,
    reported_reruns: usize,
    max_terminal: usize,
) {
    // 1. Well-formedness.
    let problems = trace.check_well_formed();
    assert!(problems.is_empty(), "{}: {problems:?}", summary.platform);

    // The job root exists and carries the engine's exact makespan.
    let job = trace.job_span().expect("job span recorded");
    assert_eq!(
        job.duration_s(),
        summary.makespan_seconds,
        "{}: job span must carry the reported makespan",
        summary.platform
    );
    assert_eq!(trace.meta().cores, summary.cores, "{}", summary.platform);

    // 2. Terminal spans: every completed task has at least one, and no
    //    more than the paradigm's bound.
    let completed = trace.completed_tasks();
    assert_eq!(
        completed.len(),
        summary.tasks,
        "{}: completed tasks in trace vs summary",
        summary.platform
    );
    for &task in &completed {
        let n = trace.terminal_spans_of(task);
        assert!(
            (1..=max_terminal).contains(&n),
            "{}: task {task} has {n} terminal spans (bound {max_terminal})",
            summary.platform
        );
    }

    // 3. Chaos re-executions show up as distinct attempts of the same
    //    task, never as overwritten ordinals: when the engine reports
    //    re-runs, some task must carry more than one Attempt span.
    let extra_attempts: usize = trace
        .task_ids()
        .iter()
        .map(|&t| trace.attempts_of(t).len().saturating_sub(1))
        .sum();
    if reported_reruns > 0 {
        assert!(
            extra_attempts > 0,
            "{}: engine reported {reported_reruns} re-runs but every task \
             has a single attempt",
            summary.platform
        );
    }

    // 4. Eq. 1 recomputed from the trace matches the engine to 1e-9 for an
    //    arbitrary sequential baseline.
    let t1 = 1234.5;
    let from_trace = trace.parallel_efficiency(t1);
    let from_engine = summary.efficiency(t1);
    assert!(
        (from_trace - from_engine).abs() < 1e-9,
        "{}: Eq. 1 mismatch: trace {from_trace} vs engine {from_engine}",
        summary.platform
    );
}

#[test]
fn classic_native_trace_conforms() {
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 2, 2);
    let tasks: Vec<TaskSpec> = (0..N_TASKS)
        .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
        .collect();
    let job = JobSpec::new("trace-conform", tasks)
        .with_visibility_timeout(Duration::from_millis(30))
        .with_max_deliveries(20);
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..N_TASKS {
        storage
            .put(
                &job.input_bucket,
                &format!("f{i}"),
                format!("p{i}").into_bytes(),
            )
            .unwrap();
    }
    let config = ClassicConfig {
        schedule: Some(hostile()),
        trace: Some(Arc::new(Recorder::new())),
        ..ClassicConfig::default()
    };
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        reverse_executor(),
        &config,
    )
    .unwrap();
    assert!(report.is_complete(), "failed: {:?}", report.failed);

    let trace = report.trace.as_ref().expect("trace recorded");
    // Classic native: double-ack under the visibility-timeout race is
    // benign, so completed tasks may hold more than one terminal span.
    let reruns = report.total_attempts.saturating_sub(N_TASKS as usize);
    assert_conformant(trace, &report.summary, reruns, usize::MAX);
    // Fleet lifecycle made it into the trace: every worker announced.
    assert_eq!(
        trace.events_of_kind(EventKind::WorkerStart),
        report.summary.cores,
        "one WorkerStart per worker"
    );
}

#[test]
fn classic_sim_trace_conforms() {
    let cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let tasks = sim_tasks(64);
    let mut cfg = SimConfig::ec2().with_failures(0.0, 60.0);
    cfg.trace = true;
    let report = classic_simulate(
        &RunContext::new(&cluster).with_schedule(hostile()),
        &tasks,
        &cfg,
    );
    assert!(report.is_complete());
    let trace = report.trace.as_ref().expect("trace recorded");
    let reruns = report.total_attempts.saturating_sub(64);
    assert_conformant(trace, &report.summary, reruns, 1);
}

#[test]
fn hadoop_native_trace_conforms() {
    let fs = MiniHdfs::new(3, 1 << 20, 2, 77);
    let mut paths = Vec::new();
    for i in 0..N_TASKS {
        let p = format!("/in/f{i}");
        fs.create(&p, format!("p{i}").as_bytes(), None).unwrap();
        paths.push(p);
    }
    let mut job = MapReduceJob::map_only("trace-conform", paths, "/out");
    job.max_attempts = 8;
    let mapper = ExecutableMapper::new("rev", reverse_executor());
    let config = HadoopConfig {
        schedule: Some(hostile()),
        trace: Some(Arc::new(Recorder::new())),
        ..HadoopConfig::default()
    };
    let report = hadoop_run(&RunContext::local(), &fs, &job, &mapper, None, &config).unwrap();
    assert!(report.is_complete(), "failed: {:?}", report.failed);

    let trace = report.trace.as_ref().expect("trace recorded");
    let reruns = report.total_attempts.saturating_sub(N_TASKS as usize);
    // The output committer admits exactly one attempt per task.
    assert_conformant(trace, &report.summary, reruns, 1);
}

#[test]
fn hadoop_sim_trace_conforms() {
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let tasks = sim_tasks(64);
    let cfg = HadoopSimConfig {
        trace: true,
        ..HadoopSimConfig::default()
    };
    let report = hadoop_simulate(
        &RunContext::new(&cluster).with_schedule(hostile()),
        &tasks,
        &cfg,
    );
    assert!(report.is_complete(), "failed: {:?}", report.failed);
    let trace = report.trace.as_ref().expect("trace recorded");
    let reruns = report.total_attempts.saturating_sub(64);
    assert_conformant(trace, &report.summary, reruns, 1);
}

#[test]
fn dryad_native_trace_conforms() {
    let cluster = Cluster::provision(BARE_CAP3, 2, 2);
    let inputs: Vec<(TaskSpec, Vec<u8>)> = (0..N_TASKS)
        .map(|i| {
            (
                TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                format!("p{i}").into_bytes(),
            )
        })
        .collect();
    let config = DryadConfig {
        trace: Some(Arc::new(Recorder::new())),
        ..DryadConfig::default()
    };
    let (report, outputs) = dryad_run(
        &RunContext::new(&cluster).with_schedule(hostile()),
        inputs,
        reverse_executor(),
        &config,
    )
    .unwrap();
    assert_eq!(outputs.len(), N_TASKS as usize);

    let trace = report.trace.as_ref().expect("trace recorded");
    assert_conformant(trace, &report.summary, report.vertex_retries, 1);
}

#[test]
fn dryad_sim_trace_conforms() {
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let tasks = sim_tasks(64);
    let cfg = DryadSimConfig {
        trace: true,
        ..DryadSimConfig::default()
    };
    let report = dryad_simulate(
        &RunContext::new(&cluster).with_schedule(hostile()),
        &tasks,
        &cfg,
    );
    assert_eq!(report.vertex_failures, 0);
    let trace = report.trace.as_ref().expect("trace recorded");
    assert_conformant(trace, &report.summary, report.vertex_retries, 1);
}
