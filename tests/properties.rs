//! Cross-crate randomized property tests.
//!
//! Each test drives its invariant over many seeded-random cases using the
//! workspace's own deterministic PRNG, so failures reproduce exactly from
//! the printed seed without an external property-testing framework.

use ppc::bio::assembly::{assemble, AssemblyParams};
use ppc::bio::fasta::{self, FastaRecord};
use ppc::core::money::Usd;
use ppc::core::rng::Pcg32;
use ppc::dryad::linq::DVec;
use ppc::dryad::partition::{partition_contiguous, partition_round_robin};
use ppc::queue::queue::{Queue, QueueConfig};

const ID_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.";

fn random_id(rng: &mut Pcg32) -> String {
    let len = 1 + rng.next_below(12) as usize;
    (0..len)
        .map(|_| *rng.choose(ID_CHARS).unwrap() as char)
        .collect()
}

fn random_bases(rng: &mut Pcg32, alphabet: &[u8], max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u32) as usize;
    (0..len).map(|_| *rng.choose(alphabet).unwrap()).collect()
}

/// FASTA format/parse is a lossless round trip for arbitrary records.
#[test]
fn fasta_round_trip() {
    for seed in 0..64u64 {
        let mut rng = Pcg32::new(0xFA57A + seed);
        let n = 1 + rng.next_below(7) as usize;
        let recs: Vec<FastaRecord> = (0..n)
            .map(|i| {
                let id = format!("{}{i}", random_id(&mut rng));
                let seq = random_bases(&mut rng, b"ACGTN", 300);
                FastaRecord::new(id, seq)
            })
            .collect();
        let bytes = fasta::format(&recs);
        let back = fasta::parse(&bytes).unwrap();
        assert_eq!(back, recs, "seed {seed}");
    }
}

/// Reverse complement is an involution on DNA.
#[test]
fn revcomp_involution() {
    for seed in 0..64u64 {
        let mut rng = Pcg32::new(0xDCBA + seed);
        let seq = random_bases(&mut rng, b"ACGT", 200);
        let rc = fasta::reverse_complement(&seq);
        assert_eq!(fasta::reverse_complement(&rc), seq, "seed {seed}");
    }
}

/// Every read ends up in exactly one contig or the singleton list.
#[test]
fn assembly_conserves_reads() {
    use ppc::bio::simulate::{random_genome, shotgun_reads, ShotgunParams};
    for seed in 0..48u64 {
        let genome = random_genome(600, seed);
        let reads = shotgun_reads(
            &genome,
            &ShotgunParams {
                n_reads: 20,
                read_len_mean: 120.0,
                read_len_sd: 15.0,
                ..Default::default()
            },
            seed + 1,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        let mut seen: Vec<&str> = asm.singletons.iter().map(String::as_str).collect();
        for c in &asm.contigs {
            assert!(c.n_reads() >= 2, "contigs have at least two reads");
            seen.extend(c.read_ids.iter().map(String::as_str));
        }
        seen.sort_unstable();
        let mut expect: Vec<&str> = reads.iter().map(|r| r.id.as_str()).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect, "seed {seed}");
    }
}

/// Money arithmetic is exact: scaling by n equals summing n copies.
#[test]
fn money_scaling_exact() {
    let mut rng = Pcg32::new(0xCA5);
    for case in 0..64 {
        let cents = 1 + rng.next_below(100_000) as i64;
        let n = 1 + rng.next_below(500) as i64;
        let unit = Usd::cents(cents);
        let summed: Usd = std::iter::repeat_n(unit, n as usize).sum();
        assert_eq!(summed, unit * n, "case {case}");
        assert_eq!(summed - unit * (n - 1), unit, "case {case}");
    }
}

/// Partitioners conserve items and respect the partition count.
#[test]
fn partitioners_conserve() {
    for seed in 0..64u64 {
        let mut rng = Pcg32::new(0xBA1A + seed);
        let len = rng.next_below(200) as usize;
        let items: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let n = 1 + rng.next_below(15) as usize;
        for parts in [
            partition_round_robin(items.clone(), n),
            partition_contiguous(items.clone(), n),
        ] {
            assert_eq!(parts.len(), n);
            let mut flat: Vec<u32> = parts.into_iter().flatten().collect();
            let mut expect = items.clone();
            flat.sort_unstable();
            expect.sort_unstable();
            assert_eq!(flat, expect, "seed {seed}");
        }
        // Round-robin balance: sizes differ by at most one.
        let sizes: Vec<usize> = partition_round_robin(items.clone(), n)
            .iter()
            .map(Vec::len)
            .collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "seed {seed}");
    }
}

/// DVec select/where agree with the sequential equivalents.
#[test]
fn dvec_matches_vec() {
    for seed in 0..64u64 {
        let mut rng = Pcg32::new(0xD7EC + seed);
        let len = rng.next_below(300) as usize;
        let items: Vec<i64> = (0..len)
            .map(|_| rng.next_below(2000) as i64 - 1000)
            .collect();
        let n = 1 + rng.next_below(7) as usize;
        let d = DVec::distribute(items.clone(), n)
            .select(|x| x * 3)
            .where_(|x| x % 2 == 0);
        let mut got = d.collect();
        got.sort_unstable();
        let mut expect: Vec<i64> = items.iter().map(|x| x * 3).filter(|x| x % 2 == 0).collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// Queue conservation: after arbitrary interleavings of send/receive/
/// delete, every sent message was either deleted exactly once or is
/// still present (visible or in flight) — none vanish, none duplicate
/// into the delete set.
#[test]
fn queue_conserves_messages() {
    for seed in 0..64u64 {
        let mut rng = Pcg32::new(0x0_0E + seed);
        let q = Queue::new("prop", QueueConfig::default());
        let mut sent = 0u64;
        let mut deleted = std::collections::HashSet::new();
        let mut in_hand = Vec::new();
        let n_ops = 1 + rng.next_below(119) as usize;
        for _ in 0..n_ops {
            match rng.next_below(3) {
                0 => {
                    q.send(format!("m{sent}")).unwrap();
                    sent += 1;
                }
                1 => {
                    if let Some(m) = q.receive().unwrap() {
                        in_hand.push(m);
                    }
                }
                _ => {
                    if let Some(m) = in_hand.pop() {
                        // Receipt may be stale only if visibility lapsed; with
                        // the default 30 s timeout it cannot in-test.
                        q.delete(m.receipt).unwrap();
                        assert!(deleted.insert(m.id), "double delete of {:?}", m.id);
                    }
                }
            }
        }
        let remaining = q.approximate_len() + q.approximate_in_flight();
        assert_eq!(deleted.len() + remaining, sent as usize, "seed {seed}");
    }
}

/// Six-frame translation invariants: always six frames for DNA of
/// length >= 5, frame lengths = floor((len - offset)/3), and the
/// reverse frames translate the reverse complement.
#[test]
fn six_frames_invariants() {
    use ppc::bio::codon::{six_frames, translate_frame};
    use ppc::bio::fasta::reverse_complement;
    for seed in 0..64u64 {
        let mut rng = Pcg32::new(0x6F + seed);
        let len = 5 + rng.next_below(115) as usize;
        let seq: Vec<u8> = (0..len).map(|_| *rng.choose(b"ACGT").unwrap()).collect();
        let frames = six_frames(&seq);
        assert_eq!(frames.len(), 6);
        let rc = reverse_complement(&seq);
        for f in &frames {
            let offset = (f.frame.unsigned_abs() - 1) as usize;
            assert_eq!(
                f.protein.len(),
                (seq.len() - offset) / 3,
                "frame {}",
                f.frame
            );
            let expect = if f.frame > 0 {
                translate_frame(&seq, offset)
            } else {
                translate_frame(&rc, offset)
            };
            assert_eq!(&f.protein, &expect, "frame {}", f.frame);
        }
    }
}

/// Timeline utilization stays in [0, 1] for non-overlapping per-worker
/// intervals (the only kind the runtimes produce), and busy time is
/// conserved.
#[test]
fn timeline_utilization_bounded() {
    use ppc::core::trace::Timeline;
    for seed in 0..64u64 {
        let mut rng = Pcg32::new(0x71AE + seed);
        let mut t = Timeline::new();
        let mut cursor = [0.0f64; 4];
        let mut total_busy = 0.0;
        let n_intervals = 1 + rng.next_below(39) as usize;
        for task in 0..n_intervals {
            let w = rng.next_below(4) as usize;
            let gap = rng.uniform(0.0, 20.0);
            let dur = rng.uniform(0.01, 50.0);
            let start = cursor[w] + gap;
            t.push(w, task as u64, start, start + dur);
            cursor[w] = start + dur;
            total_busy += dur;
        }
        let n = t.n_workers().max(1);
        let u = t.utilization(n);
        assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        let busy_sum: f64 = (0..n).map(|w| t.worker_busy_s(w)).sum();
        assert!((busy_sum - total_busy).abs() < 1e-6, "seed {seed}");
    }
}

/// Hedged duplicates never duplicate or corrupt a committed output: for
/// randomized gray-straggler schedules and hedge dials, every paradigm's
/// native engine commits each output exactly once with fault-free bytes,
/// and every simulator accounts for each task exactly once.
#[test]
fn hedging_preserves_exactly_once_outputs() {
    use ppc::chaos::FaultSchedule;
    use ppc::classic::spec::JobSpec;
    use ppc::compute::cluster::Cluster;
    use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
    use ppc::core::exec::FnExecutor;
    use ppc::core::task::TaskSpec;
    use ppc::exec::RunContext;
    use ppc::hdfs::fs::MiniHdfs;
    use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
    use ppc::queue::service::QueueService;
    use ppc::resilience::{HedgeConfig, ResiliencePolicy};
    use ppc::storage::service::StorageService;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use std::time::Duration;

    let n: u64 = 8;
    let expected: BTreeMap<String, Vec<u8>> = (0..n)
        .map(|i| {
            let mut v = format!("p{i}").into_bytes();
            v.reverse();
            (format!("f{i}.out"), v)
        })
        .collect();
    let specs = |n: u64| -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                TaskSpec::new(
                    i,
                    "rev",
                    format!("f{i}"),
                    ppc::core::task::ResourceProfile::cpu_bound(0.0),
                )
            })
            .collect()
    };
    let executor = || {
        FnExecutor::new("rev", |_s: &TaskSpec, input: &[u8]| {
            std::thread::sleep(Duration::from_millis(1));
            let mut v = input.to_vec();
            v.reverse();
            Ok(v)
        })
    };

    for case in 0..6u64 {
        let mut rng = Pcg32::new(0x4ED6E + case);
        let factor = 5.0 + rng.uniform(0.0, 30.0);
        let gray_worker = rng.next_below(4);
        let schedule = Arc::new(FaultSchedule::new(case).degrade(gray_worker, factor, 0.0, 1e9));
        let policy =
            ResiliencePolicy::hedged(HedgeConfig::quantile(0.002 + rng.uniform(0.0, 0.02)));

        // Classic: queue re-dispatch hedging over real storage.
        let storage = StorageService::in_memory();
        let queues = QueueService::new();
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let job = JobSpec::new("prop", specs(n))
            .with_visibility_timeout(Duration::from_millis(400))
            .with_max_deliveries(8);
        storage.create_bucket(&job.input_bucket).unwrap();
        for i in 0..n {
            storage
                .put(
                    &job.input_bucket,
                    &format!("f{i}"),
                    format!("p{i}").into_bytes(),
                )
                .unwrap();
        }
        let cfg = ppc::classic::ClassicConfig {
            schedule: Some(schedule.clone()),
            resilience: Some(policy),
            ..Default::default()
        };
        let report = ppc::classic::run(
            &RunContext::new(&cluster),
            &storage,
            &queues,
            &job,
            executor(),
            &cfg,
        )
        .unwrap();
        assert!(report.is_complete(), "case {case}: {:?}", report.failed);
        let got: BTreeMap<String, Vec<u8>> = expected
            .keys()
            .map(|k| {
                let v = storage.get_with_retry(&job.output_bucket, k, 64).unwrap();
                (k.clone(), v.to_vec())
            })
            .collect();
        assert_eq!(got, expected, "classic case {case}");

        // MapReduce: speculation refactored onto the shared policy.
        let fs = MiniHdfs::new(2, 1 << 20, 2, 7);
        let mut paths = Vec::new();
        for i in 0..n {
            let p = format!("/in/f{i}");
            fs.create(&p, format!("p{i}").as_bytes(), None).unwrap();
            paths.push(p);
        }
        let mut job = MapReduceJob::map_only("prop", paths, "/out");
        job.max_attempts = 8;
        let cfg = ppc::mapreduce::HadoopConfig {
            schedule: Some(schedule.clone()),
            resilience: Some(policy),
            ..Default::default()
        };
        let report = ppc::mapreduce::run(
            &RunContext::local(),
            &fs,
            &job,
            &ExecutableMapper::new("rev", executor()),
            None,
            &cfg,
        )
        .unwrap();
        assert!(report.is_complete(), "case {case}: {:?}", report.failed);
        let got: BTreeMap<String, Vec<u8>> = expected
            .keys()
            .map(|k| (k.clone(), fs.read(&format!("/out/{k}")).unwrap()))
            .collect();
        assert_eq!(got, expected, "mapreduce case {case}");

        // Dryad: backup vertices racing the primaries.
        let cluster = Cluster::provision(BARE_CAP3, 1, 4);
        let inputs: Vec<(TaskSpec, Vec<u8>)> = specs(n)
            .into_iter()
            .map(|s| {
                let p = format!("p{}", s.id.0).into_bytes();
                (s, p)
            })
            .collect();
        let cfg = ppc::dryad::DryadConfig {
            schedule: Some(schedule.clone()),
            resilience: Some(policy),
            ..Default::default()
        };
        let (report, outputs) =
            ppc::dryad::run(&RunContext::new(&cluster), inputs, executor(), &cfg).unwrap();
        assert_eq!(report.vertex_failures, 0, "case {case}");
        let got: BTreeMap<String, Vec<u8>> = outputs.into_iter().collect();
        assert_eq!(got, expected, "dryad case {case}");

        // The simulators: each task completes exactly once under the same
        // policy and schedule.
        let sim_tasks: Vec<TaskSpec> = (0..32)
            .map(|i| {
                TaskSpec::new(
                    i,
                    "t",
                    format!("f{i}"),
                    ppc::core::task::ResourceProfile::cpu_bound(10.0),
                )
            })
            .collect();
        let sim_policy = ResiliencePolicy::hedged(HedgeConfig::quantile(20.0));
        let cluster = Cluster::provision(EC2_HCXL, 1, 8);
        let ctx = RunContext::new(&cluster)
            .with_schedule(schedule.clone())
            .with_resilience(sim_policy);
        let r = ppc::classic::simulate(&ctx, &sim_tasks, &ppc::classic::SimConfig::ec2());
        assert_eq!(r.summary.tasks, 32, "classic sim case {case}");
        let cluster = Cluster::provision(BARE_CAP3, 1, 8);
        let ctx = RunContext::new(&cluster)
            .with_schedule(schedule.clone())
            .with_resilience(sim_policy);
        let r = ppc::mapreduce::simulate(&ctx, &sim_tasks, &Default::default());
        assert_eq!(r.summary.tasks, 32, "mapreduce sim case {case}");
        let r = ppc::dryad::simulate(&ctx, &sim_tasks, &Default::default());
        assert_eq!(r.summary.tasks, 32, "dryad sim case {case}");
    }
}

/// Same-timestamp FIFO: events scheduled for the *same* virtual instant
/// fire in schedule order, on every event-queue backend. This is the
/// engine's documented tie-break contract (ascending `(time, sequence)`),
/// and it is what keeps whole-platform simulations bit-identical when the
/// backend is swapped — so it gets its own property, not just a pin.
#[test]
fn equal_time_events_fire_in_schedule_order() {
    use ppc::des::{Engine, QueueKind, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;
    for kind in QueueKind::ALL {
        for seed in 0..32u64 {
            let mut rng = Pcg32::new(0xF1F0 + seed);
            // Few distinct instants, many events: collisions guaranteed.
            let instants: Vec<u64> = (0..4).map(|_| rng.next_below(1000) as u64).collect();
            let n = 40 + rng.next_below(60);
            let mut engine = Engine::with_queue(kind);
            let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
            let mut want: Vec<(u64, u32)> = Vec::new();
            for token in 0..n {
                let at = instants[rng.next_below(instants.len() as u32) as usize];
                want.push((at, token));
                let l = log.clone();
                engine.schedule_at(SimTime::from_micros(at), move |e| {
                    l.borrow_mut().push((e.now().as_micros(), token));
                });
            }
            engine.run();
            // Stable sort by time only: equal-time entries keep schedule
            // order — exactly what the engine must reproduce.
            want.sort_by_key(|&(at, _)| at);
            assert_eq!(
                *log.borrow(),
                want,
                "{} seed {seed}: same-instant events must fire FIFO",
                kind.name()
            );
        }
    }
}

/// GTM responsibilities stay a probability distribution for random inputs.
#[test]
fn gtm_projection_bounded_for_random_data() {
    use ppc::gtm::data::{fingerprints, FingerprintParams};
    use ppc::gtm::train::{train, TrainConfig};
    for seed in [1u64, 2, 3] {
        let (data, _) = fingerprints(
            &FingerprintParams {
                n_points: 60,
                dim: 16,
                n_clusters: 2,
                flip_noise: 0.1,
            },
            seed,
        );
        let model = train(
            &data,
            &TrainConfig {
                grid_side: 4,
                rbf_side: 2,
                iterations: 4,
                lambda: 1e-2,
            },
        )
        .unwrap();
        let proj = model.project(&data);
        for i in 0..proj.rows() {
            assert!(proj[(i, 0)].abs() <= 1.0 + 1e-9);
            assert!(proj[(i, 1)].abs() <= 1.0 + 1e-9);
        }
    }
}

/// Workflow topological schedules are valid, deterministic, and agree
/// with the level decomposition for arbitrary random DAGs.
#[test]
fn workflow_topological_schedule_is_valid_and_deterministic() {
    use ppc::core::task::{ResourceProfile, TaskSpec};
    use ppc::workflow::{DataPolicy, Stage, Workflow};

    for seed in 0..48u64 {
        let mut rng = Pcg32::new(0xDA6 + seed);
        let n = 2 + rng.next_below(9) as usize;
        let mut wf = Workflow::new(format!("dag-{seed}"));
        for i in 0..n {
            wf.add_stage(Stage::new(
                format!("s{i}"),
                vec![TaskSpec::new(
                    i as u64,
                    "noop",
                    format!("in/{i}"),
                    ResourceProfile::cpu_bound(1.0),
                )],
            ));
        }
        // Forward-only random edges keep the graph acyclic by construction.
        let mut edges = Vec::new();
        for to in 1..n {
            for from in 0..to {
                if rng.next_below(3) == 0 {
                    wf.connect_ordering(from, to, DataPolicy::Materialize);
                    edges.push((from, to));
                }
            }
        }
        wf.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        let order = wf.topo_order().unwrap();
        // A permutation of all stages...
        let mut seen = vec![false; n];
        for &s in &order {
            assert!(!seen[s], "seed {seed}: stage {s} scheduled twice");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&x| x), "seed {seed}: stage dropped");
        // ...that respects every edge...
        let pos: Vec<usize> = {
            let mut p = vec![0; n];
            for (i, &s) in order.iter().enumerate() {
                p[s] = i;
            }
            p
        };
        for &(from, to) in &edges {
            assert!(
                pos[from] < pos[to],
                "seed {seed}: edge {from}->{to} violated by {order:?}"
            );
        }
        // ...and is deterministic.
        assert_eq!(order, wf.topo_order().unwrap(), "seed {seed}");

        // Levels agree: every edge crosses strictly downward, and the
        // levels partition the stage set.
        let levels = wf.levels().unwrap();
        let mut level_of = vec![usize::MAX; n];
        for (l, group) in levels.iter().enumerate() {
            for &s in group {
                assert_eq!(
                    level_of[s],
                    usize::MAX,
                    "seed {seed}: stage {s} in two levels"
                );
                level_of[s] = l;
            }
        }
        assert!(level_of.iter().all(|&l| l != usize::MAX), "seed {seed}");
        for &(from, to) in &edges {
            assert!(
                level_of[from] < level_of[to],
                "seed {seed}: edge {from}->{to} does not descend levels"
            );
        }
    }
}
