//! Cross-crate property-based tests (proptest).

use ppc::bio::assembly::{assemble, AssemblyParams};
use ppc::bio::fasta::{self, FastaRecord};
use ppc::core::money::Usd;
use ppc::dryad::linq::DVec;
use ppc::dryad::partition::{partition_contiguous, partition_round_robin};
use ppc::queue::queue::{Queue, QueueConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FASTA format/parse is a lossless round trip for arbitrary records.
    #[test]
    fn fasta_round_trip(records in prop::collection::vec(
        ("[A-Za-z0-9_.]{1,12}", prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T', b'N']), 0..300)),
        1..8,
    )) {
        let recs: Vec<FastaRecord> = records
            .into_iter()
            .enumerate()
            .map(|(i, (id, seq))| FastaRecord::new(format!("{id}{i}"), seq))
            .collect();
        let bytes = fasta::format(&recs);
        let back = fasta::parse(&bytes).unwrap();
        prop_assert_eq!(back, recs);
    }

    /// Reverse complement is an involution on DNA.
    #[test]
    fn revcomp_involution(seq in prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..200)) {
        let rc = fasta::reverse_complement(&seq);
        prop_assert_eq!(fasta::reverse_complement(&rc), seq);
    }

    /// Every read ends up in exactly one contig or the singleton list.
    #[test]
    fn assembly_conserves_reads(seed in 0u64..500) {
        use ppc::bio::simulate::{random_genome, shotgun_reads, ShotgunParams};
        let genome = random_genome(600, seed);
        let reads = shotgun_reads(
            &genome,
            &ShotgunParams { n_reads: 20, read_len_mean: 120.0, read_len_sd: 15.0, ..Default::default() },
            seed + 1,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        let mut seen: Vec<&str> = asm.singletons.iter().map(String::as_str).collect();
        for c in &asm.contigs {
            prop_assert!(c.n_reads() >= 2, "contigs have at least two reads");
            seen.extend(c.read_ids.iter().map(String::as_str));
        }
        seen.sort_unstable();
        let mut expect: Vec<&str> = reads.iter().map(|r| r.id.as_str()).collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// Money arithmetic is exact: scaling by n equals summing n copies.
    #[test]
    fn money_scaling_exact(cents in 1i64..100_000, n in 1i64..500) {
        let unit = Usd::cents(cents);
        let summed: Usd = std::iter::repeat_n(unit, n as usize).sum();
        prop_assert_eq!(summed, unit * n);
        prop_assert_eq!(summed - unit * (n - 1), unit);
    }

    /// Partitioners conserve items and respect the partition count.
    #[test]
    fn partitioners_conserve(items in prop::collection::vec(any::<u32>(), 0..200), n in 1usize..16) {
        for parts in [partition_round_robin(items.clone(), n), partition_contiguous(items.clone(), n)] {
            prop_assert_eq!(parts.len(), n);
            let mut flat: Vec<u32> = parts.into_iter().flatten().collect();
            let mut expect = items.clone();
            flat.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(flat, expect);
        }
        // Round-robin balance: sizes differ by at most one.
        let sizes: Vec<usize> = partition_round_robin(items.clone(), n).iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// DVec select/where agree with the sequential equivalents.
    #[test]
    fn dvec_matches_vec(items in prop::collection::vec(-1000i64..1000, 0..300), n in 1usize..8) {
        let d = DVec::distribute(items.clone(), n).select(|x| x * 3).where_(|x| x % 2 == 0);
        let mut got = d.collect();
        got.sort_unstable();
        let mut expect: Vec<i64> = items.iter().map(|x| x * 3).filter(|x| x % 2 == 0).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Queue conservation: after arbitrary interleavings of send/receive/
    /// delete, every sent message was either deleted exactly once or is
    /// still present (visible or in flight) — none vanish, none duplicate
    /// into the delete set.
    #[test]
    fn queue_conserves_messages(ops in prop::collection::vec(0u8..3, 1..120)) {
        let q = Queue::new("prop", QueueConfig::default());
        let mut sent = 0u64;
        let mut deleted = std::collections::HashSet::new();
        let mut in_hand = Vec::new();
        for op in ops {
            match op {
                0 => {
                    q.send(format!("m{sent}")).unwrap();
                    sent += 1;
                }
                1 => {
                    if let Some(m) = q.receive().unwrap() {
                        in_hand.push(m);
                    }
                }
                _ => {
                    if let Some(m) = in_hand.pop() {
                        // Receipt may be stale only if visibility lapsed; with
                        // the default 30 s timeout it cannot in-test.
                        q.delete(m.receipt).unwrap();
                        prop_assert!(deleted.insert(m.id), "double delete of {:?}", m.id);
                    }
                }
            }
        }
        let remaining = q.approximate_len() + q.approximate_in_flight();
        prop_assert_eq!(deleted.len() + remaining, sent as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Six-frame translation invariants: always six frames for DNA of
    /// length >= 5, frame lengths = floor((len - offset)/3), and the
    /// reverse frames translate the reverse complement.
    #[test]
    fn six_frames_invariants(seq in prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 5..120)) {
        use ppc::bio::codon::{six_frames, translate_frame};
        use ppc::bio::fasta::reverse_complement;
        let frames = six_frames(&seq);
        prop_assert_eq!(frames.len(), 6);
        let rc = reverse_complement(&seq);
        for f in &frames {
            let offset = (f.frame.unsigned_abs() - 1) as usize;
            prop_assert_eq!(f.protein.len(), (seq.len() - offset) / 3, "frame {}", f.frame);
            let expect = if f.frame > 0 { translate_frame(&seq, offset) } else { translate_frame(&rc, offset) };
            prop_assert_eq!(&f.protein, &expect, "frame {}", f.frame);
        }
    }

    /// Timeline utilization stays in [0, 1] for non-overlapping per-worker
    /// intervals (the only kind the runtimes produce), and busy time is
    /// conserved.
    #[test]
    fn timeline_utilization_bounded(intervals in prop::collection::vec((0usize..4, 0.0f64..20.0, 0.01f64..50.0), 1..40)) {
        use ppc::core::trace::Timeline;
        let mut t = Timeline::new();
        let mut cursor = [0.0f64; 4];
        let mut total_busy = 0.0;
        for (task, (w, gap, dur)) in intervals.iter().enumerate() {
            let start = cursor[*w] + gap;
            t.push(*w, task as u64, start, start + dur);
            cursor[*w] = start + dur;
            total_busy += dur;
        }
        let n = t.n_workers().max(1);
        let u = t.utilization(n);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        let busy_sum: f64 = (0..n).map(|w| t.worker_busy_s(w)).sum();
        prop_assert!((busy_sum - total_busy).abs() < 1e-6);
    }
}

/// GTM responsibilities stay a probability distribution for random inputs.
#[test]
fn gtm_projection_bounded_for_random_data() {
    use ppc::gtm::data::{fingerprints, FingerprintParams};
    use ppc::gtm::train::{train, TrainConfig};
    for seed in [1u64, 2, 3] {
        let (data, _) = fingerprints(
            &FingerprintParams {
                n_points: 60,
                dim: 16,
                n_clusters: 2,
                flip_noise: 0.1,
            },
            seed,
        );
        let model = train(
            &data,
            &TrainConfig {
                grid_side: 4,
                rbf_side: 2,
                iterations: 4,
                lambda: 1e-2,
            },
        )
        .unwrap();
        let proj = model.project(&data);
        for i in 0..proj.rows() {
            assert!(proj[(i, 0)].abs() <= 1.0 + 1e-9);
            assert!(proj[(i, 1)].abs() <= 1.0 + 1e-9);
        }
    }
}
