//! Cross-framework chaos conformance suite.
//!
//! Every execution paradigm — Classic Cloud, MapReduce, Dryad — is run
//! under the *same* hostile [`FaultSchedule`] (timed worker kills, a
//! mid-execution kill, a torn upload, a gray-degraded worker, a storage
//! brownout window, and i.i.d. death dice) and must keep the paper's
//! correctness contract:
//!
//! 1. **Exact output set** — every task's output present, with the exact
//!    expected bytes (torn half-uploads must have been overwritten).
//! 2. **Bounded re-execution** — recovery costs extra attempts, never
//!    unbounded ones.
//! 3. **Determinism (sims)** — the same schedule replays to bit-identical
//!    results on the discrete-event engines.
//! 4. **Billing consistency** — chaos never corrupts the ledgers: queue
//!    requests are metered, fleet bills cover every launched instance.
//!
//! The schedule seed comes from `PPC_CHAOS_SEED` (CI sweeps several), so
//! the invariants must hold for *any* seed, not a lucky one.

use ppc::chaos::FaultSchedule;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::classic::{simulate as classic_simulate, SimConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc::core::exec::{Executor, FnExecutor};
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::dryad::{run as dryad_run, DryadConfig};
use ppc::dryad::{simulate as dryad_simulate, DryadSimConfig};
use ppc::exec::RunContext;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
use ppc::mapreduce::{simulate as hadoop_simulate, HadoopSimConfig};
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const N_TASKS: u64 = 40;

/// Schedule seed: `PPC_CHAOS_SEED` if set (the CI matrix sweeps a few),
/// else a fixed default.
fn chaos_seed() -> u64 {
    std::env::var("PPC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

fn hostile() -> Arc<FaultSchedule> {
    Arc::new(FaultSchedule::hostile(chaos_seed()))
}

fn payload(i: u64) -> Vec<u8> {
    format!("payload-{i}").into_bytes()
}

/// The logical result every engine must produce: key → reversed payload.
fn expected_outputs() -> BTreeMap<String, Vec<u8>> {
    (0..N_TASKS)
        .map(|i| {
            let mut v = payload(i);
            v.reverse();
            (format!("f{i}.out"), v)
        })
        .collect()
}

/// Reverse executor with a small sleep so the schedule's timed events
/// land while work is still in flight.
fn reverse_executor() -> Arc<dyn Executor> {
    FnExecutor::new("rev", |_s, input: &[u8]| {
        std::thread::sleep(Duration::from_millis(2));
        let mut v = input.to_vec();
        v.reverse();
        Ok(v)
    })
}

#[test]
fn classic_native_conforms_under_hostile_schedule() {
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 2, 2); // workers 0..=3
    let tasks: Vec<TaskSpec> = (0..N_TASKS)
        .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
        .collect();
    let job = JobSpec::new("conform", tasks)
        .with_visibility_timeout(Duration::from_millis(30))
        .with_max_deliveries(20);
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..N_TASKS {
        storage
            .put(&job.input_bucket, &format!("f{i}"), payload(i))
            .unwrap();
    }
    let config = ClassicConfig {
        schedule: Some(hostile()),
        ..ClassicConfig::default()
    };
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        reverse_executor(),
        &config,
    )
    .unwrap();

    // Exact output set, idempotent overwrites included: a torn half-object
    // must have been replaced by the completed re-execution.
    assert!(report.is_complete(), "failed: {:?}", report.failed);
    assert_eq!(report.summary.tasks, N_TASKS as usize);
    for (key, expect) in expected_outputs() {
        let got = storage
            .get_with_retry(&job.output_bucket, &key, 64)
            .unwrap();
        assert_eq!(*got, expect, "output {key}");
    }
    // Bounded re-execution: chaos costs attempts, not runaway loops.
    assert!(
        report.total_attempts <= 2 * N_TASKS as usize,
        "re-execution unbounded: {} executions for {N_TASKS} tasks",
        report.total_attempts
    );
    // Billing consistency: the queue ledger metered the run.
    assert!(report.queue_requests > 0);
}

#[test]
fn mapreduce_native_conforms_under_hostile_schedule() {
    let fs = MiniHdfs::new(3, 1 << 20, 2, 77); // 3 nodes x 2 slots = workers 0..=5
    let mut paths = Vec::new();
    for i in 0..N_TASKS {
        let p = format!("/in/f{i}");
        fs.create(&p, &payload(i), None).unwrap();
        paths.push(p);
    }
    let mut job = MapReduceJob::map_only("conform", paths, "/out");
    job.max_attempts = 8; // headroom for dice-chained attempt failures
    let mapper = ExecutableMapper::new("rev", reverse_executor());
    let config = HadoopConfig {
        schedule: Some(hostile()),
        ..HadoopConfig::default()
    };
    let report = hadoop_run(&RunContext::local(), &fs, &job, &mapper, None, &config).unwrap();

    assert!(report.is_complete(), "failed: {:?}", report.failed);
    assert_eq!(report.summary.tasks, N_TASKS as usize);
    for (key, expect) in expected_outputs() {
        let got = fs.read(&format!("/out/{key}")).unwrap();
        assert_eq!(got, expect, "output {key}");
    }
    assert!(
        report.total_attempts <= N_TASKS as usize * job.max_attempts as usize,
        "attempt budget exceeded: {}",
        report.total_attempts
    );
}

#[test]
fn dryad_native_conforms_under_hostile_schedule() {
    // 2 nodes x 2 slots = workers 0..=3; the hostile schedule kills slot 0
    // and slot 3, leaving one survivor per node — static partitioning
    // means recovery must happen within each node.
    let cluster = Cluster::provision(BARE_CAP3, 2, 2);
    let inputs: Vec<(TaskSpec, Vec<u8>)> = (0..N_TASKS)
        .map(|i| {
            (
                TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                payload(i),
            )
        })
        .collect();
    let (report, outputs) = dryad_run(
        &RunContext::new(&cluster).with_schedule(hostile()),
        inputs,
        reverse_executor(),
        &DryadConfig::default(),
    )
    .unwrap();

    assert_eq!(report.vertex_failures, 0);
    assert_eq!(outputs.len(), N_TASKS as usize);
    let got: BTreeMap<String, Vec<u8>> = outputs.into_iter().collect();
    assert_eq!(got, expected_outputs(), "exact output set");
    assert!(
        report.vertex_retries <= N_TASKS as usize,
        "vertex re-runs unbounded: {}",
        report.vertex_retries
    );
}

/// All three discrete-event simulators replay the same hostile schedule to
/// bit-identical reports — chaos is part of the deterministic model, not a
/// source of noise.
#[test]
fn simulators_replay_hostile_schedule_deterministically() {
    let schedule = hostile();
    let mk_tasks = |n: u64| -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                let mut p = ResourceProfile::cpu_bound(10.0);
                p.input_bytes = 200 << 10;
                p.output_bytes = 100 << 10;
                TaskSpec::new(i, "cap3", format!("f{i}"), p)
            })
            .collect()
    };
    let tasks = mk_tasks(64);

    // Classic Cloud sim.
    let cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let cfg = SimConfig::ec2().with_failures(0.0, 60.0);
    let a = classic_simulate(
        &RunContext::new(&cluster).with_schedule(schedule.clone()),
        &tasks,
        &cfg,
    );
    let b = classic_simulate(
        &RunContext::new(&cluster).with_schedule(schedule.clone()),
        &tasks,
        &cfg,
    );
    assert!(a.is_complete());
    assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
    assert_eq!(a.total_attempts, b.total_attempts);

    // MapReduce sim.
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let cfg = HadoopSimConfig::default();
    let a = hadoop_simulate(
        &RunContext::new(&cluster).with_schedule(schedule.clone()),
        &tasks,
        &cfg,
    );
    let b = hadoop_simulate(
        &RunContext::new(&cluster).with_schedule(schedule.clone()),
        &tasks,
        &cfg,
    );
    assert!(a.is_complete(), "failed: {:?}", a.failed);
    assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
    assert_eq!(a.total_attempts, b.total_attempts);

    // Dryad sim.
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let cfg = DryadSimConfig::default();
    let a = dryad_simulate(
        &RunContext::new(&cluster).with_schedule(schedule.clone()),
        &tasks,
        &cfg,
    );
    let b = dryad_simulate(
        &RunContext::new(&cluster).with_schedule(schedule),
        &tasks,
        &cfg,
    );
    assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
    assert_eq!(a.vertex_retries, b.vertex_retries);
}
