//! The paper suite: executable form of EXPERIMENTS.md's headline claims.
//!
//! Each assertion here is a sentence from the paper's evaluation; if a
//! model change breaks one of these, EXPERIMENTS.md is out of date and the
//! reproduction claim needs re-examination. (Finer-grained shape tests live
//! in `ppc-bench`'s own suite; this is the cross-crate regression net.)

use ppc_core::Usd;

/// Table 4: "Compute Cost 10.88$ (0.68$ X 16 HCXL) / 15.36$ (0.12$ X 128
/// Azure Small)" — ours match exactly because the 4096-file job fits inside
/// one billed hour on both fleets.
#[test]
fn table4_compute_costs_exact() {
    let n = ppc_bench::table4_numbers();
    assert_eq!(n.ec2_compute, Usd::cents(1088));
    assert_eq!(n.azure_compute, Usd::cents(1536));
    assert!(
        n.owned_at_80 < n.ec2_compute,
        "owned cluster wins at 80% utilization"
    );
    assert!(
        n.owned_at_60 > n.owned_at_80,
        "cost rises as utilization drops"
    );
}

/// §4.1/§6.1: the fastest EC2 type (HM4XL) is never the most
/// cost-effective one (HCXL) — for all three applications.
#[test]
fn hm4xl_fastest_hcxl_cheapest_for_every_app() {
    for rows in [
        ppc_bench::cap3_instance_rows(),
        ppc_bench::blast_instance_rows(),
        ppc_bench::gtm_instance_rows(),
    ] {
        let fastest = rows
            .iter()
            .min_by(|a, b| a.makespan_seconds.total_cmp(&b.makespan_seconds))
            .expect("rows");
        let cheapest = rows
            .iter()
            .min_by_key(|r| r.cost.compute_cost)
            .expect("rows");
        assert!(
            fastest.label.starts_with("HM4XL"),
            "fastest {}",
            fastest.label
        );
        assert!(
            cheapest.label.starts_with("HCXL"),
            "cheapest {}",
            cheapest.label
        );
    }
}

/// §4.2: "all four implementations exhibit comparable parallel efficiency
/// (within 20%) with low parallelization overheads" (Cap3).
#[test]
fn cap3_four_platforms_within_twenty_percent() {
    let fig = ppc_bench::fig05();
    for x in fig.x_values() {
        let effs: Vec<f64> = fig
            .series
            .iter()
            .map(|s| s.value_at(&x).expect("point"))
            .collect();
        let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = effs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min <= 0.20, "at {x} files: spread {min:.3}..{max:.3}");
        assert!(min > 0.75, "at {x} files: min efficiency {min:.3}");
    }
}

/// §6.1: "memory (size and bandwidth) is a bottleneck for the GTM
/// Interpolation application" — HCXL (least bandwidth per core) is the
/// slowest 16-core EC2 configuration, despite having the fastest ECU count.
#[test]
fn gtm_is_bandwidth_bound_on_hcxl() {
    let rows = ppc_bench::gtm_instance_rows();
    let slowest = rows
        .iter()
        .max_by(|a, b| a.makespan_seconds.total_cmp(&b.makespan_seconds))
        .expect("rows");
    assert!(
        slowest.label.starts_with("HCXL"),
        "slowest {}",
        slowest.label
    );
}

/// §6.2: "the DryadLINQ GTM Interpolation efficiency is lower than the
/// others" and "Azure small instances achieved the overall best efficiency".
#[test]
fn gtm_efficiency_ordering() {
    let series = ppc_bench::gtm_scalability();
    let at_264 = |label: &str| -> f64 {
        series
            .iter()
            .find(|(l, _)| l == label)
            .and_then(|(_, pts)| pts.iter().find(|(n, _, _)| *n == 264))
            .map(|(_, eff, _)| *eff)
            .unwrap_or_else(|| panic!("series {label}"))
    };
    let dryad = at_264("DryadLINQ");
    for other in [
        "EC2 Large",
        "EC2 HCXL",
        "EC2 HM4XL",
        "Azure Small",
        "Hadoop",
    ] {
        if other != "EC2 HCXL" {
            assert!(
                dryad < at_264(other),
                "DryadLINQ {dryad} vs {other} {}",
                at_264(other)
            );
        }
    }
    assert!(
        at_264("Azure Small") >= at_264("EC2 HCXL"),
        "Azure Small among the best"
    );
}

/// §5.1 (Figure 9): Azure Large/XL beat Small for BLAST because the
/// database fits in memory; processes slightly beat threads.
#[test]
fn blast_azure_memory_shapes() {
    let fig = ppc_bench::fig09();
    let best = |label: &str| -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .expect("series")
            .points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    };
    assert!(best("azure-xlarge") < best("azure-large"));
    assert!(best("azure-large") < best("azure-medium"));
    assert!(best("azure-medium") < best("azure-small"));
    // Processes vs threads on the XL instance: 8x1 beats 1x8.
    let xl = fig
        .series
        .iter()
        .find(|s| s.label == "azure-xlarge")
        .expect("series");
    assert!(xl.value_at("8x1").expect("8x1") < xl.value_at("1x8").expect("1x8"));
}
