//! Conformance and property suite for the `ppc-serve` job-service front
//! door, swept by the CI chaos-seed matrix (`PPC_CHAOS_SEED` ×
//! `PPC_DES_QUEUE`).
//!
//! The contract under test, over randomized service configurations:
//!
//! 1. **Admission control** — no tenant is ever observed past its quota
//!    (`peak_queued <= max_queued`, `peak_running <= max_running`), and
//!    backpressure never *drops* an admitted job: every submission ends
//!    in exactly one terminal state, and everything the front door let
//!    in reaches `Done`/`Failed` with a fully-stamped lifecycle.
//! 2. **Determinism** — the same submission trace replays to identical
//!    `JobStatus` histories, billing rollups, and report JSON on every
//!    event-queue backend and on repeat runs.
//! 3. **Billing exactness** — per-tenant rollups sum to the fleet bill
//!    micro-dollar for micro-dollar, fixed and elastic fleets alike.
//! 4. **Bounded overload** — under ~2× offered load the bounded buffers
//!    shed, and p99 latency stays under the structural queue-depth bound.

use ppc::autoscale::AutoscaleConfig;
use ppc::compute::instance::EC2_HCXL;
use ppc::core::money::Usd;
use ppc::core::rng::Pcg32;
use ppc::des::QueueKind;
use ppc::exec::RunContext;
use ppc::serve::{
    simulate_serve, JobStatus, Priority, ServeFleet, ServeRun, ServeSimConfig, TenantLoad,
    TenantQuota, TenantSpec,
};

/// Sweep seed: `PPC_CHAOS_SEED` if set (the CI matrix sweeps a few),
/// else a fixed default.
fn chaos_seed() -> u64 {
    std::env::var("PPC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

/// One randomized service configuration: 1–4 tenants with independent
/// weights, quotas, client populations, job shapes, and hints, over a
/// fixed or elastic fleet. Small enough that a sweep of them stays
/// well under a second, adversarial enough to hit both admission paths.
fn random_cfg(rng: &mut Pcg32) -> ServeSimConfig {
    let n_tenants = 1 + rng.next_below(4) as usize;
    let tenants = (0..n_tenants)
        .map(|i| {
            let quota = TenantQuota {
                max_queued: 2 + rng.next_below(24) as usize,
                max_running: 1 + rng.next_below(12) as usize,
            };
            let spec =
                TenantSpec::new(format!("tenant-{i}"), 1 + rng.next_below(8)).with_quota(quota);
            let mut load = TenantLoad::new(spec, 1 + rng.next_below(40), 2 + rng.next_below(12));
            load.think_s = rng.uniform(0.5, 20.0);
            load.job_tasks = 1 + rng.next_below(16);
            load.task_s = rng.uniform(0.5, 8.0);
            load.jitter_sigma = rng.uniform(0.0, 0.5);
            load.retry_backoff_s = rng.uniform(2.0, 20.0);
            if rng.chance(0.25) {
                load.priority = Priority::Interactive;
            }
            if rng.chance(0.3) {
                load.deadline_hint_s = Some(rng.uniform(30.0, 300.0));
            }
            load
        })
        .collect();
    let fleet = if rng.chance(0.5) {
        ServeFleet::Fixed {
            instances: 1 + rng.next_below(12),
        }
    } else {
        let mut auto = AutoscaleConfig::target_tracking(
            1 + rng.next_below(3),
            4 + rng.next_below(12),
            rng.uniform(1.0, 4.0),
        );
        auto.interval_s = 5.0;
        auto.warmup_s = rng.uniform(0.0, 20.0);
        auto.scale_up_cooldown_s = 10.0;
        auto.scale_down_cooldown_s = 20.0;
        auto.billing_hour_s = 900.0;
        ServeFleet::Elastic(auto)
    };
    let mut cfg = ServeSimConfig::new(EC2_HCXL, fleet, tenants);
    cfg.seed = rng.next_u64();
    cfg.billing_hour_s = 900.0;
    cfg
}

fn check_lifecycles(cfg: &ServeSimConfig, run: &ServeRun, label: &str) {
    assert_eq!(run.records.len() as u64, cfg.submissions(), "{label}");
    assert_eq!(run.report.submitted, cfg.submissions(), "{label}");
    assert_eq!(
        run.report.submitted,
        run.report.rejected + run.report.completed + run.report.failed,
        "{label}: submissions leaked out of the terminal-state partition"
    );
    for rec in &run.records {
        assert!(
            rec.status.is_terminal(),
            "{label}: job {} left non-terminal ({:?})",
            rec.id.0,
            rec.status
        );
        if rec.status == JobStatus::Rejected {
            // Shed at the front door: never admitted, never ran.
            assert!(
                rec.admitted_s.is_none() && rec.started_s.is_none(),
                "{label}"
            );
        } else {
            // Admitted: backpressure must never have dropped it — the
            // full lifecycle is stamped and monotone.
            let (a, s, f) = (
                rec.admitted_s
                    .unwrap_or_else(|| panic!("{label}: admitted_s missing")),
                rec.started_s
                    .unwrap_or_else(|| panic!("{label}: started_s missing")),
                rec.finished_s
                    .unwrap_or_else(|| panic!("{label}: finished_s missing")),
            );
            assert!(
                rec.submitted_s <= a && a <= s && s <= f,
                "{label}: job {} lifecycle not monotone",
                rec.id.0
            );
        }
    }
}

/// Admission properties over a sweep of randomized configurations: no
/// tenant past its quota, no admitted job dropped, every submission
/// accounted for exactly once.
#[test]
fn admission_quotas_hold_on_randomized_configs() {
    let mut rng = Pcg32::new(chaos_seed() ^ 0x5E21);
    for case in 0..10 {
        let cfg = random_cfg(&mut rng);
        let run = simulate_serve(&RunContext::local(), &cfg);
        let label = format!("case {case}");
        check_lifecycles(&cfg, &run, &label);
        for (load, t) in cfg.tenants.iter().zip(&run.report.tenants) {
            let quota = &load.spec.quota;
            assert!(
                t.peak_queued <= quota.max_queued,
                "{label} {}: peak_queued {} > quota {}",
                t.tenant,
                t.peak_queued,
                quota.max_queued
            );
            assert!(
                t.peak_running <= quota.max_running,
                "{label} {}: peak_running {} > quota {}",
                t.tenant,
                t.peak_running,
                quota.max_running
            );
            assert_eq!(
                t.submitted,
                t.rejected + t.completed + t.failed,
                "{label} {}: per-tenant partition leaked",
                t.tenant
            );
        }
    }
}

/// The seed-swept determinism contract: one submission trace replays to
/// identical `JobStatus` histories (every timestamp of every record),
/// identical billing rollups, and byte-identical report JSON — across
/// repeat runs and across all three event-queue backends.
#[test]
fn replay_histories_and_billing_are_bit_identical() {
    let mut rng = Pcg32::new(chaos_seed() ^ 0xB17);
    for _ in 0..3 {
        let cfg = random_cfg(&mut rng);
        let ctx = RunContext::local().with_seed(chaos_seed());
        let base = simulate_serve(&ctx, &cfg);
        for kind in [
            QueueKind::BinaryHeap,
            QueueKind::TimingWheel,
            QueueKind::Calendar,
        ] {
            let other = simulate_serve(&ctx.clone().with_event_queue(kind), &cfg);
            assert_eq!(base.records, other.records, "{kind:?}");
            assert_eq!(base.report, other.report, "{kind:?}");
            assert_eq!(
                base.report.to_json().to_string(),
                other.report.to_json().to_string(),
                "{kind:?}"
            );
        }
        // Histories — not just terminal states — reconstruct identically.
        let replay = simulate_serve(&ctx, &cfg);
        for (a, b) in base.records.iter().zip(&replay.records) {
            assert_eq!(a.history(), b.history());
        }
    }
}

/// Billing exactness as a property: whatever the configuration, the
/// per-tenant bills sum to the fleet bill micro-dollar for micro-dollar.
#[test]
fn tenant_bills_sum_exactly_to_fleet_bill() {
    let mut rng = Pcg32::new(chaos_seed() ^ 0xB111);
    for case in 0..8 {
        let cfg = random_cfg(&mut rng);
        let run = simulate_serve(&RunContext::local(), &cfg);
        let compute: Usd = run.report.tenants.iter().map(|t| t.cost.compute_cost).sum();
        let amortized: Usd = run
            .report
            .tenants
            .iter()
            .map(|t| t.cost.amortized_cost)
            .sum();
        assert_eq!(compute, run.report.fleet.cost.compute_cost, "case {case}");
        assert_eq!(
            amortized, run.report.fleet.cost.amortized_cost,
            "case {case}"
        );
    }
}

/// Overload discipline: with ~2× fleet capacity offered, the bounded
/// buffers shed submissions and p99 job latency stays under the
/// structural bound set by queue depth and weighted drain rate — the
/// defining property of admission control over an open queue.
#[test]
fn overload_p99_is_bounded_by_queue_depth() {
    const INSTANCES: u32 = 8;
    const MAX_QUEUED: usize = 16;
    // 8 tasks × 4 s over 8 cores + 1 s dispatch overhead.
    const SERVICE_S: f64 = 5.0;
    let quota = TenantQuota {
        max_queued: MAX_QUEUED,
        max_running: INSTANCES as usize,
    };
    let weights = [2u32, 1];
    let tenants = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let spec = TenantSpec::new(format!("tenant-{i}"), w).with_quota(quota);
            let mut load = TenantLoad::new(spec, 48, 20);
            load.think_s = SERVICE_S; // offered ≈ 2× fleet capacity
            load
        })
        .collect();
    let mut cfg = ServeSimConfig::new(
        EC2_HCXL,
        ServeFleet::Fixed {
            instances: INSTANCES,
        },
        tenants,
    );
    cfg.seed = chaos_seed();
    let run = simulate_serve(&RunContext::local(), &cfg);
    check_lifecycles(&cfg, &run, "overload");
    assert!(
        run.report.rejected > 0,
        "2x overload must shed through the bounded buffers"
    );
    // Worst tenant drains a full buffer at its weighted share of fleet
    // throughput; allow a generous service-time tail on top.
    let capacity = INSTANCES as f64 / SERVICE_S;
    let total_w: u32 = weights.iter().sum();
    let bound = MAX_QUEUED as f64 * total_w as f64 / capacity + 10.0 * SERVICE_S;
    assert!(
        run.report.latency_p99_s <= bound,
        "overload p99 {:.1}s exceeds queue-depth bound {bound:.1}s",
        run.report.latency_p99_s
    );
    assert!(run.report.fairness_jain > 0.5, "fair share collapsed");
}
