//! Simulator-vs-native fidelity: for a workload whose task durations we
//! control exactly, the discrete-event simulation must predict the native
//! threaded runtime's makespan.

use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::classic::{simulate as classic_simulate, SimConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::EC2_HCXL;
use ppc::core::exec::FnExecutor;
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::exec::RunContext;
use ppc::queue::service::QueueService;
use ppc::storage::latency::LatencyModel;
use ppc::storage::service::StorageService;
use std::time::Duration;

/// Tasks that sleep a fixed 20 ms, with matching simulated profiles.
fn tasks(n: u64, sleep_s: f64) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| {
            // HCXL runs at the reference clock, so cpu_seconds_ref maps 1:1.
            TaskSpec::new(
                i,
                "sleep",
                format!("f{i}"),
                ResourceProfile::cpu_bound(sleep_s),
            )
        })
        .collect()
}

#[test]
fn simulated_makespan_predicts_native() {
    let sleep_s = 0.02;
    let n_tasks = 32u64;
    let cluster = Cluster::provision(EC2_HCXL, 1, 4);

    // --- native ---
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let job = JobSpec::new("fidelity", tasks(n_tasks, sleep_s));
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..n_tasks {
        storage
            .put(&job.input_bucket, &format!("f{i}"), vec![0u8; 16])
            .unwrap();
    }
    let exec = FnExecutor::new("sleep", move |_s, input: &[u8]| {
        std::thread::sleep(Duration::from_secs_f64(sleep_s));
        Ok(input.to_vec())
    });
    let native = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        exec,
        &ClassicConfig::default(),
    )
    .unwrap();

    // --- simulated ---
    let cfg = SimConfig {
        storage_latency: LatencyModel::FREE,
        queue_latency: LatencyModel::FREE,
        jitter_sigma: 0.0,
        ..SimConfig::ec2()
    };
    let simulated = classic_simulate(&RunContext::new(&cluster), &tasks(n_tasks, sleep_s), &cfg);

    // Ideal: 32 tasks / 4 workers x 20 ms = 160 ms.
    let ideal = n_tasks as f64 / 4.0 * sleep_s;
    assert!(
        (simulated.summary.makespan_seconds - ideal).abs() < 1e-6,
        "sim {}",
        simulated.summary.makespan_seconds
    );
    // The native run pays real scheduling noise; it must still land within
    // 60% of the prediction (generous for CI machines under load).
    let ratio = native.summary.makespan_seconds / simulated.summary.makespan_seconds;
    assert!(
        (0.9..1.6).contains(&ratio),
        "native {} vs simulated {} (ratio {ratio})",
        native.summary.makespan_seconds,
        simulated.summary.makespan_seconds
    );
    assert_eq!(native.summary.tasks, simulated.summary.tasks);
}

/// The Hadoop simulator must predict the native MapReduce runtime's
/// makespan for a controlled-duration workload, just like the Classic one.
#[test]
#[allow(deprecated)] // pins the legacy `speculative` knob's fidelity
fn hadoop_sim_predicts_native_makespan() {
    use ppc::compute::instance::BARE_CAP3;
    use ppc::core::exec::FnExecutor;
    use ppc::hdfs::fs::MiniHdfs;
    use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
    use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
    use ppc::mapreduce::{simulate as hadoop_sim, HadoopSimConfig};
    use ppc::storage::latency::LatencyModel;

    let sleep_s = 0.02;
    let n_tasks = 24;

    // --- native: 2 nodes x 3 slots ---
    let fs = MiniHdfs::new(2, 1 << 20, 2, 777);
    let mut paths = Vec::new();
    for i in 0..n_tasks {
        let p = format!("/in/f{i}");
        fs.create(&p, &[0u8; 64], None).unwrap();
        paths.push(p);
    }
    let job = MapReduceJob::map_only("fidelity", paths, "/out").with_speculative(false);
    let exec = FnExecutor::new("sleep", move |_s, i: &[u8]| {
        std::thread::sleep(Duration::from_secs_f64(sleep_s));
        Ok(i.to_vec())
    });
    let mapper = ExecutableMapper::new("sleep", exec);
    let config = HadoopConfig {
        slots_per_node: 3,
        ..HadoopConfig::default()
    };
    let native = hadoop_run(&RunContext::local(), &fs, &job, &mapper, None, &config).unwrap();

    // --- simulated twin (no dispatch overhead, free IO, BARE_CAP3 runs at
    // the 2.5 GHz reference clock so cpu_seconds_ref maps 1:1) ---
    let cluster = Cluster::provision(BARE_CAP3, 2, 3);
    let sim_tasks = tasks(n_tasks as u64, sleep_s);
    let cfg = HadoopSimConfig {
        dispatch_overhead_s: 0.0,
        local_read: LatencyModel::FREE,
        remote_read: LatencyModel::FREE,
        jitter_sigma: 0.0,
        speculative: false,
        ..HadoopSimConfig::default()
    };
    let simulated = hadoop_sim(&RunContext::new(&cluster), &sim_tasks, &cfg);

    // Ideal: 24 tasks / 6 slots x 20 ms = 80 ms.
    let ideal = n_tasks as f64 / 6.0 * sleep_s;
    assert!(
        (simulated.summary.makespan_seconds - ideal).abs() < 1e-6,
        "sim {}",
        simulated.summary.makespan_seconds
    );
    let ratio = native.summary.makespan_seconds / simulated.summary.makespan_seconds;
    assert!(
        (0.9..1.6).contains(&ratio),
        "native {} vs simulated {} (ratio {ratio})",
        native.summary.makespan_seconds,
        simulated.summary.makespan_seconds
    );
    assert_eq!(native.summary.tasks, simulated.summary.tasks);
}

#[test]
fn sim_and_native_agree_on_queue_accounting() {
    // Sends are exact in both: one per task. Receives differ (polling), but
    // both must report at least 3 requests per task (send+receive+delete).
    let n_tasks = 16u64;
    let cluster = Cluster::provision(EC2_HCXL, 1, 2);

    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let job = JobSpec::new("accounting", tasks(n_tasks, 0.001));
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..n_tasks {
        storage
            .put(&job.input_bucket, &format!("f{i}"), vec![0u8; 4])
            .unwrap();
    }
    let exec = FnExecutor::new("quick", |_s, i: &[u8]| Ok(i.to_vec()));
    let native = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        exec,
        &ClassicConfig::default(),
    )
    .unwrap();
    let simulated = classic_simulate(
        &RunContext::new(&cluster),
        &tasks(n_tasks, 0.001),
        &SimConfig::ec2(),
    );

    for (label, r) in [
        ("native", native.queue_requests),
        ("sim", simulated.queue_requests),
    ] {
        assert!(
            r >= 3 * n_tasks,
            "{label}: {r} requests for {n_tasks} tasks"
        );
    }
    assert_eq!(native.summary.tasks, simulated.summary.tasks);
    assert_eq!(native.redundant_executions(), 0);
    assert_eq!(simulated.redundant_executions(), 0);
}

/// Oracle-vs-wheel bit-identity: each paradigm's simulator must produce
/// the *same full report JSON* on the binary-heap oracle and the default
/// timing-wheel backend (and the calendar queue, while we're at it),
/// under the hostile chaos schedule CI sweeps via `PPC_CHAOS_SEED`. The
/// makespan fidelity pins above guarantee the sim matches reality; this
/// pin guarantees the fast event core doesn't move the sim.
#[test]
fn sims_bit_identical_across_event_queue_backends() {
    use ppc::chaos::FaultSchedule;
    use ppc::compute::instance::BARE_CAP3;
    use ppc::des::QueueKind;
    use std::sync::Arc;

    let seed: u64 = std::env::var("PPC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242);
    let chaos_tasks: Vec<TaskSpec> = (0..64)
        .map(|i| {
            let mut p = ResourceProfile::cpu_bound(10.0);
            p.input_bytes = 200 << 10;
            p.output_bytes = 100 << 10;
            TaskSpec::new(i, "cap3", format!("f{i}"), p)
        })
        .collect();
    let ctx = |cluster: &Cluster, kind: QueueKind| {
        RunContext::new(cluster)
            .with_schedule(Arc::new(FaultSchedule::hostile(seed)))
            .with_event_queue(kind)
    };

    let cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let cfg = SimConfig::ec2().with_failures(0.0, 60.0);
    let oracle = classic_simulate(&ctx(&cluster, QueueKind::BinaryHeap), &chaos_tasks, &cfg);
    assert!(oracle.is_complete(), "failed: {:?}", oracle.failed);
    for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
        let got = classic_simulate(&ctx(&cluster, kind), &chaos_tasks, &cfg);
        assert_eq!(
            got.to_json().to_string(),
            oracle.to_json().to_string(),
            "classic sim report diverged on {} (seed {seed})",
            kind.name()
        );
    }

    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let cfg = ppc::mapreduce::HadoopSimConfig::default();
    let oracle =
        ppc::mapreduce::simulate(&ctx(&cluster, QueueKind::BinaryHeap), &chaos_tasks, &cfg);
    assert!(oracle.is_complete(), "failed: {:?}", oracle.failed);
    for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
        let got = ppc::mapreduce::simulate(&ctx(&cluster, kind), &chaos_tasks, &cfg);
        assert_eq!(
            got.to_json().to_string(),
            oracle.to_json().to_string(),
            "mapreduce sim report diverged on {} (seed {seed})",
            kind.name()
        );
    }

    let cfg = ppc::dryad::DryadSimConfig::default();
    let oracle = ppc::dryad::simulate(&ctx(&cluster, QueueKind::BinaryHeap), &chaos_tasks, &cfg);
    for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
        let got = ppc::dryad::simulate(&ctx(&cluster, kind), &chaos_tasks, &cfg);
        assert_eq!(
            got.to_json().to_string(),
            oracle.to_json().to_string(),
            "dryad sim report diverged on {} (seed {seed})",
            kind.name()
        );
    }
}
