//! Sim-vs-native trace parity: for each paradigm, the discrete-event
//! simulator and the native engine describe a run in the *same language*.
//!
//! On a tiny Cap3-shaped workload, both traces of a paradigm must expose
//! the same lifecycle phase set for every winning attempt (with the
//! Hadoop local/remote read distinction normalized — which replica a
//! split lands on is placement luck, not vocabulary) and decompose into
//! the same overhead categories via [`OverheadReport`]. The *values*
//! legitimately differ: the sim runs modeled 2010 hardware, the native
//! engines run on this machine.

use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::classic::{simulate as classic_simulate, SimConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc::compute::model::AppModel;
use ppc::core::exec::{Executor, FnExecutor};
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::dryad::{run as dryad_run, DryadConfig};
use ppc::dryad::{simulate as dryad_simulate, DryadSimConfig};
use ppc::exec::RunContext;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
use ppc::mapreduce::{simulate as hadoop_simulate, HadoopSimConfig};
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use ppc::trace::{OverheadReport, Phase, Recorder, Trace};
use std::collections::BTreeSet;
use std::sync::Arc;

const N_TASKS: u64 = 12;

/// A Cap3-shaped assembly stub: enough bytes and a fixed transform that
/// both native engines can actually execute.
fn cap3_executor() -> Arc<dyn Executor> {
    FnExecutor::new("cap3", |_s, input: &[u8]| {
        let mut v = input.to_vec();
        v.reverse();
        Ok(v)
    })
}

/// The sim side of the same workload: small Cap3 reads, modeled compute.
fn cap3_sim_tasks() -> Vec<TaskSpec> {
    (0..N_TASKS)
        .map(|i| {
            let mut p = ResourceProfile::cpu_bound(5.0);
            p.input_bytes = 64 << 10;
            p.output_bytes = 32 << 10;
            TaskSpec::new(i, "cap3", format!("reads/f{i}.fa"), p)
        })
        .collect()
}

/// Union of lifecycle phases over every completed task's winning attempt,
/// with the read-placement distinction folded away.
fn normalized_phases(trace: &Trace) -> BTreeSet<Phase> {
    trace
        .completed_tasks()
        .iter()
        .flat_map(|&t| trace.terminal_attempt_phases(t))
        .map(|p| {
            if p == Phase::ReadRemote {
                Phase::ReadLocal
            } else {
                p
            }
        })
        .collect()
}

fn assert_parity(native: &Trace, sim: &Trace) {
    let np = normalized_phases(native);
    let sp = normalized_phases(sim);
    assert_eq!(
        np,
        sp,
        "phase vocabulary differs: native {:?} vs sim {:?}",
        native.meta().platform,
        sim.meta().platform
    );
    let no = OverheadReport::from_trace(native);
    let so = OverheadReport::from_trace(sim);
    assert_eq!(no.paradigm, so.paradigm);
    assert_eq!(
        no.category_names(),
        so.category_names(),
        "overhead taxonomy differs between native and sim"
    );
    // Both decompositions carry real work in the compute bucket.
    assert!(so.compute_s > 0.0, "sim compute bucket empty");
}

#[test]
fn classic_native_and_sim_speak_the_same_trace_language() {
    // Native run.
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 2, 2);
    let tasks: Vec<TaskSpec> = (0..N_TASKS)
        .map(|i| {
            TaskSpec::new(
                i,
                "cap3",
                format!("f{i}.fa"),
                ResourceProfile::cpu_bound(0.0),
            )
        })
        .collect();
    let job = JobSpec::new("cap3-parity", tasks);
    storage.create_bucket(&job.input_bucket).unwrap();
    for i in 0..N_TASKS {
        storage
            .put(&job.input_bucket, &format!("f{i}.fa"), vec![b'A'; 512])
            .unwrap();
    }
    let config = ClassicConfig {
        trace: Some(Arc::new(Recorder::new())),
        ..ClassicConfig::default()
    };
    let native = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        cap3_executor(),
        &config,
    )
    .unwrap();
    assert!(native.is_complete());

    // Simulated run of the same shape.
    let cluster = Cluster::provision(EC2_HCXL, 2, 2);
    let mut cfg = SimConfig::ec2().with_app(AppModel::cap3());
    cfg.trace = true;
    let sim = classic_simulate(&RunContext::new(&cluster), &cap3_sim_tasks(), &cfg);
    assert!(sim.is_complete());

    assert_parity(native.trace.as_ref().unwrap(), sim.trace.as_ref().unwrap());
}

#[test]
fn hadoop_native_and_sim_speak_the_same_trace_language() {
    let fs = MiniHdfs::new(2, 1 << 20, 2, 7);
    let mut paths = Vec::new();
    for i in 0..N_TASKS {
        let p = format!("/reads/f{i}.fa");
        fs.create(&p, &vec![b'A'; 512], None).unwrap();
        paths.push(p);
    }
    let job = MapReduceJob::map_only("cap3-parity", paths, "/out");
    let mapper = ExecutableMapper::new("cap3", cap3_executor());
    let config = HadoopConfig {
        trace: Some(Arc::new(Recorder::new())),
        ..HadoopConfig::default()
    };
    let native = hadoop_run(&RunContext::local(), &fs, &job, &mapper, None, &config).unwrap();
    assert!(native.is_complete());

    let cluster = Cluster::provision(BARE_CAP3, 2, 2);
    let cfg = HadoopSimConfig {
        app: AppModel::cap3(),
        trace: true,
        ..HadoopSimConfig::default()
    };
    let sim = hadoop_simulate(&RunContext::new(&cluster), &cap3_sim_tasks(), &cfg);
    assert!(sim.is_complete());

    assert_parity(native.trace.as_ref().unwrap(), sim.trace.as_ref().unwrap());
}

#[test]
fn dryad_native_and_sim_speak_the_same_trace_language() {
    let cluster = Cluster::provision(BARE_CAP3, 2, 2);
    let inputs: Vec<(TaskSpec, Vec<u8>)> = (0..N_TASKS)
        .map(|i| {
            (
                TaskSpec::new(
                    i,
                    "cap3",
                    format!("f{i}.fa"),
                    ResourceProfile::cpu_bound(0.0),
                ),
                vec![b'A'; 512],
            )
        })
        .collect();
    let config = DryadConfig {
        trace: Some(Arc::new(Recorder::new())),
        ..DryadConfig::default()
    };
    let (native, outputs) =
        dryad_run(&RunContext::new(&cluster), inputs, cap3_executor(), &config).unwrap();
    assert_eq!(outputs.len(), N_TASKS as usize);

    let cluster = Cluster::provision(BARE_CAP3, 2, 2);
    let cfg = DryadSimConfig {
        app: AppModel::cap3(),
        trace: true,
        ..DryadSimConfig::default()
    };
    let sim = dryad_simulate(&RunContext::new(&cluster), &cap3_sim_tasks(), &cfg);

    assert_parity(native.trace.as_ref().unwrap(), sim.trace.as_ref().unwrap());
}
