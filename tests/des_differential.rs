//! Differential harness for the pluggable event core.
//!
//! The binary heap is the reference oracle; the timing wheel and the
//! calendar queue must be indistinguishable from it at every layer:
//!
//! 1. **Raw queue traces** — randomized push/pop interleavings drained
//!    through the bare [`EventQueue`] trait produce identical sequences.
//! 2. **Engine traces** — randomized schedule/cancel/reschedule programs
//!    replayed through [`Engine`] fire the same events at the same
//!    virtual times in the same order, with identical counters.
//! 3. **Whole-platform sims** — each paradigm simulator produces a
//!    bit-identical report (full JSON) on every backend, under the same
//!    hostile chaos schedule and hedging policy CI sweeps elsewhere
//!    (`PPC_CHAOS_SEED`), so the backend swap is invisible end to end.

use ppc::chaos::FaultSchedule;
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc::core::rng::Pcg32;
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::des::queue::EventEntry;
use ppc::des::{Engine, EventId, QueueKind, SimTime};
use ppc::exec::RunContext;
use ppc::resilience::{HedgeConfig, ResiliencePolicy};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Schedule seed: `PPC_CHAOS_SEED` if set (the CI matrix sweeps a few),
/// else a fixed default.
fn chaos_seed() -> u64 {
    std::env::var("PPC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242)
}

// ---------------------------------------------------------------------
// Layer 1: raw EventQueue traces.
// ---------------------------------------------------------------------

/// Random interleavings of pushes (at or after the last popped time, per
/// the trait contract) and pops drain identically on every backend.
#[test]
fn raw_queues_agree_on_random_traces() {
    for seed in 0..48u64 {
        let mut rng = Pcg32::new(0xD1FF ^ (seed << 8));
        // Generate one trace: Some(entry) = push, None = pop.
        let mut trace: Vec<Option<EventEntry>> = Vec::new();
        {
            let mut oracle: Vec<EventEntry> = Vec::new(); // sorted model
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..400 {
                if !oracle.is_empty() && rng.next_below(3) == 0 {
                    oracle.sort_unstable();
                    now = oracle.remove(0).at.as_micros();
                    trace.push(None);
                } else {
                    // Mix dense near-term timers with rare far horizons.
                    let delta = match rng.next_below(10) {
                        0 => rng.next_below(1_000_000_000) as u64 * 4096,
                        1..=3 => 0,
                        _ => rng.next_below(5_000) as u64,
                    };
                    let e = EventEntry {
                        at: SimTime::from_micros(now + delta),
                        seq,
                        idx: seq as u32,
                    };
                    seq += 1;
                    oracle.push(e);
                    trace.push(Some(e));
                }
            }
        }
        let replay = |kind: QueueKind| -> Vec<EventEntry> {
            let mut q = kind.boxed();
            let mut popped = Vec::new();
            for op in &trace {
                match op {
                    Some(e) => q.push(*e),
                    None => popped.push(q.pop().expect("model says non-empty")),
                }
            }
            while let Some(e) = q.pop() {
                popped.push(e);
            }
            assert!(q.is_empty());
            popped
        };
        let want = replay(QueueKind::BinaryHeap);
        for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
            assert_eq!(replay(kind), want, "{} vs oracle, seed {seed}", kind.name());
        }
    }
}

// ---------------------------------------------------------------------
// Layer 2: Engine traces with cancellation and rescheduling.
// ---------------------------------------------------------------------

/// One step of a pre-generated engine program. Handle slots index into
/// the replayer's handle table so the *same* program is replayable on
/// every backend.
#[derive(Clone, Copy)]
enum Op {
    Schedule { at_us: u64, token: u32 },
    Cancel { pick: usize },
    Reschedule { pick: usize, at_us: u64 },
    Step,
}

/// What a replay observed: the fire log plus the engine's final counters.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    fired: Vec<(u64, u32)>, // (micros, token)
    final_now_us: u64,
    events_fired: u64,
    events_cancelled: u64,
    pending: usize,
}

fn replay_program(kind: QueueKind, ops: &[Op]) -> Observed {
    let mut engine = Engine::with_queue(kind);
    let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::new(RefCell::new(Vec::new()));
    let mut handles: Vec<EventId> = Vec::new();
    for op in ops {
        match *op {
            Op::Schedule { at_us, token } => {
                let l = log.clone();
                handles.push(engine.schedule_at(SimTime::from_micros(at_us), move |e| {
                    l.borrow_mut().push((e.now().as_micros(), token));
                }));
            }
            Op::Cancel { pick } => {
                if !handles.is_empty() {
                    engine.cancel(handles[pick % handles.len()]);
                }
            }
            Op::Reschedule { pick, at_us } => {
                if !handles.is_empty() {
                    let i = pick % handles.len();
                    if let Some(id) = engine.reschedule_at(handles[i], SimTime::from_micros(at_us))
                    {
                        handles[i] = id;
                    }
                }
            }
            Op::Step => {
                engine.step();
            }
        }
    }
    engine.run();
    let fired = log.borrow().clone();
    Observed {
        fired,
        final_now_us: engine.now().as_micros(),
        events_fired: engine.events_fired(),
        events_cancelled: engine.events_cancelled(),
        pending: engine.pending(),
    }
}

/// Randomized schedule/cancel/reschedule programs observe identical fire
/// logs, virtual clocks, and counters on every backend.
#[test]
fn engines_agree_on_random_programs() {
    for seed in 0..48u64 {
        let mut rng = Pcg32::new(0xE9612E ^ (seed << 4));
        let n_ops = 60 + rng.next_below(240) as usize;
        let mut token = 0u32;
        let ops: Vec<Op> = (0..n_ops)
            .map(|_| match rng.next_below(8) {
                0..=3 => {
                    token += 1;
                    Op::Schedule {
                        // Cluster times so cancels race real schedules and
                        // equal timestamps are common.
                        at_us: rng.next_below(20_000) as u64,
                        token,
                    }
                }
                4 => Op::Cancel {
                    pick: rng.next_below(1 << 16) as usize,
                },
                5 => Op::Reschedule {
                    pick: rng.next_below(1 << 16) as usize,
                    at_us: rng.next_below(40_000) as u64,
                },
                _ => Op::Step,
            })
            .collect();
        let want = replay_program(QueueKind::BinaryHeap, &ops);
        for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
            let got = replay_program(kind, &ops);
            assert_eq!(got, want, "{} vs oracle, seed {seed}", kind.name());
        }
    }
}

// ---------------------------------------------------------------------
// Layer 3: whole-platform simulations, bit-identical reports.
// ---------------------------------------------------------------------

fn sim_tasks(n: u64) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| {
            let mut p = ResourceProfile::cpu_bound(10.0 + (i % 7) as f64);
            p.input_bytes = 200 << 10;
            p.output_bytes = 100 << 10;
            TaskSpec::new(i, "cap3", format!("f{i}"), p)
        })
        .collect()
}

/// A hostile chaos schedule plus hedging, so the sims exercise timer
/// cancellation (hedge timers are cancelled when the primary wins) on
/// top of the usual churn.
fn hostile_ctx(cluster: &Cluster, kind: QueueKind) -> RunContext {
    RunContext::new(cluster)
        .with_schedule(Arc::new(FaultSchedule::hostile(chaos_seed())))
        .with_resilience(ResiliencePolicy::hedged(HedgeConfig::quantile(20.0)))
        .with_event_queue(kind)
}

/// The Classic Cloud simulator's full report is bit-identical across
/// backends under chaos + hedging.
#[test]
fn classic_sim_is_backend_invariant() {
    let tasks = sim_tasks(64);
    let cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let cfg = ppc::classic::SimConfig::ec2().with_failures(0.0, 60.0);
    let oracle =
        ppc::classic::simulate(&hostile_ctx(&cluster, QueueKind::BinaryHeap), &tasks, &cfg)
            .to_json()
            .to_string();
    for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
        let got = ppc::classic::simulate(&hostile_ctx(&cluster, kind), &tasks, &cfg)
            .to_json()
            .to_string();
        assert_eq!(got, oracle, "classic sim diverged on {}", kind.name());
    }
}

/// The elastic (autoscaled) Classic path runs its own engine loop; its
/// report must also be backend-invariant.
#[test]
fn classic_elastic_sim_is_backend_invariant() {
    use ppc::autoscale::{AutoscaleConfig, Policy};
    let tasks = sim_tasks(48);
    let autoscale = AutoscaleConfig {
        policy: Policy::TargetBacklog { per_worker: 12.0 },
        min_workers: 1,
        max_workers: 4,
        interval_s: 10.0,
        scale_up_cooldown_s: 30.0,
        scale_down_cooldown_s: 20.0,
        warmup_s: 0.0,
        billing_aware: false,
        billing_window_s: 60.0,
        billing_hour_s: 3600.0,
    };
    let cfg = ppc::classic::SimConfig::ec2();
    let run = |kind: QueueKind| {
        let ctx = RunContext::elastic(EC2_HCXL, autoscale.clone(), Vec::new())
            .with_schedule(Arc::new(FaultSchedule::hostile(chaos_seed())))
            .with_event_queue(kind);
        ppc::classic::simulate(&ctx, &tasks, &cfg)
            .to_json()
            .to_string()
    };
    let oracle = run(QueueKind::BinaryHeap);
    for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
        assert_eq!(run(kind), oracle, "elastic sim diverged on {}", kind.name());
    }
}

/// The MapReduce simulator's full report is bit-identical across
/// backends under chaos + hedged speculation.
#[test]
fn mapreduce_sim_is_backend_invariant() {
    let tasks = sim_tasks(64);
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let cfg = ppc::mapreduce::HadoopSimConfig::default();
    let oracle =
        ppc::mapreduce::simulate(&hostile_ctx(&cluster, QueueKind::BinaryHeap), &tasks, &cfg)
            .to_json()
            .to_string();
    for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
        let got = ppc::mapreduce::simulate(&hostile_ctx(&cluster, kind), &tasks, &cfg)
            .to_json()
            .to_string();
        assert_eq!(got, oracle, "mapreduce sim diverged on {}", kind.name());
    }
}

/// The Dryad simulator has no event calendar (quantized list scheduler),
/// so backend choice must be a literal no-op on its report.
#[test]
fn dryad_sim_is_backend_invariant() {
    let tasks = sim_tasks(64);
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let cfg = ppc::dryad::DryadSimConfig::default();
    let oracle = ppc::dryad::simulate(&hostile_ctx(&cluster, QueueKind::BinaryHeap), &tasks, &cfg)
        .to_json()
        .to_string();
    for kind in [QueueKind::TimingWheel, QueueKind::Calendar] {
        let got = ppc::dryad::simulate(&hostile_ctx(&cluster, kind), &tasks, &cfg)
            .to_json()
            .to_string();
        assert_eq!(got, oracle, "dryad sim diverged on {}", kind.name());
    }
}
