//! The deprecated entry-point shims are pure sugar: every legacy variant
//! must produce a report bit-identical to the equivalent `RunContext`
//! call, because each shim only builds the context the caller would have
//! built by hand. Simulators are compared as serialized JSON (exact,
//! including float bits); native runs are compared on their deterministic
//! surface (completed set and output bytes), since wall-clock makespans
//! differ between any two threaded runs.
//!
//! The second half pins the other harness contract: the context's seed
//! overrides whatever seed the paradigm config carries, for all six entry
//! points, so one `RunContext` value reproduces a run regardless of the
//! config it is paired with.
#![allow(deprecated)]

use ppc::autoscale::{AutoscaleConfig, Policy};
use ppc::chaos::FaultSchedule;
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc::core::exec::{Executor, FnExecutor};
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::exec::RunContext;
use std::sync::Arc;

fn tasks(n: u64) -> Vec<TaskSpec> {
    (0..n)
        .map(|i| {
            let mut p = ResourceProfile::cpu_bound(20.0 + (i % 7) as f64);
            p.input_bytes = 100 << 10;
            p.output_bytes = 50 << 10;
            TaskSpec::new(i, "cap3", format!("f{i}"), p)
        })
        .collect()
}

fn hostile() -> Arc<FaultSchedule> {
    Arc::new(FaultSchedule::new(13).with_death_probabilities(0.05, 0.02, 0.02))
}

fn autoscale() -> AutoscaleConfig {
    AutoscaleConfig {
        policy: Policy::TargetBacklog { per_worker: 4.0 },
        min_workers: 1,
        max_workers: 4,
        interval_s: 15.0,
        scale_up_cooldown_s: 60.0,
        scale_down_cooldown_s: 120.0,
        warmup_s: 45.0,
        billing_aware: true,
        billing_window_s: 180.0,
        billing_hour_s: 900.0,
    }
}

#[test]
fn classic_sim_shims_match_harness() {
    let cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let tasks = tasks(64);
    let cfg = ppc::classic::SimConfig::ec2();

    let legacy = ppc::classic::sim::simulate(&cluster, &tasks, &cfg);
    let harness = ppc::classic::simulate(&RunContext::new(&cluster), &tasks, &cfg);
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());

    let legacy = ppc::classic::sim::simulate_chaos(&cluster, &tasks, &cfg, hostile());
    let harness = ppc::classic::simulate(
        &RunContext::new(&cluster).with_schedule(hostile()),
        &tasks,
        &cfg,
    );
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());

    let fleets = vec![
        Cluster::provision(EC2_HCXL, 2, 8),
        Cluster::provision(BARE_CAP3, 1, 8),
    ];
    let legacy = ppc::classic::sim::simulate_fleets(&fleets, &tasks, &cfg);
    let harness = ppc::classic::simulate(&RunContext::on_fleets(fleets.clone()), &tasks, &cfg);
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());

    let legacy = ppc::classic::sim::simulate_autoscaled(EC2_HCXL, &tasks, &[], &cfg, &autoscale());
    let harness = ppc::classic::simulate(
        &RunContext::elastic(EC2_HCXL, autoscale(), Vec::new()),
        &tasks,
        &cfg,
    );
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());
}

#[test]
fn hadoop_sim_shims_match_harness() {
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let tasks = tasks(64);
    let cfg = ppc::mapreduce::HadoopSimConfig::default();

    let legacy = ppc::mapreduce::sim::simulate(&cluster, &tasks, &cfg);
    let harness = ppc::mapreduce::simulate(&RunContext::new(&cluster), &tasks, &cfg);
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());

    let legacy = ppc::mapreduce::sim::simulate_chaos(&cluster, &tasks, &cfg, Some(hostile()));
    let harness = ppc::mapreduce::simulate(
        &RunContext::new(&cluster).with_schedule(hostile()),
        &tasks,
        &cfg,
    );
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());
}

#[test]
fn dryad_sim_shims_match_harness() {
    let cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let tasks = tasks(64);
    let cfg = ppc::dryad::DryadSimConfig::default();

    let legacy = ppc::dryad::sim::simulate(&cluster, &tasks, &cfg);
    let harness = ppc::dryad::simulate(&RunContext::new(&cluster), &tasks, &cfg);
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());

    let legacy = ppc::dryad::sim::simulate_chaos(&cluster, &tasks, &cfg, Some(hostile()));
    let harness = ppc::dryad::simulate(
        &RunContext::new(&cluster).with_schedule(hostile()),
        &tasks,
        &cfg,
    );
    assert_eq!(legacy.to_json().to_string(), harness.to_json().to_string());
}

fn reverse_executor() -> Arc<dyn Executor> {
    FnExecutor::new("rev", |_s: &TaskSpec, input: &[u8]| {
        let mut v = input.to_vec();
        v.reverse();
        Ok(v)
    })
}

#[test]
fn classic_native_shim_matches_harness_outputs() {
    use ppc::classic::spec::JobSpec;
    use ppc::queue::service::QueueService;
    use ppc::storage::service::StorageService;

    let run = |legacy: bool| {
        let storage = StorageService::in_memory();
        let queues = QueueService::new();
        let cluster = Cluster::provision(EC2_HCXL, 1, 4);
        let specs: Vec<TaskSpec> = (0..8)
            .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
            .collect();
        let job = JobSpec::new("shim-eq", specs.clone());
        storage.create_bucket(&job.input_bucket).unwrap();
        for spec in &specs {
            storage
                .put(
                    &job.input_bucket,
                    &spec.input_key,
                    format!("p{}", spec.id.0).into_bytes(),
                )
                .unwrap();
        }
        let cfg = ppc::classic::ClassicConfig::default();
        let report = if legacy {
            ppc::classic::runtime::run_job(
                &storage,
                &queues,
                &cluster,
                &job,
                reverse_executor(),
                &cfg,
            )
            .unwrap()
        } else {
            ppc::classic::run(
                &RunContext::new(&cluster),
                &storage,
                &queues,
                &job,
                reverse_executor(),
                &cfg,
            )
            .unwrap()
        };
        let outputs: Vec<Vec<u8>> = specs
            .iter()
            .map(|s| {
                storage
                    .get(&job.output_bucket, &s.output_key)
                    .unwrap()
                    .to_vec()
            })
            .collect();
        (report.summary.tasks, outputs)
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn hadoop_native_shim_matches_harness_outputs() {
    use ppc::hdfs::fs::MiniHdfs;
    use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};

    let run = |legacy: bool| {
        let fs = MiniHdfs::new(3, 1 << 20, 2, 7);
        let mut paths = Vec::new();
        for i in 0..8 {
            let p = format!("/in/f{i}");
            fs.create(&p, format!("p{i}").as_bytes(), None).unwrap();
            paths.push(p);
        }
        let job = MapReduceJob::map_only("shim-eq", paths.clone(), "/out");
        let mapper = ExecutableMapper::new("rev", reverse_executor());
        let cfg = ppc::mapreduce::HadoopConfig::default();
        let report = if legacy {
            ppc::mapreduce::runtime::run_job_with(&fs, &job, &mapper, None, &cfg).unwrap()
        } else {
            ppc::mapreduce::run(&RunContext::local(), &fs, &job, &mapper, None, &cfg).unwrap()
        };
        let outputs: Vec<Vec<u8>> = (0..8)
            .map(|i| fs.read(&format!("/out/f{i}.out")).unwrap())
            .collect();
        (report.summary.tasks, outputs)
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn dryad_native_shim_matches_harness_outputs() {
    let cluster = Cluster::provision(BARE_CAP3, 2, 2);
    let inputs: Vec<(TaskSpec, Vec<u8>)> = (0..8)
        .map(|i| {
            (
                TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                format!("p{i}").into_bytes(),
            )
        })
        .collect();
    let cfg = ppc::dryad::DryadConfig::default();
    let (legacy_report, mut legacy_out) = ppc::dryad::runtime::run_homomorphic_job(
        &cluster,
        inputs.clone(),
        reverse_executor(),
        &cfg,
    )
    .unwrap();
    let (harness_report, mut harness_out) =
        ppc::dryad::run(&RunContext::new(&cluster), inputs, reverse_executor(), &cfg).unwrap();
    legacy_out.sort();
    harness_out.sort();
    assert_eq!(legacy_out, harness_out);
    assert_eq!(legacy_report.summary.tasks, harness_report.summary.tasks);
}

/// Satellite contract: the context's seed wins over the config's, so two
/// configs that embed different seeds produce bit-identical simulations
/// when driven by the same `RunContext` — for all three simulators.
#[test]
fn context_seed_overrides_config_seed_in_every_simulator() {
    let tasks = tasks(48);
    let ctx_of = |c: &Cluster| RunContext::new(c).with_seed(99).with_schedule(hostile());

    let cluster = Cluster::provision(EC2_HCXL, 2, 8);
    let a = ppc::classic::simulate(
        &ctx_of(&cluster),
        &tasks,
        &ppc::classic::SimConfig::ec2().with_seed(1),
    );
    let b = ppc::classic::simulate(
        &ctx_of(&cluster),
        &tasks,
        &ppc::classic::SimConfig::ec2().with_seed(2),
    );
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());

    let cluster = Cluster::provision(BARE_CAP3, 2, 8);
    let a = ppc::mapreduce::simulate(
        &ctx_of(&cluster),
        &tasks,
        &ppc::mapreduce::HadoopSimConfig {
            seed: 1,
            ..Default::default()
        },
    );
    let b = ppc::mapreduce::simulate(
        &ctx_of(&cluster),
        &tasks,
        &ppc::mapreduce::HadoopSimConfig {
            seed: 2,
            ..Default::default()
        },
    );
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());

    let a = ppc::dryad::simulate(
        &ctx_of(&cluster),
        &tasks,
        &ppc::dryad::DryadSimConfig {
            seed: 1,
            ..Default::default()
        },
    );
    let b = ppc::dryad::simulate(
        &ctx_of(&cluster),
        &tasks,
        &ppc::dryad::DryadSimConfig {
            seed: 2,
            ..Default::default()
        },
    );
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
}

/// The deprecated speculation knobs are sugar for the shared resilience
/// layer: `speculative: true` with no policy must simulate bit-identically
/// to an explicit `ResiliencePolicy::legacy_speculation()`, and
/// `speculative: false` to the empty policy — the refactor moved the
/// mechanism without moving the behavior.
#[test]
fn hadoop_speculation_shim_matches_legacy_policy() {
    use ppc::resilience::ResiliencePolicy;
    let cluster = Cluster::provision(BARE_CAP3, 2, 8);
    let tasks = tasks(64);
    let run = |speculative: bool, resilience: Option<ResiliencePolicy>| {
        let cfg = ppc::mapreduce::HadoopSimConfig {
            speculative,
            resilience,
            ..Default::default()
        };
        ppc::mapreduce::simulate(&RunContext::new(&cluster), &tasks, &cfg)
            .to_json()
            .to_string()
    };
    assert_eq!(
        run(true, None),
        run(false, Some(ResiliencePolicy::legacy_speculation())),
        "speculative: true == legacy_speculation policy"
    );
    assert_eq!(
        run(false, None),
        run(true, Some(ResiliencePolicy::default())),
        "speculative: false == empty policy (which also overrides the knob)"
    );
}

/// The native twin of the pin above, on the runtime's deterministic
/// surface: with a deprecated `straggler_delay` making task 0 overdue,
/// the `job.speculative` knob and the explicit legacy policy commit the
/// same outputs and rescue the straggler the same way.
#[test]
fn hadoop_native_speculation_shim_matches_legacy_policy() {
    use ppc::hdfs::fs::MiniHdfs;
    use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
    use ppc::resilience::ResiliencePolicy;
    use std::time::Duration;

    let run = |speculative: bool, resilience: Option<ResiliencePolicy>| {
        let fs = MiniHdfs::new(2, 1 << 20, 2, 7);
        let mut paths = Vec::new();
        for i in 0..8 {
            let p = format!("/in/f{i}");
            fs.create(&p, format!("p{i}").as_bytes(), None).unwrap();
            paths.push(p);
        }
        let job =
            MapReduceJob::map_only("spec-eq", paths.clone(), "/out").with_speculative(speculative);
        let mapper = ExecutableMapper::new("rev", reverse_executor());
        let cfg = ppc::mapreduce::HadoopConfig {
            straggler_delay: Some((0, Duration::from_millis(120))),
            resilience,
            ..Default::default()
        };
        let report =
            ppc::mapreduce::run(&RunContext::local(), &fs, &job, &mapper, None, &cfg).unwrap();
        let outputs: Vec<Vec<u8>> = (0..8)
            .map(|i| fs.read(&format!("/out/f{i}.out")).unwrap())
            .collect();
        (report.summary.tasks, outputs)
    };
    assert_eq!(
        run(true, None),
        run(false, Some(ResiliencePolicy::legacy_speculation()))
    );
}

/// The deprecated `run_iterative` entry point is a one-line shim onto the
/// workflow layer's fixed-point engine (`cache_splits` +
/// `run_fixed_point`): same centroids to the bit, same report.
#[test]
fn iterative_shim_matches_workflow_fixed_point() {
    use ppc::core::rng::Pcg32;
    use ppc::hdfs::fs::MiniHdfs;
    use ppc::mapreduce::iterative::{
        cache_splits, encode_block, run_iterative, IterativeJob, KMeansCombiner, KMeansMapper,
        KMeansReducer,
    };
    use ppc::workflow::run_fixed_point;

    let mut rng = Pcg32::new(4242);
    let fs = MiniHdfs::with_defaults(3);
    let mut paths = Vec::new();
    for b in 0..4 {
        let points: Vec<Vec<f64>> = (0..50)
            .map(|_| {
                let cx = (rng.next_below(3) * 6) as f64;
                vec![cx + rng.normal_with(0.0, 0.4), rng.normal_with(0.0, 0.4)]
            })
            .collect();
        let p = format!("/iter/b{b}");
        fs.create(&p, &encode_block(&points), None).unwrap();
        paths.push(p);
    }
    let initial = vec![vec![1.0, 0.0], vec![5.0, 0.0], vec![11.0, 0.0]];
    let job = IterativeJob::new("shim-eq", paths).with_max_iterations(12);

    let (legacy_centroids, legacy_report) = run_iterative(
        &fs,
        &job,
        &KMeansMapper,
        &KMeansReducer,
        &KMeansCombiner { tolerance: 1e-9 },
        initial.clone(),
    )
    .unwrap();
    let cache = cache_splits(&fs, &job.input_paths).unwrap();
    let (wf_centroids, wf_report) = run_fixed_point(
        &cache,
        &job.fixed_point(),
        &KMeansMapper,
        &KMeansReducer,
        &KMeansCombiner { tolerance: 1e-9 },
        initial,
    )
    .unwrap();

    // Bit-identical floats, not approximately-equal ones.
    let bits = |cs: &[Vec<f64>]| -> Vec<Vec<u64>> {
        cs.iter()
            .map(|c| c.iter().map(|v| v.to_bits()).collect())
            .collect()
    };
    assert_eq!(bits(&legacy_centroids), bits(&wf_centroids));
    assert_eq!(legacy_report, wf_report);
}

/// The collapsed builders accept both a bare value and the `Option` the
/// legacy `_opt` forms took; the deprecated `_opt` shims are one-liners
/// onto them. Pin all four paths field-by-field, and behaviorally through
/// a simulation, so the sugar can never drift from the real builder.
#[test]
fn opt_builder_shims_are_pure_sugar() {
    use ppc::trace::{NoopSink, TraceSink};

    let cluster = Cluster::provision(EC2_HCXL, 2, 8);
    let sched = hostile();
    let sink: Arc<dyn TraceSink> = Arc::new(NoopSink);

    // Field-level: shim == builder for Some, None, and the bare value.
    let via_shim = RunContext::new(&cluster).with_schedule_opt(Some(sched.clone()));
    let via_builder = RunContext::new(&cluster).with_schedule(sched.clone());
    assert!(via_shim
        .schedule
        .as_ref()
        .zip(via_builder.schedule.as_ref())
        .is_some_and(|(a, b)| Arc::ptr_eq(a, b)));
    assert!(RunContext::new(&cluster)
        .with_schedule_opt(None)
        .schedule
        .is_none());
    // `None` through the unified builder *clears* a previously set value.
    assert!(RunContext::new(&cluster)
        .with_schedule(sched.clone())
        .with_schedule(None)
        .schedule
        .is_none());

    let via_shim = RunContext::new(&cluster).with_sink_opt(Some(sink.clone()));
    let via_builder = RunContext::new(&cluster).with_sink(sink.clone());
    assert!(via_shim
        .sink
        .as_ref()
        .zip(via_builder.sink.as_ref())
        .is_some_and(|(a, b)| Arc::ptr_eq(a, b)));
    assert!(RunContext::new(&cluster).with_sink_opt(None).sink.is_none());
    assert!(RunContext::new(&cluster)
        .with_sink(sink.clone())
        .with_sink(None)
        .sink
        .is_none());

    // Behavioral: a chaos simulation through the shim is bit-identical to
    // one through the builder.
    let tasks = tasks(64);
    let cfg = ppc::classic::SimConfig::ec2();
    let a = ppc::classic::simulate(
        &RunContext::new(&cluster).with_schedule_opt(Some(sched.clone())),
        &tasks,
        &cfg,
    );
    let b = ppc::classic::simulate(
        &RunContext::new(&cluster).with_schedule(sched.clone()),
        &tasks,
        &cfg,
    );
    assert_eq!(a.to_json().to_string(), b.to_json().to_string());
}

/// The same override on the native side: config seeds lose to the context
/// seed, observable through identical chaos outcomes (which tasks died and
/// recovered is a pure function of the effective seed in the dryad
/// runtime's hash-based fault dice).
#[test]
fn context_seed_overrides_config_seed_native_dryad() {
    let cluster = Cluster::provision(BARE_CAP3, 2, 2);
    let inputs: Vec<(TaskSpec, Vec<u8>)> = (0..16)
        .map(|i| {
            (
                TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                format!("p{i}").into_bytes(),
            )
        })
        .collect();
    let ctx = RunContext::new(&cluster)
        .with_seed(99)
        .with_schedule(hostile());
    let run_with_config_seed = |seed: u64| {
        let cfg = ppc::dryad::DryadConfig {
            seed,
            ..Default::default()
        };
        let (report, _) = ppc::dryad::run(&ctx, inputs.clone(), reverse_executor(), &cfg).unwrap();
        (
            report.summary.tasks,
            report.worker_deaths,
            report.core.total_attempts,
        )
    };
    assert_eq!(run_with_config_seed(1), run_with_config_seed(2));
}
