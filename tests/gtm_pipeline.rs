//! GTM Interpolation end-to-end through the Classic Cloud framework:
//! train on a sample, distribute the serialized model to workers, push
//! out-of-sample blocks through the queue/storage pipeline, and check the
//! collected embedding preserves cluster structure — the §6 application as
//! a user would run it.

use ppc::apps::gtm::{decode_points, GtmExecutor};
use ppc::apps::workload::gtm_native_inputs;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::AZURE_SMALL;
use ppc::exec::RunContext;
use ppc::gtm::train::{train, GtmModel, TrainConfig};
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::sync::Arc;

#[test]
fn gtm_interpolation_through_classic_cloud() {
    // Sample + 6 out-of-sample blocks, 30-dim fingerprints.
    let (sample, inputs) = gtm_native_inputs(6, 100, 30, 4242);
    let model = train(
        &sample,
        &TrainConfig {
            grid_side: 6,
            rbf_side: 3,
            iterations: 10,
            lambda: 1e-3,
        },
    )
    .unwrap();

    // Model distribution: serialize, ship, reload (what a worker VM does at
    // startup, like pre-loading the BLAST database).
    let shipped = model.to_bytes().unwrap();
    let worker_model = Arc::new(GtmModel::from_bytes(&shipped).unwrap());

    // Run the interpolation job on a 4-worker Azure-Small-style fleet.
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(AZURE_SMALL, 4, 1);
    let job = JobSpec::new("gtm", inputs.iter().map(|(t, _)| t.clone()).collect());
    storage.create_bucket(&job.input_bucket).unwrap();
    for (spec, payload) in &inputs {
        storage
            .put(&job.input_bucket, &spec.input_key, payload.clone())
            .unwrap();
    }
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        Arc::new(GtmExecutor::new(worker_model.clone())),
        &ClassicConfig::default(),
    )
    .unwrap();
    assert!(report.is_complete());
    assert_eq!(report.summary.tasks, 6);

    // Collect the embedding ("a simple merging operation", §6) and check it
    // agrees exactly with direct interpolation of the same blocks.
    for (spec, payload) in &inputs {
        let out = storage.get(&job.output_bucket, &spec.output_key).unwrap();
        let via_framework = decode_points(&out).unwrap();
        let block = decode_points(payload).unwrap();
        let direct = ppc::gtm::interpolate::interpolate(&worker_model, &block);
        assert_eq!(
            via_framework, direct,
            "framework transport must not perturb results"
        );
        assert_eq!(via_framework.cols(), 2);
        // All projections inside the latent square.
        for i in 0..via_framework.rows() {
            assert!(via_framework[(i, 0)].abs() <= 1.0 + 1e-9);
            assert!(via_framework[(i, 1)].abs() <= 1.0 + 1e-9);
        }
    }
}
